//! Criterion micro-bench: distance-function throughput (supports the
//! §5 quality experiments — fms is the expensive one, edit distance the
//! cheap one; this bench quantifies the per-pair cost each sweep pays).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_textdist::{
    levenshtein, levenshtein_bounded, CosineDistance, Distance, EditDistance, FuzzyMatchDistance,
    IdfModel, JaroWinklerDistance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pairs() -> Vec<(Vec<String>, Vec<String>)> {
    let mut rng = StdRng::seed_from_u64(1);
    let d = org::generate(&mut rng, DatasetSpec::with_entities(64));
    d.records.windows(2).map(|w| (w[0].clone(), w[1].clone())).collect()
}

fn bench_distances(c: &mut Criterion) {
    let pairs = pairs();
    let flat: Vec<String> = pairs.iter().map(|(a, _)| a.join(" ")).collect();
    let idf = IdfModel::fit_strings(&flat);

    let mut group = c.benchmark_group("distances");
    group.bench_function("levenshtein_raw", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(levenshtein(&x[0], &y[0]));
            }
        })
    });
    group.bench_function("levenshtein_bounded_k2", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(levenshtein_bounded(&x[0], &y[0], 2));
            }
        })
    });

    let ed = EditDistance;
    let fms = FuzzyMatchDistance::new(idf.clone());
    let cos = CosineDistance::new(idf);
    let jw = JaroWinklerDistance;
    for (name, d) in [
        ("ed", &ed as &dyn Distance),
        ("fms", &fms as &dyn Distance),
        ("cosine", &cos as &dyn Distance),
        ("jw", &jw as &dyn Distance),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for (x, y) in &pairs {
                    let xa: Vec<&str> = x.iter().map(String::as_str).collect();
                    let ya: Vec<&str> = y.iter().map(String::as_str).collect();
                    black_box(d.distance(&xa, &ya));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
