//! Criterion bench: incremental batches vs full recomputation.
//!
//! Quantifies the extension of DESIGN.md §8: appending a small batch to a
//! large corpus should cost far less than re-running the batch pipeline,
//! because only the affected NN entries are refreshed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{Aggregation, CutSpec, IncrementalDedup};
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_nnindex::DynamicIndexConfig;
use fuzzydedup_textdist::{FuzzyMatchDistance, IdfModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn state_with(records: &[Vec<String>], idf: &IdfModel) -> IncrementalDedup<FuzzyMatchDistance> {
    let mut state = IncrementalDedup::builder(FuzzyMatchDistance::new(idf.clone()))
        .index_config(DynamicIndexConfig::default())
        .cut(CutSpec::Size(4))
        .aggregation(Aggregation::Max)
        .sn_threshold(6.0)
        .build()
        .unwrap();
    state.insert_batch(records.to_vec());
    state
}

fn bench_incremental(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::with_entities(500));
    let records = dataset.records;
    let idf = IdfModel::fit_records(&records);
    let (base, batch) = records.split_at(records.len() - 25);

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("append_25_to_base", |b| {
        b.iter_batched(
            || state_with(base, &idf),
            |mut state| black_box(state.insert_batch(batch.to_vec())),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("full_recompute", |b| b.iter(|| black_box(state_with(&records, &idf))));
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
