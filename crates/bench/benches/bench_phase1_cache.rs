//! Criterion bench: Phase 1 NN-list materialization with and without the
//! prepared-query layer and the symmetric pair-distance memo — the
//! tentpole claim of the compiled-query-kernels PR.
//!
//! Emits `results/BENCH_phase1_cache.json`. Three rows over the same
//! 10k-record Org corpus, edit distance, CSR inverted index, TopK(5):
//!
//! - `unprepared` — the pre-PR path: a wrapper distance that does *not*
//!   override `Distance::prepare`, so every candidate recompiles the
//!   query's Myers Peq tables through the blanket fallback.
//! - `prepared` — `EditDistance`'s `prepare` override compiles the query
//!   once per lookup and reuses the tables across the candidate ladder.
//! - `prepared_cache` — prepared kernels plus the sharded unordered-pair
//!   memo (`PairCache`), so the second verification of each symmetric
//!   pair is a table probe instead of a distance call.
//!
//! The committed baseline backs the acceptance claim that
//! `prepared_cache` beats `unprepared` by ≥1.5× on `min_ns`; the
//! bench-regression gate (`ci_bench_gate`) watches all three rows. All
//! three paths are asserted to produce the identical NN relation before
//! timing starts.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{compute_nn_reln, phase1::compute_nn_reln_cached, NeighborSpec, PairCache};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::{Distance, EditDistance};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CORPUS: usize = 10_000;

/// `EditDistance` minus its `prepare` override: delegates the per-call
/// methods but leaves `prepare` on the blanket fallback, which recompiles
/// the query per candidate — the exact pre-prepared-layer behavior.
struct UnpreparedEdit;

impl Distance for UnpreparedEdit {
    fn name(&self) -> &str {
        "unprepared-edit"
    }

    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        EditDistance.distance(a, b)
    }

    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        EditDistance.distance_bounded(a, b, cutoff)
    }

    fn admits_qgram_filter(&self) -> bool {
        EditDistance.admits_qgram_filter()
    }
}

fn build_index<D: Distance + 'static>(records: Vec<Vec<String>>, distance: D) -> InvertedIndex<D> {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    InvertedIndex::build(records, distance, pool, InvertedIndexConfig::default())
}

fn bench_phase1_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(8200));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);

    let unprepared_index = build_index(records.clone(), UnpreparedEdit);
    let prepared_index = build_index(records, EditDistance);
    let spec = NeighborSpec::TopK(5);
    let order = LookupOrder::breadth_first();

    // Sanity: all three paths materialize the identical relation (the
    // cache-consistency contract) before any of them is timed.
    let (base, _) = compute_nn_reln(&unprepared_index, spec, order, 2.0);
    let (prep, _) = compute_nn_reln(&prepared_index, spec, order, 2.0);
    assert_eq!(base, prep, "prepared kernels changed the NN relation");
    let cache = PairCache::new(1 << 20);
    let (cached, _) = compute_nn_reln_cached(&prepared_index, spec, order, 2.0, Some(&cache));
    assert_eq!(base, cached, "pair cache changed the NN relation");

    // Each iteration is a full 10k-record Phase 1 (seconds, not micros);
    // 5 samples keeps the bench-smoke stage's wall time tolerable while
    // the worst-window baseline protocol absorbs the extra min_ns jitter.
    let mut group = c.benchmark_group("phase1_cache");
    group.sample_size(5);
    group.bench_function("unprepared", |b| {
        b.iter(|| black_box(compute_nn_reln(&unprepared_index, spec, order, 2.0)))
    });
    group.bench_function("prepared", |b| {
        b.iter(|| black_box(compute_nn_reln(&prepared_index, spec, order, 2.0)))
    });
    group.bench_function("prepared_cache", |b| {
        b.iter(|| {
            let cache = PairCache::new(1 << 20);
            black_box(compute_nn_reln_cached(&prepared_index, spec, order, 2.0, Some(&cache)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_phase1_cache);
criterion_main!(benches);
