//! Criterion bench: Phase 1 NN-list materialization with batched
//! lock-step verification — the tentpole claim of the batched-verification
//! + scale-out PR.
//!
//! Emits `results/BENCH_phase1_batch.json`. Four rows over the same
//! 10k-record Org corpus, edit distance, CSR inverted index, TopK(5) as
//! `bench_phase1_cache` (the committed `prepared_cache` row of that bench
//! is the baseline the acceptance claim is measured against):
//!
//! - `scalar` — a wrapper distance whose prepared kernel keeps the
//!   per-candidate scalar `distance_bounded_prepared` path (the blanket
//!   `distance_bounded_batch` fallback), i.e. the pre-PR verification
//!   lane.
//! - `batched` — `EditDistance`'s batch override: candidates accumulate
//!   into frozen-cutoff batches and verify in lock-step.
//! - `batched_cache` — batching plus the sharded symmetric pair-distance
//!   memo (`PairCache`).
//! - `batched_steal` — batching plus the work-stealing parallel Phase 1
//!   driver (`threads = 0`: one worker per core), the scale-out row.
//!
//! All four paths are asserted to produce the identical NN relation
//! before timing starts (batching freezes cutoffs conservatively and the
//! parallel driver shards an order-independent computation, so this is an
//! equality, not an approximation).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{
    compute_nn_reln, compute_nn_reln_parallel_cached, phase1::compute_nn_reln_cached, NeighborSpec,
    PairCache,
};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::{Distance, EditDistance, Prepared};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CORPUS: usize = 10_000;

/// `EditDistance` with its prepared kernel but *without* the batch
/// override: `prepare` forwards to the real compiled kernels, while the
/// returned handle's `distance_bounded_batch` stays on the blanket
/// one-candidate-at-a-time fallback — the exact pre-batching behavior.
struct ScalarEdit;

/// Prepared handle of [`ScalarEdit`]: wraps the real prepared edit kernel
/// but hides its batch override behind the trait's scalar default.
struct ScalarPrepared<'a>(Prepared<'a>);

impl fuzzydedup_textdist::PreparedDistance for ScalarPrepared<'_> {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        self.0.distance_bounded(candidate, cutoff)
    }
}

impl Distance for ScalarEdit {
    fn name(&self) -> &str {
        "scalar-edit"
    }

    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        EditDistance.distance(a, b)
    }

    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        EditDistance.distance_bounded(a, b, cutoff)
    }

    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        Prepared::new(Box::new(ScalarPrepared(EditDistance.prepare(query))))
    }

    fn admits_qgram_filter(&self) -> bool {
        EditDistance.admits_qgram_filter()
    }
}

fn build_index<D: Distance + 'static>(records: Vec<Vec<String>>, distance: D) -> InvertedIndex<D> {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    InvertedIndex::build(records, distance, pool, InvertedIndexConfig::default())
}

fn bench_phase1_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(8200));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);

    let scalar_index = build_index(records.clone(), ScalarEdit);
    let batched_index = build_index(records, EditDistance);
    let spec = NeighborSpec::TopK(5);
    let order = LookupOrder::breadth_first();

    // Sanity: every path materializes the identical relation before any
    // of them is timed — the recall-identity contract of frozen-cutoff
    // batching, the cache-consistency contract of the pair memo, and the
    // order-independence of the work-stealing sharder.
    let (base, _) = compute_nn_reln(&scalar_index, spec, order, 2.0);
    let (batched, _) = compute_nn_reln(&batched_index, spec, order, 2.0);
    assert_eq!(base, batched, "batched verification changed the NN relation");
    let cache = PairCache::new(1 << 20);
    let (cached, _) = compute_nn_reln_cached(&batched_index, spec, order, 2.0, Some(&cache));
    assert_eq!(base, cached, "pair cache changed the NN relation");
    let (stolen, _) = compute_nn_reln_parallel_cached(&batched_index, spec, 2.0, 0, None);
    assert_eq!(base, stolen, "parallel sharding changed the NN relation");

    // Each iteration is a full 10k-record Phase 1 (seconds, not micros);
    // 5 samples keeps the bench-smoke stage's wall time tolerable while
    // the worst-window baseline protocol absorbs the extra min_ns jitter.
    let mut group = c.benchmark_group("phase1_batch");
    group.sample_size(5);
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(compute_nn_reln(&scalar_index, spec, order, 2.0)))
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(compute_nn_reln(&batched_index, spec, order, 2.0)))
    });
    group.bench_function("batched_cache", |b| {
        b.iter(|| {
            let cache = PairCache::new(1 << 20);
            black_box(compute_nn_reln_cached(&batched_index, spec, order, 2.0, Some(&cache)))
        })
    });
    group.bench_function("batched_steal", |b| {
        b.iter(|| black_box(compute_nn_reln_parallel_cached(&batched_index, spec, 2.0, 0, None)))
    });
    group.finish();
}

criterion_group!(benches, bench_phase1_batch);
criterion_main!(benches);
