//! Criterion bench: candidate generation across the three postings
//! layouts — packed delta-blocks (default), the scalar CSR mirror, and
//! page-backed heap files.
//!
//! Emits `results/BENCH_candidates.json`. Committed rows follow the
//! worst-window protocol (`scripts/bench_refresh.sh`): in-memory
//! candidate generation runs ≥ 6× faster than the page-backed path,
//! and the packed frontier merge beats same-revision CSR by ~5%
//! worst-window (~8% quiet) at a 2.5× smaller postings footprint —
//! the honest breakdown is in DESIGN §7.7. The bench-regression gate
//! (`ci_bench_gate`) watches all rows for slowdowns.
//!
//! All `gen` rows drive [`InvertedIndex::generate_candidates`] — the full
//! merge + score + truncate pipeline — over the same fixed query sample,
//! so the only variable is where postings come from: delta-compressed
//! blocks decoded through the staged lane-wise merge, contiguous CSR
//! slices with build-time term ids, or heap-file chunks fetched through
//! the buffer pool with query-time re-tokenization. The `radius` row
//! additionally arms the MergeSkip overlap bound, exercising the packed
//! skip-pointer top-up on frozen lists.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, PostingsSource};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::EditDistance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus size: large enough that postings span many pages and the
/// dictionary is realistic; small enough to build twice in a bench run.
const CORPUS: usize = 10_000;

/// Queries per measurement batch.
const QUERIES: usize = 64;

fn corpus() -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(42);
    // ~1.28 records per entity; trim the tail to exactly CORPUS records.
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(8200));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);
    records
}

fn build(records: &[Vec<String>], source: PostingsSource) -> InvertedIndex<EditDistance> {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(1024),
        Arc::new(InMemoryDisk::new()),
    ));
    InvertedIndex::build(
        records.to_vec(),
        EditDistance,
        pool,
        InvertedIndexConfig { postings_source: source, ..Default::default() },
    )
}

fn bench_candidates(c: &mut Criterion) {
    let records = corpus();
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<u32> = (0..QUERIES).map(|_| rng.gen_range(0..CORPUS) as u32).collect();

    let mut group = c.benchmark_group("candidates");
    // One iteration is ~15 ms of merge work — long enough to straddle
    // scheduler quanta on a shared machine, so the per-sample minimum
    // needs more draws than the 10-sample default to reach the real
    // noise floor (noise only ever adds time; the workload per
    // iteration is unchanged, keeping baselines comparable).
    group.sample_size(30);

    for (label, source) in [
        ("pages", PostingsSource::Pages),
        ("csr", PostingsSource::Csr),
        ("packed", PostingsSource::Packed),
    ] {
        let index = build(&records, source);
        // Sanity: every path must produce real candidate sets.
        assert!(!index.generate_candidates(queries[0]).is_empty());
        group.bench_function(format!("{label}/gen"), |b| {
            b.iter(|| {
                for &id in &queries {
                    black_box(index.generate_candidates(id));
                }
            })
        });
        if source == PostingsSource::Packed {
            // Radius flavor: the overlap bound freezes long tails early,
            // so this row watches the skip-pointer top-up, not just the
            // staged decode.
            group.bench_function(format!("{label}/radius"), |b| {
                b.iter(|| {
                    for &id in &queries {
                        black_box(index.generate_candidates_radius(id, 0.2));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
