//! Criterion bench: candidate generation, CSR mirror vs page-backed
//! postings (the tentpole claim of the filtered-candidate-generation PR).
//!
//! Emits `results/BENCH_candidates.json`. The committed baseline backs
//! the acceptance claim that CSR candidate generation is ≥ 3× faster
//! than the page-backed path on a 10k-record datagen corpus, and the
//! bench-regression gate (`ci_bench_gate`) watches both paths for
//! slowdowns.
//!
//! Both benches drive [`InvertedIndex::generate_candidates`] — the full
//! merge + score + truncate pipeline — over the same fixed query sample,
//! so the only variable is where postings come from: contiguous CSR
//! slices with build-time term ids, or heap-file chunks fetched through
//! the buffer pool with query-time re-tokenization.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, PostingsSource};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::EditDistance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus size: large enough that postings span many pages and the
/// dictionary is realistic; small enough to build twice in a bench run.
const CORPUS: usize = 10_000;

/// Queries per measurement batch.
const QUERIES: usize = 64;

fn corpus() -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(42);
    // ~1.28 records per entity; trim the tail to exactly CORPUS records.
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(8200));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);
    records
}

fn build(records: &[Vec<String>], source: PostingsSource) -> InvertedIndex<EditDistance> {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(1024),
        Arc::new(InMemoryDisk::new()),
    ));
    InvertedIndex::build(
        records.to_vec(),
        EditDistance,
        pool,
        InvertedIndexConfig { postings_source: source, ..Default::default() },
    )
}

fn bench_candidates(c: &mut Criterion) {
    let records = corpus();
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<u32> = (0..QUERIES).map(|_| rng.gen_range(0..CORPUS) as u32).collect();

    let mut group = c.benchmark_group("candidates");
    group.sample_size(10);

    for (label, source) in [("pages", PostingsSource::Pages), ("csr", PostingsSource::Csr)] {
        let index = build(&records, source);
        // Sanity: both paths must produce real candidate sets.
        assert!(!index.generate_candidates(queries[0]).is_empty());
        group.bench_function(format!("{label}/gen"), |b| {
            b.iter(|| {
                for &id in &queries {
                    black_box(index.generate_candidates(id));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
