//! Criterion bench: buffer-pool access patterns and replacement policies
//! (the substrate behind Figure 8's hit-ratio numbers).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk, PageId, ReplacementPolicy};

fn make_pool(frames: usize, policy: ReplacementPolicy, pages: usize) -> (BufferPool, Vec<PageId>) {
    let pool = BufferPool::new(
        BufferPoolConfig { capacity: frames, policy },
        Arc::new(InMemoryDisk::new()),
    );
    let ids: Vec<PageId> = (0..pages)
        .map(|i| {
            let id = pool.allocate_page();
            pool.with_page_mut(id, |p| {
                p.insert(&(i as u64).to_le_bytes()).unwrap();
            })
            .unwrap();
            id
        })
        .collect();
    (pool, ids)
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Clock] {
        let label = format!("{policy:?}").to_lowercase();

        // All-hits: working set fits.
        let (pool, ids) = make_pool(64, policy, 32);
        group.bench_function(format!("{label}_hits"), |b| {
            b.iter(|| {
                for &id in &ids {
                    pool.with_page(id, |p| black_box(p.slot_count())).unwrap();
                }
            })
        });

        // Thrash: working set 4x the pool.
        let (pool, ids) = make_pool(16, policy, 64);
        group.bench_function(format!("{label}_thrash"), |b| {
            b.iter(|| {
                for &id in &ids {
                    pool.with_page(id, |p| black_box(p.slot_count())).unwrap();
                }
            })
        });

        // Skewed: 90% of accesses to 10% of pages (the BF-order shape).
        let (pool, ids) = make_pool(16, policy, 64);
        group.bench_function(format!("{label}_skewed"), |b| {
            b.iter(|| {
                for round in 0..ids.len() {
                    let id = if round % 10 == 0 { ids[round % ids.len()] } else { ids[round % 6] };
                    pool.with_page(id, |p| black_box(p.slot_count())).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffer_pool);
criterion_main!(benches);
