//! Criterion bench: the whole pipeline — `DE_S`, `DE_D`, and the
//! cut-vs-cut / distance-vs-distance cost comparison (supports Figure 9's
//! absolute numbers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{CutSpec, DedupConfig, Deduplicator};
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::with_entities(600));
    let records = dataset.records;

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (name, config) in [
        (
            "de_s5_fms",
            DedupConfig::new(DistanceKind::FuzzyMatch).cut(CutSpec::Size(5)).sn_threshold(4.0),
        ),
        (
            "de_d03_fms",
            DedupConfig::new(DistanceKind::FuzzyMatch)
                .cut(CutSpec::Diameter(0.3))
                .sn_threshold(4.0),
        ),
        (
            "de_s5_ed",
            DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Size(5)).sn_threshold(4.0),
        ),
        (
            "de_s5_fms_tables",
            DedupConfig::new(DistanceKind::FuzzyMatch)
                .cut(CutSpec::Size(5))
                .sn_threshold(4.0)
                .via_tables(true),
        ),
    ] {
        let dedup = Deduplicator::new(config);
        group.bench_function(name, |b| b.iter(|| black_box(dedup.run_records(&records).unwrap())));
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
