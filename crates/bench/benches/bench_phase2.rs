//! Criterion bench: Phase 2 (CSPairs construction + partitioning) — the
//! in-memory fast path vs the SQL-shaped relational path, plus the
//! single-linkage baseline over the same NN lists.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{
    compute_nn_reln, partition_entries, partition_via_tables, single_linkage, Aggregation, CutSpec,
    NeighborSpec,
};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_phase2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(1500));
    let records = dataset.records;
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let index = InvertedIndex::build(
        records.clone(),
        DistanceKind::FuzzyMatch.build(&records),
        pool.clone(),
        InvertedIndexConfig::default(),
    );
    let (reln, _) =
        compute_nn_reln(&index, NeighborSpec::TopK(5), LookupOrder::breadth_first(), 2.0);

    let mut group = c.benchmark_group("phase2");
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| black_box(partition_entries(&reln, CutSpec::Size(5), Aggregation::Max, 4.0)))
    });
    group.bench_function("via_tables", |b| {
        b.iter(|| {
            black_box(
                partition_via_tables(&reln, CutSpec::Size(5), Aggregation::Max, 4.0, pool.clone())
                    .unwrap(),
            )
        })
    });
    group.bench_function("single_linkage_baseline", |b| {
        b.iter(|| black_box(single_linkage(&reln, 0.3)))
    });
    group.finish();
}

criterion_group!(benches, bench_phase2);
criterion_main!(benches);
