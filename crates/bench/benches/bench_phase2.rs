//! Criterion bench: Phase 2 partitioning — the sequential in-memory scan
//! vs the component-parallel scan at 4 workers (the tentpole claim of the
//! parallel-Phase-2 PR), plus the SQL-shaped relational path and the
//! single-linkage baseline on a smaller corpus for context.
//!
//! Emits `results/BENCH_phase2.json`. The committed baseline backs the
//! acceptance claim that `partition_entries_parallel` at 4 threads beats
//! `partition_entries` on a 10k-record Org corpus, and the
//! bench-regression gate (`ci_bench_gate`) watches both paths for
//! slowdowns.
//!
//! Measurement context (recorded so the baseline is interpretable): the CI
//! container exposes **one** CPU to the process, so none of the measured
//! gap can come from actual thread concurrency — what the baseline shows
//! is the *algorithmic* win of the materialized CS-pair structure
//! (`CsPairGraph`, the in-memory `CSPairs` table of §5): back-rank /
//! anchor-mask pruning lets the parallel path skip candidate group sizes
//! without allocating prefix sets, roughly halving Phase 2 even on one
//! core (~1.6× on this host). On a genuinely multi-core host the
//! cost-balanced component sharding stacks on top of that for the greedy
//! scan portion; the build itself is serial (see DESIGN.md §7.4 for the
//! shard-balance numbers that bound the extra speedup).
//!
//! Phase 1 (index build + NN materialization) runs once as setup; the
//! measured region is exactly the partitioning work, including the
//! parallel path's component extraction and scheduling overhead — the
//! speedup is end-to-end for Phase 2, not just the sharded scan.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{
    compute_nn_reln, partition_entries, partition_entries_parallel, partition_via_tables,
    single_linkage, Aggregation, CutSpec, NeighborSpec,
};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::{DistanceKind, EditDistance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Corpus for the seq-vs-parallel comparison: large enough that Phase 2
/// dwarfs thread-spawn + component-extraction overhead.
const CORPUS: usize = 10_000;

/// Neighbors per NN list: more prefix work per tuple than the default
/// K = 5 cut, so the greedy CS/SN checks (the parallelizable part)
/// dominate the union-find bookkeeping.
const K: usize = 8;

fn bench_phase2(c: &mut Criterion) {
    // --- 10k-record Org corpus, Phase 1 once as setup. ---
    let mut rng = StdRng::seed_from_u64(42);
    // ~1.28 records per entity; trim the tail to exactly CORPUS records.
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(8200));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let index = InvertedIndex::build(records, EditDistance, pool, InvertedIndexConfig::default());
    let (reln, _) = compute_nn_reln(&index, NeighborSpec::TopK(K), LookupOrder::Sequential, 2.0);
    let cut = CutSpec::Size(K);

    // Sanity: both paths agree before we time them.
    let seq = partition_entries(&reln, cut, Aggregation::Max, 4.0);
    assert_eq!(seq, partition_entries_parallel(&reln, cut, Aggregation::Max, 4.0, 4));

    let mut group = c.benchmark_group("phase2");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| black_box(partition_entries(&reln, cut, Aggregation::Max, 4.0)))
    });
    group.bench_function("par4", |b| {
        b.iter(|| black_box(partition_entries_parallel(&reln, cut, Aggregation::Max, 4.0, 4)))
    });

    // --- Context rows on a smaller corpus (the relational path is table
    // I/O bound and would swamp the bench at 10k records). ---
    let mut rng = StdRng::seed_from_u64(5);
    let small = org::generate(&mut rng, DatasetSpec::with_entities(1500));
    let small_records = small.records;
    let small_pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let small_index = InvertedIndex::build(
        small_records.clone(),
        DistanceKind::FuzzyMatch.build(&small_records),
        small_pool.clone(),
        InvertedIndexConfig::default(),
    );
    let (small_reln, _) =
        compute_nn_reln(&small_index, NeighborSpec::TopK(5), LookupOrder::breadth_first(), 2.0);
    group.bench_function("via_tables_1500", |b| {
        b.iter(|| {
            black_box(
                partition_via_tables(
                    &small_reln,
                    CutSpec::Size(5),
                    Aggregation::Max,
                    4.0,
                    small_pool.clone(),
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("single_linkage_1500", |b| {
        b.iter(|| black_box(single_linkage(&small_reln, 0.3)))
    });
    group.finish();
}

criterion_group!(benches, bench_phase2);
criterion_main!(benches);
