//! Criterion bench: Phase 1 (NN-list materialization) under the three
//! lookup orders — the wall-clock companion to the Figure-8 buffer-metric
//! experiment (DESIGN.md ablation #1).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{compute_nn_reln, NeighborSpec};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_phase1(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(1500));
    let records = dataset.records;

    // Small pool: misses are the point.
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(32),
        Arc::new(InMemoryDisk::new()),
    ));
    let index = InvertedIndex::build(
        records.clone(),
        DistanceKind::FuzzyMatch.build(&records),
        pool,
        InvertedIndexConfig::default(),
    );

    let mut group = c.benchmark_group("phase1_order");
    group.sample_size(10);
    for (name, order) in [
        ("sequential", LookupOrder::Sequential),
        ("random", LookupOrder::Random(9)),
        ("breadth_first", LookupOrder::breadth_first()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(compute_nn_reln(&index, NeighborSpec::TopK(5), order, 2.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase1);
criterion_main!(benches);
