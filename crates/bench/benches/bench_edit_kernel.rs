//! Criterion micro-bench: edit-distance kernel ladder — the classic
//! two-row DP against the bit-parallel Myers kernel across string-length
//! buckets, plus the k-bounded variant candidate verification uses.
//!
//! Emits `results/BENCH_edit_kernel.json`. The committed baseline backs
//! the acceptance claim that the Myers word path is ≥ 4× faster than the
//! DP on the 16–64 char buckets, and the bench-regression gate
//! (`ci_bench_gate`) watches it for slowdowns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_textdist::edit::levenshtein_dp_chars_with;
use fuzzydedup_textdist::{myers_bounded_chars, myers_chars};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Length buckets: 16–64 exercise the single-word path (the acceptance
/// buckets), 128 and 256 the blocked multi-word path.
const BUCKETS: [usize; 5] = [16, 32, 64, 128, 256];

/// Pairs per bucket; every measurement iterates the full set so the
/// numbers are per-batch, stable, and comparable across kernels.
const PAIRS_PER_BUCKET: usize = 32;

/// A random mostly-ASCII string of exactly `len` chars, alphabet sized to
/// give realistic match density for record text.
fn random_string(rng: &mut StdRng, len: usize) -> Vec<char> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz 0123456789";
    (0..len).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char).collect()
}

/// A near-duplicate of `base`: ~10% of positions substituted, one char
/// appended half the time — the distance regime verification sees.
fn perturb(rng: &mut StdRng, base: &[char]) -> Vec<char> {
    let mut out: Vec<char> = base.to_vec();
    for slot in out.iter_mut() {
        if rng.gen_bool(0.1) {
            *slot = (b'a' + rng.gen_range(0..26u8)) as char;
        }
    }
    if rng.gen_bool(0.5) {
        out.push('x');
    }
    out
}

/// One pre-generated (base, near-duplicate) pair, as char slices.
type CharPair = (Vec<char>, Vec<char>);

fn pairs_for(rng: &mut StdRng, len: usize) -> Vec<CharPair> {
    (0..PAIRS_PER_BUCKET)
        .map(|_| {
            let a = random_string(rng, len);
            let b = perturb(rng, &a);
            (a, b)
        })
        .collect()
}

fn bench_edit_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let buckets: Vec<(usize, Vec<CharPair>)> =
        BUCKETS.iter().map(|&len| (len, pairs_for(&mut rng, len))).collect();

    let mut group = c.benchmark_group("edit_kernel");
    group.sample_size(20);
    for (len, pairs) in &buckets {
        group.bench_function(format!("dp/{len}"), |b| {
            let mut bufs = (Vec::new(), Vec::new());
            b.iter(|| {
                for (x, y) in pairs {
                    black_box(levenshtein_dp_chars_with(&mut bufs, x, y));
                }
            })
        });
        group.bench_function(format!("myers/{len}"), |b| {
            b.iter(|| {
                for (x, y) in pairs {
                    black_box(myers_chars(x, y));
                }
            })
        });
        // The verification regime: a tight cutoff (best-so-far already
        // small) lets the bounded kernel bail out early on most pairs.
        group.bench_function(format!("myers_bounded_k2/{len}"), |b| {
            b.iter(|| {
                for (x, y) in pairs {
                    black_box(myers_bounded_chars(x, y, 2));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edit_kernel);
criterion_main!(benches);
