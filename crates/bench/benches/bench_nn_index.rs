//! Criterion micro-bench: nearest-neighbor index lookups — the inverted
//! index against the nested-loop reference (DESIGN.md ablation #4). The
//! inverted index should win by a widening factor as the corpus grows.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, NestedLoopIndex, NnIndex};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_nn_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_index_topk");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = org::generate(&mut rng, DatasetSpec::with_entities(n));
        let records = dataset.records;

        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(4096),
            Arc::new(InMemoryDisk::new()),
        ));
        let inverted = InvertedIndex::build(
            records.clone(),
            DistanceKind::EditDistance.build(&records),
            pool,
            InvertedIndexConfig::default(),
        );
        let nested = NestedLoopIndex::new(records.clone(), fuzzydedup_textdist::EditDistance);

        group.bench_with_input(BenchmarkId::new("inverted", n), &n, |b, _| {
            b.iter(|| {
                for id in 0..64u32 {
                    black_box(inverted.top_k(id, 5));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
            b.iter(|| {
                for id in 0..64u32 {
                    black_box(nested.top_k(id, 5));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn_index);
criterion_main!(benches);
