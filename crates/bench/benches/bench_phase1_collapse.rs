//! Criterion bench: exact-duplicate collapse pre-pass with
//! multiplicity-weighted Phase 1 — the tentpole claim of the collapse PR.
//!
//! Emits `results/BENCH_phase1_collapse.json`. Two rows over a
//! duplicate-heavy 10k-record Org corpus (`DatasetSpec::dup_rate(0.5)` —
//! half the stream is exact re-emission, the service-ingest shape the
//! pre-pass targets), edit distance, CSR inverted index, TopK(5):
//!
//! - `collapse_off` — the sequential batched lane over the full corpus
//!   (same configuration as `bench_phase1_batch`'s `batched` row, on this
//!   corpus).
//! - `collapse_on` — everything the collapse path adds at runtime:
//!   hash the full corpus into exact-duplicate classes
//!   (`CollapseMap::build`), run Phase 1 weighted over the ~half-size
//!   representative index, then expand the relation back to full ids
//!   (`CollapseMap::expand_reln`). The rep index is pre-built outside the
//!   loop, symmetric with the off row's pre-built full index.
//!
//! Before timing starts the expanded partition is asserted bit-identical
//! to the collapse-off partition (under the default candidate budget a
//! cut through a weight tie-block keeps a per-representative superset of
//! candidates, so the *relation* can carry larger NG values — partition
//! identity is the downstream invariant; with the budget unbounded the
//! relation itself is bit-identical, see DESIGN.md §7.10 and the
//! `recall-smoke` gate), and the corpus is asserted to actually collapse
//! substantially (a pass that collapses nothing would measure pure
//! overhead). The acceptance claim of the PR is `collapse_on` ≥ 2×
//! faster than `collapse_off` on this artifact.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{
    compute_nn_reln, partition_entries, Aggregation, CollapseKey, CollapseMap, CutSpec,
    NeighborSpec,
};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::EditDistance;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CORPUS: usize = 10_000;

fn build_index(records: Vec<Vec<String>>, mults: Option<Vec<u32>>) -> InvertedIndex<EditDistance> {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let config = InvertedIndexConfig::default();
    match mults {
        Some(m) => InvertedIndex::build_collapsed(records, m, EditDistance, pool, config),
        None => InvertedIndex::build(records, EditDistance, pool, config),
    }
}

fn bench_phase1_collapse(c: &mut Criterion) {
    // Half the final stream is exact re-emission: ~4100 entities inflate
    // to ~5k distinct-ish rows, dup_rate doubles them, truncate to 10k.
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(4100).dup_rate(0.5));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);

    let map = CollapseMap::build(&records, CollapseKey::RecordString);
    assert!(
        map.collapsed_records() >= CORPUS / 4,
        "corpus barely collapses ({} of {CORPUS}) — the bench would measure pure overhead",
        map.collapsed_records()
    );

    let full_index = build_index(records.clone(), None);
    let rep_index = build_index(map.rep_records(&records), Some(map.multiplicities().to_vec()));
    let sibling_visible: Vec<bool> =
        (0..map.n_reps() as u32).map(|r| rep_index.record_has_terms(r)).collect();
    let spec = NeighborSpec::TopK(5);
    let order = LookupOrder::breadth_first();

    // Sanity before timing: the collapse path is partition-lossless on
    // this corpus — Phase 2 over the expanded representative-space
    // relation produces the same partition as over the full-corpus
    // relation (bit-identity of the relation itself holds in the
    // unbounded-budget regime; under the default budget NG is
    // superset-monotone — DESIGN.md §7.10).
    let (base, _) = compute_nn_reln(&full_index, spec, order, 2.0);
    let (rep_reln, _) = compute_nn_reln(&rep_index, spec, order, 2.0);
    let expanded = map.expand_reln(&rep_reln, spec, &sibling_visible);
    let p_off = partition_entries(&base, CutSpec::Size(5), Aggregation::Max, 4.0);
    let p_on = partition_entries(&expanded, CutSpec::Size(5), Aggregation::Max, 4.0);
    assert_eq!(p_off, p_on, "collapse changed the partition");

    // Each iteration is a full Phase 1 (seconds, not micros); 5 samples
    // keeps wall time tolerable while the worst-window baseline protocol
    // absorbs the extra min_ns jitter.
    let mut group = c.benchmark_group("phase1_collapse");
    group.sample_size(5);
    group.bench_function("collapse_off", |b| {
        b.iter(|| black_box(compute_nn_reln(&full_index, spec, order, 2.0)))
    });
    group.bench_function("collapse_on", |b| {
        b.iter(|| {
            let map = CollapseMap::build(&records, CollapseKey::RecordString);
            let (rep_reln, _) = compute_nn_reln(&rep_index, spec, order, 2.0);
            black_box(map.expand_reln(&rep_reln, spec, &sibling_visible))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_phase1_collapse);
criterion_main!(benches);
