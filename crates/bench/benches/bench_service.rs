//! Service replay bench: point-query latency under concurrent ingest.
//!
//! Not a criterion microbench — one "sample" here is a whole traffic
//! replay (mixed ingest/query over the Org corpus), and the interesting
//! statistics are request-latency quantiles, not closure time. So this is
//! a `harness = false` main that runs `REPS` full replays and emits a
//! `BENCH_service.json` in the criterion shim's exact artifact shape:
//!
//! - `replay/point_query_p50` / `replay/point_query_p99` — exact
//!   quantiles over every point query of a replay; row value is the
//!   **min across replays** (the quiet-window reading, same semantics as
//!   `min_ns` in the criterion shim: noise only ever adds time);
//! - `replay/ingest_per_record` — mixed-phase wall clock divided by
//!   records admitted, min across replays.
//!
//! Registered in `ci_bench_gate` and refreshed via the worst-window
//! protocol (`scripts/bench_refresh.sh bench_service`).

use fuzzydedup_bench::replay::{replay, write_bench_artifact, ReplayConfig};

const REPS: usize = 3;

fn main() {
    // `cargo bench` passes `--bench`; nothing here is configurable.
    let config = ReplayConfig {
        records: 2_000,
        batch_size: 64,
        queue_capacity: 1024,
        query_ratio: 0.3,
        qps: 0,
        seed: 7,
    };
    let mut p50 = u64::MAX;
    let mut p99 = u64::MAX;
    let mut ingest = u64::MAX;
    for rep in 1..=REPS {
        let outcome = replay(config);
        let rep_p50 = outcome.query_quantile_ns(0.50);
        let rep_p99 = outcome.query_quantile_ns(0.99);
        let rep_ingest = outcome.ingest_ns_per_record();
        eprintln!(
            "bench_service rep {rep}/{REPS}: p50 {rep_p50} ns, p99 {rep_p99} ns, \
             ingest {rep_ingest} ns/record ({} queries)",
            outcome.query_latencies_ns.len()
        );
        p50 = p50.min(rep_p50);
        p99 = p99.min(rep_p99);
        ingest = ingest.min(rep_ingest);
    }
    let rows = vec![
        ("replay/point_query_p50".to_string(), p50),
        ("replay/point_query_p99".to_string(), p99),
        ("replay/ingest_per_record".to_string(), ingest),
    ];
    let path = write_bench_artifact("service", &rows, REPS as u64);
    eprintln!("bench group \"service\" -> {}", path.display());
}
