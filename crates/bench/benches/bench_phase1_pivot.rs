//! Criterion bench: Phase 1 with pivot-anchored triangle-inequality
//! pruning — the tentpole claim of the pivot-pruning PR.
//!
//! Emits `results/BENCH_phase1_pivot.json`. Four rows over the same
//! 10k-record Org corpus, edit distance, CSR inverted index, TopK(5) as
//! `bench_phase1_batch` (whose committed `batched_steal` row is the
//! baseline the acceptance claim is measured against):
//!
//! - `no_pivots` — the sequential batched lane with the pivot layer off
//!   (identical configuration to `bench_phase1_batch`'s `batched` row;
//!   re-measured here so the pivot delta is visible inside one artifact).
//! - `pivots` — the same lane with a 16-anchor pivot table: candidates
//!   failing the triangle lower bound skip the Myers kernel, and the
//!   per-lookup upper bounds warm-start the running cutoff.
//! - `no_pivot_steal` — work-stealing parallel Phase 1 (`threads = 0`),
//!   pivots off — the committed `batched_steal` configuration.
//! - `pivot_steal` — pivots plus work-stealing: the headline row the
//!   ≥1.25× acceptance claim compares against `batched_steal`.
//!
//! Before timing starts the NN relation is asserted bit-identical with
//! pivots on and off (the triangle bound only rejects candidates the
//! kernel would reject — see `fuzzydedup_nnindex::pivot`), and the
//! `PivotLbSkips` counter is asserted to actually fire on this corpus.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuzzydedup_core::{compute_nn_reln, compute_nn_reln_parallel_cached, NeighborSpec};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_metrics::{snapshot, Counter};
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::EditDistance;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CORPUS: usize = 10_000;
const PIVOTS: usize = 16;

fn build_index(records: Vec<Vec<String>>, pivots: usize) -> InvertedIndex<EditDistance> {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let config = InvertedIndexConfig { pivots, ..Default::default() };
    InvertedIndex::build(records, EditDistance, pool, config)
}

fn bench_phase1_pivot(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = org::generate(&mut rng, DatasetSpec::with_entities(8200));
    let mut records = dataset.records;
    assert!(records.len() >= CORPUS, "need {CORPUS} records, got {}", records.len());
    records.truncate(CORPUS);

    let plain_index = build_index(records.clone(), 0);
    let pivot_index = build_index(records, PIVOTS);
    let spec = NeighborSpec::TopK(5);
    let order = LookupOrder::breadth_first();

    // Sanity before timing: the pivot layer is lossless (bit-identical
    // relation sequentially and under work-stealing) and actually prunes
    // on this corpus (a bound that never fires would "win" any benchmark
    // by measuring nothing).
    let before = snapshot();
    let (base, _) = compute_nn_reln(&plain_index, spec, order, 2.0);
    let (pruned, _) = compute_nn_reln(&pivot_index, spec, order, 2.0);
    assert_eq!(base, pruned, "pivot pruning changed the NN relation");
    let (stolen, _) = compute_nn_reln_parallel_cached(&pivot_index, spec, 2.0, 0, None);
    assert_eq!(base, stolen, "pivot pruning + work stealing changed the NN relation");
    let delta = snapshot().delta(&before);
    assert!(delta.get(Counter::PivotLbSkips) > 0, "the triangle bound never fired");

    // Each iteration is a full 10k-record Phase 1 (seconds, not micros);
    // 5 samples keeps wall time tolerable while the worst-window baseline
    // protocol absorbs the extra min_ns jitter.
    let mut group = c.benchmark_group("phase1_pivot");
    group.sample_size(5);
    group.bench_function("no_pivots", |b| {
        b.iter(|| black_box(compute_nn_reln(&plain_index, spec, order, 2.0)))
    });
    group.bench_function("pivots", |b| {
        b.iter(|| black_box(compute_nn_reln(&pivot_index, spec, order, 2.0)))
    });
    group.bench_function("no_pivot_steal", |b| {
        b.iter(|| black_box(compute_nn_reln_parallel_cached(&plain_index, spec, 2.0, 0, None)))
    });
    group.bench_function("pivot_steal", |b| {
        b.iter(|| black_box(compute_nn_reln_parallel_cached(&pivot_index, spec, 2.0, 0, None)))
    });
    group.finish();
}

criterion_group!(benches, bench_phase1_pivot);
criterion_main!(benches);
