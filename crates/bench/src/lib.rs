#![warn(missing_docs)]

//! Experiment harness: shared machinery for the drivers that regenerate
//! every table and figure of the paper (see `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! Each driver in `src/bin/` prints the same rows/series the paper
//! reports; this library holds the common pieces — algorithm sweeps,
//! precision/recall tabulation, and plain-text table rendering. The
//! [`gate`] module holds the bench-regression comparison logic behind
//! `ci_bench_gate` (the `bench-smoke` stage of `scripts/ci.sh`).

pub mod gate;
pub mod replay;

use fuzzydedup_core::{
    evaluate, partition_entries, single_linkage, Aggregation, CutSpec, DedupConfig, Deduplicator,
    NnReln, PrecisionRecall,
};
use fuzzydedup_datagen::Dataset;
use fuzzydedup_metrics::json::JsonObject;
use fuzzydedup_textdist::DistanceKind;

/// One point of a precision-recall sweep.
#[derive(Debug, Clone)]
pub struct QualityPoint {
    /// Algorithm label (`thr`, `DE_S:max4`, ...).
    pub algorithm: String,
    /// The swept parameter value (θ or K).
    pub parameter: f64,
    /// Pairwise recall.
    pub recall: f64,
    /// Pairwise precision.
    pub precision: f64,
    /// F1 score.
    pub f1: f64,
}

impl QualityPoint {
    fn new(algorithm: String, parameter: f64, pr: PrecisionRecall) -> Self {
        Self { algorithm, parameter, recall: pr.recall, precision: pr.precision, f1: pr.f1() }
    }

    /// Render the point as one flat JSON row, tagged with the dataset and
    /// distance it came from (the `--json` output shape of `exp_quality`).
    pub fn to_json_row(&self, dataset: &str, distance: &str) -> String {
        let mut obj = JsonObject::new();
        obj.str("dataset", dataset);
        obj.str("distance", distance);
        obj.str("algorithm", &self.algorithm);
        obj.f64("parameter", self.parameter);
        obj.f64("recall", self.recall);
        obj.f64("precision", self.precision);
        obj.f64("f1", self.f1);
        obj.finish()
    }
}

/// The θ grid used for threshold sweeps (both for the `thr` baseline and
/// `DE_D(θ)`).
pub fn theta_grid() -> Vec<f64> {
    vec![0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.60, 0.70]
}

/// The K grid for `DE_S(K)` sweeps.
pub fn k_grid() -> Vec<usize> {
    vec![2, 3, 4, 5, 6, 8]
}

/// Phase-1 outputs reusable across a whole sweep: top-K lists fetched once
/// at the largest K of [`k_grid`], radius lists fetched once at the
/// largest θ of [`theta_grid`].
///
/// The reuse is sound because NN lists for a smaller K are *prefixes* of
/// the larger-K lists, and partitioning at a smaller θ over larger-θ lists
/// rejects the extra candidates through the diameter check — both verified
/// against from-scratch runs in the test suite.
pub struct SweepContext {
    /// `NN_Reln` with `max(k_grid)` neighbors per tuple.
    pub topk_reln: NnReln,
    /// `NN_Reln` with all neighbors within `max(theta_grid)` per tuple.
    pub radius_reln: NnReln,
}

impl SweepContext {
    /// Run Phase 1 twice (top-K and radius flavors) for a dataset.
    pub fn build(dataset: &Dataset, distance: DistanceKind) -> Self {
        let max_k = k_grid().into_iter().max().unwrap_or(8);
        let max_theta = theta_grid().last().copied().unwrap_or(0.7);
        let topk = Deduplicator::new(
            DedupConfig::new(distance).cut(CutSpec::Size(max_k)).sn_threshold(4.0),
        )
        .run_records(&dataset.records)
        .expect("top-K phase 1");
        let radius = Deduplicator::new(
            DedupConfig::new(distance).cut(CutSpec::Diameter(max_theta)).sn_threshold(4.0),
        )
        .run_records(&dataset.records)
        .expect("radius phase 1");
        Self { topk_reln: topk.nn_reln, radius_reln: radius.nn_reln }
    }
}

/// Sweep the single-linkage threshold baseline (`thr`) over the θ grid.
///
/// As in the paper, the threshold graph is induced from the output of the
/// nearest-neighbor computation phase and reused for every threshold.
pub fn sweep_threshold_baseline(ctx: &SweepContext, dataset: &Dataset) -> Vec<QualityPoint> {
    theta_grid()
        .into_iter()
        .map(|theta| {
            let partition = single_linkage(&ctx.radius_reln, theta);
            let pr = evaluate(&partition, &dataset.gold);
            QualityPoint::new("thr".to_string(), theta, pr)
        })
        .collect()
}

/// Sweep `DE_S(K)` over the K grid at a fixed SN threshold `c`, reusing
/// the context's top-K lists.
pub fn sweep_de_size(
    ctx: &SweepContext,
    dataset: &Dataset,
    agg: Aggregation,
    c: f64,
) -> Vec<QualityPoint> {
    k_grid()
        .into_iter()
        .map(|k| {
            let partition = partition_entries(&ctx.topk_reln, CutSpec::Size(k), agg, c);
            let pr = evaluate(&partition, &dataset.gold);
            QualityPoint::new(format!("DE_S:{}{}", agg.name(), c as i64), k as f64, pr)
        })
        .collect()
}

/// Sweep `DE_D(θ)` over the θ grid at a fixed SN threshold `c`, reusing
/// the context's radius lists.
pub fn sweep_de_diameter(
    ctx: &SweepContext,
    dataset: &Dataset,
    agg: Aggregation,
    c: f64,
) -> Vec<QualityPoint> {
    theta_grid()
        .into_iter()
        .map(|theta| {
            let partition = partition_entries(&ctx.radius_reln, CutSpec::Diameter(theta), agg, c);
            let pr = evaluate(&partition, &dataset.gold);
            QualityPoint::new(format!("DE_D:{}{}", agg.name(), c as i64), theta, pr)
        })
        .collect()
}

/// Best F1 over a series (headline comparison number).
pub fn best_f1(points: &[QualityPoint]) -> f64 {
    points.iter().map(|p| p.f1).fold(0.0, f64::max)
}

/// Best precision at recall ≥ `floor` — the paper's "for the same recall,
/// higher precision" comparison.
pub fn best_precision_at_recall(points: &[QualityPoint], floor: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.recall >= floor)
        .map(|p| p.precision)
        .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
}

/// Render a quality table (one row per point) in the figures' shape.
pub fn render_quality_table(title: &str, series: &[Vec<QualityPoint>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<16} {:>9} {:>8} {:>10} {:>7}\n",
        "algorithm", "param", "recall", "precision", "f1"
    ));
    for points in series {
        for p in points {
            out.push_str(&format!(
                "{:<16} {:>9.3} {:>8.3} {:>10.3} {:>7.3}\n",
                p.algorithm, p.parameter, p.recall, p.precision, p.f1
            ));
        }
    }
    out
}

/// Render the headline summary: best precision at fixed recall floors,
/// per algorithm family.
pub fn render_summary(dataset: &str, series: &[(&str, &[QualityPoint])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {dataset}: headline comparison\n"));
    out.push_str(&format!(
        "{:<16} {:>8} {:>22} {:>22}\n",
        "algorithm", "best F1", "best P @ recall>=0.5", "best P @ recall>=0.7"
    ));
    for (name, points) in series {
        let p50 =
            best_precision_at_recall(points, 0.5).map_or("-".to_string(), |p| format!("{p:.3}"));
        let p70 =
            best_precision_at_recall(points, 0.7).map_or("-".to_string(), |p| format!("{p:.3}"));
        out.push_str(&format!("{:<16} {:>8.3} {:>22} {:>22}\n", name, best_f1(points), p50, p70));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(algo: &str, r: f64, p: f64) -> QualityPoint {
        QualityPoint {
            algorithm: algo.into(),
            parameter: 0.0,
            recall: r,
            precision: p,
            f1: if r + p == 0.0 { 0.0 } else { 2.0 * r * p / (r + p) },
        }
    }

    #[test]
    fn best_f1_and_precision_at_recall() {
        let pts = vec![pt("a", 0.9, 0.3), pt("a", 0.6, 0.8), pt("a", 0.4, 0.95)];
        assert!((best_f1(&pts) - (2.0 * 0.6 * 0.8 / 1.4)).abs() < 1e-12);
        assert_eq!(best_precision_at_recall(&pts, 0.5), Some(0.8));
        assert_eq!(best_precision_at_recall(&pts, 0.95), None);
    }

    #[test]
    fn render_does_not_panic() {
        let pts = vec![pt("thr", 0.5, 0.5)];
        let table = render_quality_table("t", std::slice::from_ref(&pts));
        assert!(table.contains("thr"));
        let summary = render_summary("d", &[("thr", &pts)]);
        assert!(summary.contains("best F1"));
    }

    #[test]
    fn grids_are_sorted() {
        let g = theta_grid();
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        let k = k_grid();
        assert!(k.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_end_to_end_sweep() {
        // A tiny smoke test over the Table-1 relation keeps the sweeps
        // honest without slowing the suite.
        let d = fuzzydedup_datagen::media::table1();
        let ctx = SweepContext::build(&d, DistanceKind::FuzzyMatch);
        let thr = sweep_threshold_baseline(&ctx, &d);
        assert_eq!(thr.len(), theta_grid().len());
        let des = sweep_de_size(&ctx, &d, Aggregation::Max, 4.0);
        assert_eq!(des.len(), k_grid().len());
        assert!(best_f1(&des) > 0.0);
    }

    #[test]
    fn reused_lists_match_from_scratch_runs() {
        // The prefix-reuse trick must be exactly equivalent to running the
        // pipeline at each sweep point.
        use fuzzydedup_core::CutSpec;
        let d = fuzzydedup_datagen::media::table1();
        let ctx = SweepContext::build(&d, DistanceKind::FuzzyMatch);
        for k in [2usize, 3, 4] {
            let from_ctx =
                partition_entries(&ctx.topk_reln, CutSpec::Size(k), Aggregation::Max, 4.0);
            let scratch = Deduplicator::new(
                DedupConfig::new(DistanceKind::FuzzyMatch).cut(CutSpec::Size(k)).sn_threshold(4.0),
            )
            .run_records(&d.records)
            .unwrap();
            assert_eq!(from_ctx, scratch.partition, "K={k}");
        }
        for theta in [0.15f64, 0.3, 0.5] {
            let from_ctx = partition_entries(
                &ctx.radius_reln,
                CutSpec::Diameter(theta),
                Aggregation::Max,
                4.0,
            );
            let scratch = Deduplicator::new(
                DedupConfig::new(DistanceKind::FuzzyMatch)
                    .cut(CutSpec::Diameter(theta))
                    .sn_threshold(4.0),
            )
            .run_records(&d.records)
            .unwrap();
            assert_eq!(from_ctx, scratch.partition, "theta={theta}");
        }
    }
}
