//! Bench-regression gate: compare fresh `BENCH_*.json` artifacts against
//! the committed baselines in `results/`.
//!
//! The comparison key is `min_ns` — the fastest observed sample, which is
//! far more stable under scheduler noise than the mean (noise only ever
//! *adds* time). The gate is one-sided: it fails when a fresh measurement
//! is slower than `baseline · (1 + tolerance)`, and merely reports large
//! improvements so the baseline can be refreshed intentionally (see
//! `README.md` — "Refreshing bench baselines"). A benchmark present in
//! the baseline but missing from the fresh run also fails: renames must
//! be accompanied by a baseline refresh, not slip through silently.

use fuzzydedup_metrics::json::{parse, JsonValue};

/// One benchmark's measurements from a `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Benchmark name within the group (e.g. `myers/16`).
    pub name: String,
    /// Fastest observed sample in nanoseconds.
    pub min_ns: f64,
    /// Mean sample in nanoseconds.
    pub mean_ns: f64,
}

/// Parse the benchmark cases out of a `BENCH_<group>.json` document (the
/// shape the vendored criterion shim emits).
pub fn parse_bench_file(text: &str) -> Result<Vec<BenchCase>, String> {
    let doc = parse(text)?;
    let benches = doc
        .get("benchmarks")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"benchmarks\" array".to_string())?;
    let mut out = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "benchmark entry without \"name\"".to_string())?
            .to_string();
        let min_ns = b
            .get("min_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("benchmark {name:?} without numeric \"min_ns\""))?;
        let mean_ns = b.get("mean_ns").and_then(JsonValue::as_f64).unwrap_or(min_ns);
        out.push(BenchCase { name, min_ns, mean_ns });
    }
    Ok(out)
}

/// Outcome of one baseline-vs-fresh benchmark comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Faster than `baseline · (1 − tolerance)` — consider refreshing the
    /// baseline (reported, never fails the gate).
    Improved,
    /// Slower than `baseline · (1 + tolerance)` — fails the gate.
    Regressed,
    /// In the baseline but absent from the fresh run — fails the gate.
    Missing,
    /// In the fresh run but absent from the baseline (reported only).
    New,
}

impl Verdict {
    /// Whether this verdict fails the gate.
    pub fn fails(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::Missing)
    }

    /// Fixed-width label for the report table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One row of the gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline `min_ns` (`None` for [`Verdict::New`]).
    pub baseline_ns: Option<f64>,
    /// Fresh `min_ns` (`None` for [`Verdict::Missing`]).
    pub fresh_ns: Option<f64>,
    /// `fresh / baseline` when both sides exist.
    pub ratio: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compare a fresh run against a baseline with a symmetric reporting
/// tolerance (e.g. `0.15` = ±15%). Rows come back in baseline order with
/// fresh-only rows appended, so the report is stable.
pub fn compare(baseline: &[BenchCase], fresh: &[BenchCase], tolerance: f64) -> Vec<Comparison> {
    let mut rows = Vec::with_capacity(baseline.len());
    for base in baseline {
        match fresh.iter().find(|f| f.name == base.name) {
            Some(f) => {
                let ratio = if base.min_ns > 0.0 { f.min_ns / base.min_ns } else { 1.0 };
                let verdict = if ratio > 1.0 + tolerance {
                    Verdict::Regressed
                } else if ratio < 1.0 - tolerance {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                rows.push(Comparison {
                    name: base.name.clone(),
                    baseline_ns: Some(base.min_ns),
                    fresh_ns: Some(f.min_ns),
                    ratio: Some(ratio),
                    verdict,
                });
            }
            None => rows.push(Comparison {
                name: base.name.clone(),
                baseline_ns: Some(base.min_ns),
                fresh_ns: None,
                ratio: None,
                verdict: Verdict::Missing,
            }),
        }
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            rows.push(Comparison {
                name: f.name.clone(),
                baseline_ns: None,
                fresh_ns: Some(f.min_ns),
                ratio: None,
                verdict: Verdict::New,
            });
        }
    }
    rows
}

/// Whether any row fails the gate.
pub fn has_regression(rows: &[Comparison]) -> bool {
    rows.iter().any(|r| r.verdict.fails())
}

/// Render the report rows as an aligned plain-text table.
pub fn render_table(group: &str, rows: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{group}\n  {:<28} {:>12} {:>12} {:>8}  verdict\n",
        "benchmark", "base min_ns", "fresh min_ns", "ratio"
    ));
    for r in rows {
        let base = r.baseline_ns.map_or("-".to_string(), |v| format!("{v:.1}"));
        let fresh = r.fresh_ns.map_or("-".to_string(), |v| format!("{v:.1}"));
        let ratio = r.ratio.map_or("-".to_string(), |v| format!("{v:.2}x"));
        out.push_str(&format!(
            "  {:<28} {base:>12} {fresh:>12} {ratio:>8}  {}\n",
            r.name,
            r.verdict.label()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, min_ns: f64) -> BenchCase {
        BenchCase { name: name.to_string(), min_ns, mean_ns: min_ns * 1.1 }
    }

    #[test]
    fn parses_criterion_shim_artifact() {
        let text = r#"{
  "group": "edit_kernel",
  "unit": "ns",
  "benchmarks": [
    {"name": "dp/16", "mean_ns": 14875.6, "min_ns": 12778.4, "max_ns": 30149.0, "samples": 20, "iters_per_sample": 10},
    {"name": "myers/16", "mean_ns": 3831.0, "min_ns": 3722.9, "max_ns": 4134.4, "samples": 20, "iters_per_sample": 10}
  ]
}"#;
        let cases = parse_bench_file(text).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "dp/16");
        assert_eq!(cases[0].min_ns, 12778.4);
        assert_eq!(cases[1].name, "myers/16");
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(parse_bench_file("not json").is_err());
        assert!(parse_bench_file("{\"group\": \"g\"}").is_err());
        assert!(parse_bench_file("{\"benchmarks\": [{\"min_ns\": 1.0}]}").is_err());
    }

    #[test]
    fn injected_fifty_percent_slowdown_fails_the_gate() {
        // The scratch test of the acceptance criteria: a deliberate 50%
        // slowdown on one benchmark must trip the default ±15% gate.
        let baseline = vec![case("kernel/word", 1000.0), case("kernel/blocked", 5000.0)];
        let fresh = vec![case("kernel/word", 1500.0), case("kernel/blocked", 5000.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(has_regression(&rows));
        let bad = rows.iter().find(|r| r.name == "kernel/word").unwrap();
        assert_eq!(bad.verdict, Verdict::Regressed);
        assert!((bad.ratio.unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = vec![case("a", 1000.0), case("b", 2000.0)];
        let fresh = vec![case("a", 1100.0), case("b", 1900.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(!has_regression(&rows));
        assert!(rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn improvement_is_reported_not_failed() {
        let baseline = vec![case("a", 1000.0)];
        let fresh = vec![case("a", 500.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(!has_regression(&rows));
        assert_eq!(rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn missing_fails_and_new_is_reported() {
        let baseline = vec![case("renamed_away", 1000.0)];
        let fresh = vec![case("renamed_to", 1000.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verdict, Verdict::Missing);
        assert_eq!(rows[1].verdict, Verdict::New);
        assert!(has_regression(&rows));
    }

    #[test]
    fn boundary_exactly_at_tolerance_passes() {
        let baseline = vec![case("a", 1000.0)];
        let fresh = vec![case("a", 1150.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(!has_regression(&rows), "ratio exactly 1+tol is not a regression");
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = compare(&[case("a", 1000.0)], &[case("a", 1600.0), case("b", 10.0)], 0.15);
        let table = render_table("edit_kernel", &rows);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("new"));
        assert!(table.contains("1.60x"));
    }
}
