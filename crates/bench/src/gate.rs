//! Bench-regression gate: compare fresh `BENCH_*.json` artifacts against
//! the committed baselines in `results/`.
//!
//! The comparison key is `min_ns` — the fastest observed sample, which is
//! far more stable under scheduler noise than the mean (noise only ever
//! *adds* time). The gate is one-sided: it fails when a fresh measurement
//! is slower than `baseline · (1 + tolerance)`, and merely reports large
//! improvements so the baseline can be refreshed intentionally (see
//! `README.md` — "Refreshing bench baselines"). A benchmark present in
//! the baseline but missing from the fresh run also fails: renames must
//! be accompanied by a baseline refresh, not slip through silently.

use fuzzydedup_metrics::json::{parse, JsonArray, JsonObject, JsonValue};

/// One benchmark's measurements from a `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Benchmark name within the group (e.g. `myers/16`).
    pub name: String,
    /// Fastest observed sample in nanoseconds.
    pub min_ns: f64,
    /// Mean sample in nanoseconds.
    pub mean_ns: f64,
}

/// One benchmark row of a `BENCH_*.json` artifact with every field the
/// criterion shim emits — the full-fidelity counterpart of [`BenchCase`],
/// used where the artifact must be rewritten (the worst-window baseline
/// merge of `bench_merge` / `scripts/bench_refresh.sh`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Benchmark name within the group.
    pub name: String,
    /// Mean sample in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed sample in nanoseconds.
    pub min_ns: f64,
    /// Slowest observed sample in nanoseconds.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: u64,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
}

/// A whole `BENCH_<group>.json` document, parse/render round-trippable.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Benchmark group name (`BENCH_<group>.json`).
    pub group: String,
    /// Time unit (always `ns` from the shim).
    pub unit: String,
    /// Benchmark rows in artifact order.
    pub rows: Vec<BenchRow>,
}

/// Parse a `BENCH_<group>.json` document keeping every field, so the
/// document can be rewritten without losing `max_ns`/`samples`/... .
pub fn parse_bench_doc(text: &str) -> Result<BenchDoc, String> {
    let doc = parse(text)?;
    let group = doc
        .get("group")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing \"group\"".to_string())?
        .to_string();
    let unit = doc.get("unit").and_then(JsonValue::as_str).unwrap_or("ns").to_string();
    let benches = doc
        .get("benchmarks")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"benchmarks\" array".to_string())?;
    let mut rows = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "benchmark entry without \"name\"".to_string())?
            .to_string();
        let field = |key: &str| -> Result<f64, String> {
            b.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("benchmark {name:?} without numeric {key:?}"))
        };
        let min_ns = field("min_ns")?;
        rows.push(BenchRow {
            mean_ns: b.get("mean_ns").and_then(JsonValue::as_f64).unwrap_or(min_ns),
            max_ns: b.get("max_ns").and_then(JsonValue::as_f64).unwrap_or(min_ns),
            samples: b.get("samples").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
            iters_per_sample: b.get("iters_per_sample").and_then(JsonValue::as_f64).unwrap_or(1.0)
                as u64,
            name,
            min_ns,
        });
    }
    Ok(BenchDoc { group, unit, rows })
}

/// Render a [`BenchDoc`] in exactly the criterion shim's artifact shape
/// (same field order, one row per line, fixed one-decimal precision), so
/// merged baselines diff cleanly against shim-written ones.
pub fn render_bench_doc(doc: &BenchDoc) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"group\": \"{}\",\n", doc.group));
    out.push_str(&format!("  \"unit\": \"{}\",\n  \"benchmarks\": [\n", doc.unit));
    for (i, r) in doc.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.name.replace('"', "'"),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 < doc.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Worst-window merge of N passes of the same benchmark group: for each
/// row, keep the pass with the **largest** `min_ns`.
///
/// `min_ns` is noise-floor-stable *within* a pass but optimistic *across*
/// passes: a single quiet window makes the whole baseline unbeatable on a
/// normal day, and the regression gate then cries wolf. Taking the
/// per-row maximum of the per-pass minima keeps the baseline at the level
/// a fresh run can actually reproduce. The winning pass's full row (mean,
/// max, sample counts) is kept, so the artifact stays internally
/// consistent.
///
/// Every pass must contain exactly the rows of the first pass (order may
/// differ); a vanished or extra row is an error, not a silent drop.
pub fn merge_worst_window(passes: &[BenchDoc]) -> Result<BenchDoc, String> {
    let first = passes.first().ok_or("no passes to merge")?;
    let mut merged = first.clone();
    for (i, pass) in passes.iter().enumerate().skip(1) {
        if pass.group != first.group {
            return Err(format!(
                "pass {} is group {:?}, expected {:?}",
                i + 1,
                pass.group,
                first.group
            ));
        }
        if pass.rows.len() != first.rows.len() {
            return Err(format!(
                "pass {} has {} rows, expected {}",
                i + 1,
                pass.rows.len(),
                first.rows.len()
            ));
        }
        for row in &mut merged.rows {
            let other = pass
                .rows
                .iter()
                .find(|r| r.name == row.name)
                .ok_or_else(|| format!("pass {} is missing benchmark {:?}", i + 1, row.name))?;
            if other.min_ns > row.min_ns {
                *row = other.clone();
            }
        }
    }
    Ok(merged)
}

/// Parse the benchmark cases out of a `BENCH_<group>.json` document (the
/// shape the vendored criterion shim emits).
pub fn parse_bench_file(text: &str) -> Result<Vec<BenchCase>, String> {
    let doc = parse(text)?;
    let benches = doc
        .get("benchmarks")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"benchmarks\" array".to_string())?;
    let mut out = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "benchmark entry without \"name\"".to_string())?
            .to_string();
        let min_ns = b
            .get("min_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("benchmark {name:?} without numeric \"min_ns\""))?;
        let mean_ns = b.get("mean_ns").and_then(JsonValue::as_f64).unwrap_or(min_ns);
        out.push(BenchCase { name, min_ns, mean_ns });
    }
    Ok(out)
}

/// Outcome of one baseline-vs-fresh benchmark comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Faster than `baseline · (1 − tolerance)` — consider refreshing the
    /// baseline (reported, never fails the gate).
    Improved,
    /// Slower than `baseline · (1 + tolerance)` — fails the gate.
    Regressed,
    /// In the baseline but absent from the fresh run — fails the gate.
    Missing,
    /// In the fresh run but absent from the baseline (reported only).
    New,
}

impl Verdict {
    /// Whether this verdict fails the gate.
    pub fn fails(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::Missing)
    }

    /// Fixed-width label for the report table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One row of the gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline `min_ns` (`None` for [`Verdict::New`]).
    pub baseline_ns: Option<f64>,
    /// Fresh `min_ns` (`None` for [`Verdict::Missing`]).
    pub fresh_ns: Option<f64>,
    /// `fresh / baseline` when both sides exist.
    pub ratio: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compare a fresh run against a baseline with a symmetric reporting
/// tolerance (e.g. `0.15` = ±15%). Rows come back in baseline order with
/// fresh-only rows appended, so the report is stable.
pub fn compare(baseline: &[BenchCase], fresh: &[BenchCase], tolerance: f64) -> Vec<Comparison> {
    compare_with_tolerances(baseline, fresh, tolerance, &|_| None)
}

/// [`compare`] with a per-row tolerance override: `row_tolerance(name)`
/// returning `Some(t)` replaces the global tolerance for that row. Tail
/// statistics (a p99 latency) legitimately wobble far more than a `min_ns`
/// hot-loop row; giving them a wider band here beats either failing the
/// stage into a retry storm or widening the gate for everything.
pub fn compare_with_tolerances(
    baseline: &[BenchCase],
    fresh: &[BenchCase],
    tolerance: f64,
    row_tolerance: &dyn Fn(&str) -> Option<f64>,
) -> Vec<Comparison> {
    let mut rows = Vec::with_capacity(baseline.len());
    for base in baseline {
        let tolerance = row_tolerance(&base.name).unwrap_or(tolerance);
        match fresh.iter().find(|f| f.name == base.name) {
            Some(f) => {
                let ratio = if base.min_ns > 0.0 { f.min_ns / base.min_ns } else { 1.0 };
                let verdict = if ratio > 1.0 + tolerance {
                    Verdict::Regressed
                } else if ratio < 1.0 - tolerance {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                rows.push(Comparison {
                    name: base.name.clone(),
                    baseline_ns: Some(base.min_ns),
                    fresh_ns: Some(f.min_ns),
                    ratio: Some(ratio),
                    verdict,
                });
            }
            None => rows.push(Comparison {
                name: base.name.clone(),
                baseline_ns: Some(base.min_ns),
                fresh_ns: None,
                ratio: None,
                verdict: Verdict::Missing,
            }),
        }
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            rows.push(Comparison {
                name: f.name.clone(),
                baseline_ns: None,
                fresh_ns: Some(f.min_ns),
                ratio: None,
                verdict: Verdict::New,
            });
        }
    }
    rows
}

/// Whether any row fails the gate.
pub fn has_regression(rows: &[Comparison]) -> bool {
    rows.iter().any(|r| r.verdict.fails())
}

/// Render the report rows as an aligned plain-text table.
pub fn render_table(group: &str, rows: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{group}\n  {:<28} {:>12} {:>12} {:>8}  verdict\n",
        "benchmark", "base min_ns", "fresh min_ns", "ratio"
    ));
    for r in rows {
        let base = r.baseline_ns.map_or("-".to_string(), |v| format!("{v:.1}"));
        let fresh = r.fresh_ns.map_or("-".to_string(), |v| format!("{v:.1}"));
        let ratio = r.ratio.map_or("-".to_string(), |v| format!("{v:.2}x"));
        out.push_str(&format!(
            "  {:<28} {base:>12} {fresh:>12} {ratio:>8}  {}\n",
            r.name,
            r.verdict.label()
        ));
    }
    out
}

/// Render per-bench verdicts as one compact JSON object — the shape
/// `ci_bench_gate --json-out` writes and `scripts/ci.sh` embeds verbatim
/// under the `"bench"` key of `results/ci_summary.json`.
///
/// `groups` pairs each artifact name (`BENCH_candidates.json`, ...) with
/// its comparison rows. `delta` is the relative change (`fresh/baseline −
/// 1`; +0.08 = 8% slower), omitted — like the absent side of the
/// measurement — for `missing`/`new` rows.
pub fn verdicts_json(tolerance: f64, groups: &[(String, Vec<Comparison>)]) -> String {
    let mut rows = JsonArray::new();
    let mut any_fails = false;
    for (artifact, comparisons) in groups {
        for r in comparisons {
            any_fails |= r.verdict.fails();
            rows.push_object(|o| {
                o.str("artifact", artifact);
                o.str("name", &r.name);
                if let Some(v) = r.baseline_ns {
                    o.f64_fixed("baseline_min_ns", v, 1);
                }
                if let Some(v) = r.fresh_ns {
                    o.f64_fixed("fresh_min_ns", v, 1);
                }
                if let Some(ratio) = r.ratio {
                    o.f64_fixed("delta", ratio - 1.0, 4);
                }
                o.str("verdict", r.verdict.label());
            });
        }
    }
    let mut out = JsonObject::new();
    out.f64("tolerance", tolerance);
    out.str("result", if any_fails { "fail" } else { "pass" });
    out.raw("benchmarks", &rows.finish());
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, min_ns: f64) -> BenchCase {
        BenchCase { name: name.to_string(), min_ns, mean_ns: min_ns * 1.1 }
    }

    #[test]
    fn parses_criterion_shim_artifact() {
        let text = r#"{
  "group": "edit_kernel",
  "unit": "ns",
  "benchmarks": [
    {"name": "dp/16", "mean_ns": 14875.6, "min_ns": 12778.4, "max_ns": 30149.0, "samples": 20, "iters_per_sample": 10},
    {"name": "myers/16", "mean_ns": 3831.0, "min_ns": 3722.9, "max_ns": 4134.4, "samples": 20, "iters_per_sample": 10}
  ]
}"#;
        let cases = parse_bench_file(text).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "dp/16");
        assert_eq!(cases[0].min_ns, 12778.4);
        assert_eq!(cases[1].name, "myers/16");
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(parse_bench_file("not json").is_err());
        assert!(parse_bench_file("{\"group\": \"g\"}").is_err());
        assert!(parse_bench_file("{\"benchmarks\": [{\"min_ns\": 1.0}]}").is_err());
    }

    #[test]
    fn injected_fifty_percent_slowdown_fails_the_gate() {
        // The scratch test of the acceptance criteria: a deliberate 50%
        // slowdown on one benchmark must trip the default ±15% gate.
        let baseline = vec![case("kernel/word", 1000.0), case("kernel/blocked", 5000.0)];
        let fresh = vec![case("kernel/word", 1500.0), case("kernel/blocked", 5000.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(has_regression(&rows));
        let bad = rows.iter().find(|r| r.name == "kernel/word").unwrap();
        assert_eq!(bad.verdict, Verdict::Regressed);
        assert!((bad.ratio.unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = vec![case("a", 1000.0), case("b", 2000.0)];
        let fresh = vec![case("a", 1100.0), case("b", 1900.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(!has_regression(&rows));
        assert!(rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn improvement_is_reported_not_failed() {
        let baseline = vec![case("a", 1000.0)];
        let fresh = vec![case("a", 500.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(!has_regression(&rows));
        assert_eq!(rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn missing_fails_and_new_is_reported() {
        let baseline = vec![case("renamed_away", 1000.0)];
        let fresh = vec![case("renamed_to", 1000.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verdict, Verdict::Missing);
        assert_eq!(rows[1].verdict, Verdict::New);
        assert!(has_regression(&rows));
    }

    #[test]
    fn per_row_tolerance_override_widens_only_that_row() {
        let baseline = vec![case("replay/point_query_p99", 1000.0), case("hot/loop", 1000.0)];
        let fresh = vec![case("replay/point_query_p99", 1500.0), case("hot/loop", 1500.0)];
        // Globally ±15% both rows regress; with the p99 row widened to
        // ±60%, only the hot loop still fails.
        let rows = compare_with_tolerances(&baseline, &fresh, 0.15, &|name| {
            (name == "replay/point_query_p99").then_some(0.60)
        });
        assert_eq!(rows[0].verdict, Verdict::Ok);
        assert_eq!(rows[1].verdict, Verdict::Regressed);
        // Improvements are judged against the same per-row band.
        let fast = vec![case("replay/point_query_p99", 500.0), case("hot/loop", 500.0)];
        let rows = compare_with_tolerances(&baseline, &fast, 0.15, &|name| {
            (name == "replay/point_query_p99").then_some(0.60)
        });
        assert_eq!(rows[0].verdict, Verdict::Ok, "within the wide band");
        assert_eq!(rows[1].verdict, Verdict::Improved);
    }

    #[test]
    fn boundary_exactly_at_tolerance_passes() {
        let baseline = vec![case("a", 1000.0)];
        let fresh = vec![case("a", 1150.0)];
        let rows = compare(&baseline, &fresh, 0.15);
        assert!(!has_regression(&rows), "ratio exactly 1+tol is not a regression");
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = compare(&[case("a", 1000.0)], &[case("a", 1600.0), case("b", 10.0)], 0.15);
        let table = render_table("edit_kernel", &rows);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("new"));
        assert!(table.contains("1.60x"));
    }

    fn row(name: &str, min_ns: f64) -> BenchRow {
        BenchRow {
            name: name.to_string(),
            mean_ns: min_ns * 1.2,
            min_ns,
            max_ns: min_ns * 2.0,
            samples: 10,
            iters_per_sample: 3,
        }
    }

    #[test]
    fn bench_doc_round_trips_through_the_shim_format() {
        // Values exact at one decimal: the render is fixed-precision
        // (matching the shim), so only such docs round-trip bit-exactly.
        let exact = |name: &str, min_ns: f64| BenchRow {
            name: name.to_string(),
            mean_ns: min_ns + 0.5,
            min_ns,
            max_ns: min_ns * 2.0,
            samples: 10,
            iters_per_sample: 3,
        };
        let doc = BenchDoc {
            group: "candidates".to_string(),
            unit: "ns".to_string(),
            rows: vec![exact("csr/gen", 17424231.0), exact("packed/gen", 9000001.5)],
        };
        let text = render_bench_doc(&doc);
        // The render must be byte-compatible with what the shim writes:
        // the summary parser must see the same cases either way.
        let cases = parse_bench_file(&text).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[1].min_ns, 9000001.5);
        let reparsed = parse_bench_doc(&text).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn worst_window_merge_keeps_the_slowest_minimum_per_row() {
        let mk = |a: f64, b: f64| BenchDoc {
            group: "g".to_string(),
            unit: "ns".to_string(),
            rows: vec![row("a", a), row("b", b)],
        };
        // Pass 2 hit a quiet window on "a" (faster min); pass 3 on "b".
        // The merge must keep the reproducible (slower) minimum of each.
        let merged =
            merge_worst_window(&[mk(1000.0, 2200.0), mk(900.0, 2500.0), mk(1100.0, 2000.0)])
                .unwrap();
        assert_eq!(merged.rows[0].min_ns, 1100.0);
        assert_eq!(merged.rows[1].min_ns, 2500.0);
        // The winning row is taken whole, so mean/max stay consistent
        // with the min they were measured alongside.
        assert_eq!(merged.rows[0].mean_ns, 1100.0 * 1.2);
        assert_eq!(merged.rows[1].max_ns, 2500.0 * 2.0);
    }

    #[test]
    fn worst_window_merge_rejects_row_mismatches() {
        let one =
            BenchDoc { group: "g".to_string(), unit: "ns".to_string(), rows: vec![row("a", 1.0)] };
        let renamed =
            BenchDoc { group: "g".to_string(), unit: "ns".to_string(), rows: vec![row("b", 1.0)] };
        assert!(merge_worst_window(&[]).is_err());
        assert!(merge_worst_window(&[one.clone(), renamed]).is_err());
        let other_group = BenchDoc { group: "h".to_string(), ..one.clone() };
        assert!(merge_worst_window(&[one, other_group]).is_err());
    }

    #[test]
    fn verdicts_json_carries_every_row_and_parses_back() {
        use fuzzydedup_metrics::json::parse;
        let rows = compare(&[case("a", 1000.0), case("gone", 5.0)], &[case("a", 1500.0)], 0.15);
        let text = verdicts_json(0.15, &[("BENCH_x.json".to_string(), rows)]);
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("result").and_then(JsonValue::as_str), Some("fail"));
        let benches = doc.get("benchmarks").and_then(JsonValue::as_array).unwrap();
        assert_eq!(benches.len(), 2);
        let a = &benches[0];
        assert_eq!(a.get("name").and_then(JsonValue::as_str), Some("a"));
        assert_eq!(a.get("verdict").and_then(JsonValue::as_str), Some("REGRESSED"));
        assert_eq!(a.get("baseline_min_ns").and_then(JsonValue::as_f64), Some(1000.0));
        assert_eq!(a.get("fresh_min_ns").and_then(JsonValue::as_f64), Some(1500.0));
        assert!((a.get("delta").and_then(JsonValue::as_f64).unwrap() - 0.5).abs() < 1e-9);
        // The missing row has no fresh side and no delta.
        let gone = &benches[1];
        assert_eq!(gone.get("verdict").and_then(JsonValue::as_str), Some("MISSING"));
        assert!(gone.get("fresh_min_ns").is_none());
        assert!(gone.get("delta").is_none());
    }
}
