//! Traffic replay over the long-running dedup service.
//!
//! Drives a [`DedupService`] with a mixed ingest/query workload over the
//! synthetic Org corpus — the service-shaped counterpart of
//! `exp_scale_1m`'s batch scale-out. One replay:
//!
//! 1. generates `records` Org rows (same `82/100` entity inflation and
//!    seed as the scale driver, so corpora are comparable across
//!    experiments);
//! 2. submits every record through the bounded ingest queue
//!    (`submit_wait`, i.e. backpressure-respecting) while interleaving
//!    point queries at `query_ratio` queries per op, probing the text of
//!    already-generated records — queries run against the published
//!    epoch snapshot while the writer admits batches concurrently;
//! 3. optionally paces the op stream to `qps` operations per second;
//! 4. drains, then reports exact point-query latency quantiles (computed
//!    from every recorded request, not the service's coarse log2
//!    histogram), the final partition for identity checks, and a
//!    `RunMetrics` with the `service` section filled in.
//!
//! The replay itself is deterministic given the config (corpus seed,
//! interleave pattern, probe choice); only the measured latencies vary
//! run to run.

use std::time::{Duration, Instant};

use fuzzydedup_core::{
    CutSpec, DedupService, IncrementalDedup, Parallelism, Partition, ServiceConfig, ServiceStats,
};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_metrics::RunMetrics;
use fuzzydedup_textdist::EditDistance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gate::{render_bench_doc, BenchDoc, BenchRow};

/// Replay workload shape.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Org records to generate and ingest.
    pub records: usize,
    /// Service admission batch size ([`ServiceConfig::admit_batch_size`]).
    pub batch_size: usize,
    /// Bounded ingest-queue capacity.
    pub queue_capacity: usize,
    /// Point queries issued per operation, as a fraction of total ops in
    /// `[0, 1)` — e.g. `0.3` ≈ 30% of the op stream are queries.
    pub query_ratio: f64,
    /// Total operations (ingest + query) per second; `0` = unpaced.
    pub qps: u64,
    /// RNG seed for probe selection (corpus seed is fixed at 42 to match
    /// `exp_scale_1m`).
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            records: 10_000,
            batch_size: 64,
            queue_capacity: 1024,
            query_ratio: 0.3,
            qps: 0,
            seed: 7,
        }
    }
}

/// Everything one replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The generated corpus, in submission order.
    pub records: Vec<Vec<String>>,
    /// Final (post-drain) partition from the service snapshot.
    pub partition: Partition,
    /// Final service statistics.
    pub stats: ServiceStats,
    /// Run metrics with the `service` section filled (exact quantiles).
    pub metrics: RunMetrics,
    /// Per-request point-query latencies, sorted ascending (ns).
    pub query_latencies_ns: Vec<u64>,
    /// Wall-clock of the whole mixed phase, submit of the first record to
    /// drain completion (ns).
    pub replay_wall_ns: u64,
}

impl ReplayOutcome {
    /// Exact latency quantile from the recorded requests (0 if none).
    pub fn query_quantile_ns(&self, q: f64) -> u64 {
        percentile_ns(&self.query_latencies_ns, q)
    }

    /// Mean ingest cost per record over the mixed phase (ns) — total wall
    /// divided by records admitted, the service-level throughput figure.
    pub fn ingest_ns_per_record(&self) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        self.replay_wall_ns / self.records.len() as u64
    }
}

/// Exact quantile over an ascending-sorted latency slice (0 if empty).
pub fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Generate the Org corpus used by the replay (the scale driver's shape:
/// seed 42, `records * 82 / 100` entities, truncated to `records`).
pub fn org_corpus(records: usize) -> Vec<Vec<String>> {
    let entities = (records * 82 / 100).max(1);
    let mut rng = StdRng::seed_from_u64(42);
    let dataset =
        org::generate(&mut rng, DatasetSpec { n_entities: entities, ..DatasetSpec::medium() });
    let mut out = dataset.records;
    assert!(out.len() >= records, "need {records} Org records, got {}", out.len());
    out.truncate(records);
    out
}

/// Run one traffic replay; see module docs. The service is configured
/// with `EditDistance` + `DE_S(4)` / `Max` / `c = 4` — the same knobs the
/// drain-identity suite pins, so callers can cheaply verify the final
/// partition against a from-scratch batch run.
pub fn replay(config: ReplayConfig) -> ReplayOutcome {
    assert!((0.0..1.0).contains(&config.query_ratio), "query_ratio must be in [0, 1)");
    let records = org_corpus(config.records);
    let service_config = ServiceConfig::new()
        .admit_batch_size(config.batch_size.max(1))
        .queue_capacity(config.queue_capacity.max(1));
    let before = fuzzydedup_metrics::snapshot();
    // Pair cache + parallel refresh: batch-to-batch refreshes re-verify
    // mostly unchanged pairs, so the memo absorbs the bulk of the work;
    // both knobs are partition-identical by the incremental test suite,
    // so drain-identity against the (cache-less, sequential) batch
    // pipeline still holds bit-for-bit.
    let mut service = DedupService::spawn(
        IncrementalDedup::builder(EditDistance)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .pair_cache_capacity(1 << 22)
            .parallelism(Parallelism::threads(0)),
        service_config,
    )
    .expect("spawn replay service");

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Queries per ingest op: ratio r of total ops means r/(1-r) queries
    // accompany each submitted record.
    let queries_per_ingest = config.query_ratio / (1.0 - config.query_ratio);
    let pacing = (config.qps > 0).then(|| Duration::from_nanos(1_000_000_000 / config.qps));

    let mut latencies: Vec<u64> = Vec::new();
    let mut query_debt = 0.0f64;
    let mut ops = 0u64;
    let started = Instant::now();
    for (i, record) in records.iter().enumerate() {
        service.submit_wait(record.clone()).expect("service accepts while running");
        ops += 1;
        query_debt += queries_per_ingest;
        while query_debt >= 1.0 {
            query_debt -= 1.0;
            // Probe the text of a record generated so far (it may or may
            // not be admitted yet — query-by-content either way).
            let probe = &records[rng.gen_range(0..=i)];
            let fields: Vec<&str> = probe.iter().map(String::as_str).collect();
            let t = Instant::now();
            let answer = service.query(&fields);
            latencies.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            ops += 1;
            debug_assert!(answer.corpus_len <= records.len());
        }
        if let Some(per_op) = pacing {
            let due = per_op * ops as u32;
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
    }
    service.drain();
    let replay_wall_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    let stats = service.stats();
    let (_, partition) = service.snapshot_partition();
    let mut metrics = RunMetrics::default();
    metrics.apply_counter_delta(&fuzzydedup_metrics::snapshot().delta(&before));
    // Service-filled fields: high-water from the service, quantiles exact
    // from the recorded requests (the in-service histogram is log2-coarse).
    latencies.sort_unstable();
    metrics.service.queue_depth_high_water = stats.queue_depth_high_water as u64;
    metrics.service.query_p50_ns = percentile_ns(&latencies, 0.50);
    metrics.service.query_p99_ns = percentile_ns(&latencies, 0.99);
    service.shutdown();

    ReplayOutcome {
        records,
        partition,
        stats,
        metrics,
        query_latencies_ns: latencies,
        replay_wall_ns,
    }
}

/// Where `BENCH_<group>.json` artifacts land for custom (non-criterion)
/// bench mains: `$BENCH_OUT_DIR` (relative values anchored at the
/// workspace root, matching the criterion shim), else
/// `<workspace>/results`.
pub fn bench_out_dir() -> std::path::PathBuf {
    let root = workspace_root();
    match std::env::var("BENCH_OUT_DIR") {
        Ok(dir) if std::path::Path::new(&dir).is_absolute() => std::path::PathBuf::from(dir),
        Ok(dir) => root.join(dir),
        Err(_) => root.join("results"),
    }
}

/// Walk up from CWD to the `[workspace]` manifest (the criterion shim's
/// rule — `cargo bench` runs with the package directory as CWD).
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        let is_root =
            std::fs::read_to_string(&manifest).map(|s| s.contains("[workspace]")).unwrap_or(false);
        if is_root {
            return dir;
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

/// Write a `BENCH_<group>.json` artifact in the criterion shim's exact
/// shape from `(name, min_ns-style value)` rows. `samples` records how
/// many replay repetitions backed each row.
pub fn write_bench_artifact(
    group: &str,
    rows: &[(String, u64)],
    samples: u64,
) -> std::path::PathBuf {
    let doc = BenchDoc {
        group: group.to_string(),
        unit: "ns".to_string(),
        rows: rows
            .iter()
            .map(|(name, ns)| BenchRow {
                name: name.clone(),
                mean_ns: *ns as f64,
                min_ns: *ns as f64,
                max_ns: *ns as f64,
                samples,
                iters_per_sample: 1,
            })
            .collect(),
    };
    let dir = bench_out_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("BENCH_{group}.json"));
    std::fs::write(&path, render_bench_doc(&doc)).expect("write bench artifact");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_exact_on_small_slices() {
        assert_eq!(percentile_ns(&[], 0.5), 0);
        assert_eq!(percentile_ns(&[7], 0.5), 7);
        assert_eq!(percentile_ns(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&v, 0.50), 50);
        assert_eq!(percentile_ns(&v, 0.99), 99);
        assert_eq!(percentile_ns(&v, 1.0), 100);
    }

    #[test]
    fn tiny_replay_round_trips() {
        let outcome = replay(ReplayConfig {
            records: 300,
            batch_size: 32,
            queue_capacity: 128,
            query_ratio: 0.25,
            qps: 0,
            seed: 7,
        });
        assert_eq!(outcome.stats.records_admitted, 300);
        assert_eq!(outcome.stats.corpus_len, 300);
        assert!(outcome.stats.point_queries as usize == outcome.query_latencies_ns.len());
        // ~1 query per 3 ingests at ratio 0.25.
        assert!(outcome.query_latencies_ns.len() >= 90);
        assert!(outcome.metrics.service.query_p50_ns > 0);
        assert!(outcome.metrics.service.batches_admitted >= 300 / 32);
        let covered: usize = outcome.partition.groups().iter().map(Vec::len).sum();
        assert_eq!(covered, 300);
    }
}
