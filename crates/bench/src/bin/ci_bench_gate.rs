//! `ci_bench_gate` — the `bench-smoke` stage of `scripts/ci.sh`.
//!
//! Re-runs the cheap benches into a scratch directory, then compares each
//! fresh `BENCH_*.json` against the committed baseline in `results/` with
//! a configurable tolerance (default ±15% on `min_ns`). Exits non-zero on
//! any regression or on a baselined benchmark that vanished; large
//! improvements are reported so the baseline can be refreshed
//! intentionally (`cargo bench -p fuzzydedup-bench --bench <name>` with
//! `BENCH_OUT_DIR` unset writes over `results/`; commit the diff).
//!
//! Usage: `ci_bench_gate [--tolerance 0.15] [--baseline-dir results]
//! [--fresh-dir DIR] [--json-out PATH]`. With `--fresh-dir` the benches
//! are NOT re-run; the artifacts already in that directory are compared
//! instead (used by the CI driver to decouple measurement from judgment,
//! and by the injected-slowdown scratch test). With `--json-out` the
//! per-bench verdicts (name, baseline `min_ns`, fresh `min_ns`, delta,
//! verdict) are also written as one compact JSON object, which
//! `scripts/ci.sh` merges into `results/ci_summary.json`.

use std::path::{Path, PathBuf};
use std::process::Command;

use fuzzydedup_bench::gate::{
    compare_with_tolerances, has_regression, parse_bench_file, render_table, verdicts_json,
    Comparison,
};

/// The cheap benches the gate re-runs: seconds each, covering the edit
/// kernel, the distance-function ladder above it, the storage layer below
/// the index, candidate generation (packed vs CSR vs page-backed
/// postings), and the two phase drivers (Phase 1 prepared/cached ladder,
/// Phase 2 seq/par).
const CHEAP_BENCHES: &[&str] = &[
    "bench_edit_kernel",
    "bench_distances",
    "bench_buffer_pool",
    "bench_candidates",
    "bench_phase1_cache",
    "bench_phase1_batch",
    "bench_phase1_pivot",
    "bench_phase1_collapse",
    "bench_phase2",
    "bench_service",
];

/// `BENCH_*.json` artifacts those benches emit.
const GATED_ARTIFACTS: &[&str] = &[
    "BENCH_edit_kernel.json",
    "BENCH_distances.json",
    "BENCH_buffer_pool.json",
    "BENCH_candidates.json",
    "BENCH_phase1_cache.json",
    "BENCH_phase1_batch.json",
    "BENCH_phase1_pivot.json",
    "BENCH_phase1_collapse.json",
    "BENCH_phase2.json",
    "BENCH_service.json",
];

/// Per-row tolerance overrides: `(artifact, row, tolerance)`. The service
/// replay's p99 point-query latency is a tail statistic — one scheduler
/// preemption inside the measured window moves it far beyond ±15% even on
/// a quiet machine — so it gets a wider band of its own instead of
/// dragging the whole stage into a storm retry.
const ROW_TOLERANCES: &[(&str, &str, f64)] =
    &[("BENCH_service.json", "replay/point_query_p99", 0.60)];

struct Args {
    tolerance: f64,
    baseline_dir: PathBuf,
    fresh_dir: Option<PathBuf>,
    json_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tolerance: std::env::var("BENCH_GATE_TOLERANCE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.15),
        baseline_dir: PathBuf::from("results"),
        fresh_dir: None,
        json_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                args.tolerance =
                    v.parse().map_err(|_| format!("invalid tolerance {v:?} (want e.g. 0.15)"))?;
            }
            "--baseline-dir" => {
                args.baseline_dir = PathBuf::from(it.next().ok_or("--baseline-dir needs a value")?)
            }
            "--fresh-dir" => {
                args.fresh_dir = Some(PathBuf::from(it.next().ok_or("--fresh-dir needs a value")?))
            }
            "--json-out" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json-out needs a value")?))
            }
            "--help" | "-h" => {
                println!(
                    "ci_bench_gate [--tolerance F] [--baseline-dir DIR] [--fresh-dir DIR] [--json-out PATH]\n\
                     Re-runs cheap benches and fails on >F relative slowdown vs baselines.\n\
                     --json-out also writes the per-bench verdicts as one JSON object."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !(0.0..10.0).contains(&args.tolerance) {
        return Err(format!("tolerance {} out of range [0, 10)", args.tolerance));
    }
    Ok(args)
}

/// Run the cheap benches with `BENCH_OUT_DIR` pointed at `out_dir`.
fn run_benches(out_dir: &Path) -> Result<(), String> {
    for bench in CHEAP_BENCHES {
        eprintln!("gate: running {bench} ...");
        let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
            .args(["bench", "-q", "-p", "fuzzydedup-bench", "--bench", bench])
            .env("BENCH_OUT_DIR", out_dir)
            .status()
            .map_err(|e| format!("cannot spawn cargo bench {bench}: {e}"))?;
        if !status.success() {
            return Err(format!("cargo bench {bench} failed with {status}"));
        }
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ci_bench_gate: {e}");
            std::process::exit(2);
        }
    };

    let scratch;
    let fresh_dir = match &args.fresh_dir {
        Some(dir) => dir.clone(),
        None => {
            scratch = std::env::temp_dir().join(format!("bench_gate_{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&scratch) {
                eprintln!("ci_bench_gate: cannot create {}: {e}", scratch.display());
                std::process::exit(2);
            }
            if let Err(e) = run_benches(&scratch) {
                eprintln!("ci_bench_gate: {e}");
                std::process::exit(2);
            }
            scratch
        }
    };

    let mut any_regression = false;
    let mut compared = 0usize;
    let mut verdict_groups: Vec<(String, Vec<Comparison>)> = Vec::new();
    for artifact in GATED_ARTIFACTS {
        let base_path = args.baseline_dir.join(artifact);
        let fresh_path = fresh_dir.join(artifact);
        let base_text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(_) => {
                eprintln!(
                    "gate: no baseline {} — run the benches with BENCH_OUT_DIR={} and commit",
                    base_path.display(),
                    args.baseline_dir.display()
                );
                continue;
            }
        };
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gate: fresh artifact {} unreadable: {e}", fresh_path.display());
                any_regression = true;
                continue;
            }
        };
        let (baseline, fresh) = match (parse_bench_file(&base_text), parse_bench_file(&fresh_text))
        {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                if let Err(e) = b {
                    eprintln!("gate: {}: {e}", base_path.display());
                }
                if let Err(e) = f {
                    eprintln!("gate: {}: {e}", fresh_path.display());
                }
                any_regression = true;
                continue;
            }
        };
        let rows = compare_with_tolerances(&baseline, &fresh, args.tolerance, &|row| {
            ROW_TOLERANCES
                .iter()
                .find(|(a, name, _)| a == artifact && *name == row)
                .map(|&(_, _, t)| t)
        });
        print!("{}", render_table(artifact, &rows));
        compared += rows.len();
        any_regression |= has_regression(&rows);
        verdict_groups.push((artifact.to_string(), rows));
    }

    if args.fresh_dir.is_none() {
        let _ = std::fs::remove_dir_all(&fresh_dir);
    }

    if let Some(path) = &args.json_out {
        let json = verdicts_json(args.tolerance, &verdict_groups);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(path, json + "\n") {
            Ok(()) => eprintln!("gate: verdicts -> {}", path.display()),
            Err(e) => {
                eprintln!("ci_bench_gate: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    if any_regression {
        eprintln!(
            "ci_bench_gate: FAIL — regression beyond ±{:.0}% (or missing benchmark)",
            args.tolerance * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("ci_bench_gate: ok — {compared} benchmarks within ±{:.0}%", args.tolerance * 100.0);
}
