//! Experiment T1 — Table 1: the motivating media examples.
//!
//! Runs the threshold baseline and the DE formulations on the paper's
//! exact Table 1 relation and reports which of the three true duplicate
//! pairs each method finds and how many false pairs it adds. The paper's
//! claim: "the traditional threshold-based approach cannot correctly
//! distinguish the set of duplicates without simultaneously collapsing
//! unique tuples together", while the CS+SN criteria can.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_table1`

use fuzzydedup_core::{evaluate, single_linkage, CutSpec, DedupConfig, Deduplicator, Partition};
use fuzzydedup_datagen::media::table1;
use fuzzydedup_textdist::DistanceKind;

fn describe(partition: &Partition, gold: &[usize], label: &str) {
    let pr = evaluate(partition, gold);
    let pairs = partition.duplicate_pairs();
    let true_found: Vec<&(u32, u32)> =
        pairs.iter().filter(|(a, b)| gold[*a as usize] == gold[*b as usize]).collect();
    let false_found: Vec<&(u32, u32)> =
        pairs.iter().filter(|(a, b)| gold[*a as usize] != gold[*b as usize]).collect();
    println!(
        "{label:<24} recall={:.2} precision={:.2}  true pairs found: {:?}  false pairs: {:?}",
        pr.recall, pr.precision, true_found, false_found
    );
}

fn main() {
    let dataset = table1();
    println!("Table 1 relation ({} records, {} true pairs):", dataset.len(), dataset.true_pairs());
    for (i, r) in dataset.records.iter().enumerate() {
        let marker = if dataset.gold.iter().filter(|&&g| g == dataset.gold[i]).count() > 1 {
            "*"
        } else {
            " "
        };
        println!("  {i:>2}{marker} {:<16} {}", r[0], r[1]);
    }
    println!();

    for distance in [DistanceKind::EditDistance, DistanceKind::FuzzyMatch] {
        println!("=== distance: {} ===", distance.name());
        // Threshold baseline at several global thresholds.
        let cfg = DedupConfig::new(distance).cut(CutSpec::Diameter(0.7)).sn_threshold(1e9);
        let outcome =
            Deduplicator::new(cfg.clone()).run_records(&dataset.records).expect("phase 1");
        for theta in [0.15, 0.25, 0.35, 0.45, 0.55] {
            let p = single_linkage(&outcome.nn_reln, theta);
            describe(&p, &dataset.gold, &format!("thr(θ={theta:.2})"));
        }
        // DE formulations.
        for c in [4.0, 6.0] {
            let cfg = DedupConfig::new(distance).cut(CutSpec::Size(4)).sn_threshold(c);
            let outcome =
                Deduplicator::new(cfg.clone()).run_records(&dataset.records).expect("DE_S");
            describe(&outcome.partition, &dataset.gold, &format!("DE_S(4) c={c}"));
        }
        for c in [4.0, 6.0] {
            let cfg = DedupConfig::new(distance).cut(CutSpec::Diameter(0.45)).sn_threshold(c);
            let outcome =
                Deduplicator::new(cfg.clone()).run_records(&dataset.records).expect("DE_D");
            describe(&outcome.partition, &dataset.gold, &format!("DE_D(0.45) c={c}"));
        }
        println!();
    }
}
