//! Experiment F9 — Figure 9: scalability of both phases.
//!
//! The paper plots normalized running times (normalized by the Phase-1
//! time on the smallest relation) of Phase 1 and Phase 2 against the
//! relation size, both axes logarithmic, on an organization relation of up
//! to 3 million rows; "the linearity of the plots demonstrates the
//! scalability of both phases".
//!
//! We reproduce the sweep at laptop scale (default 2k → 32k rows,
//! doublings) and additionally report the per-doubling growth factor — a
//! near-2 factor is the log-log linearity (slope ≈ 1) the paper shows.
//!
//! Run with:
//! `cargo run --release -p fuzzydedup-bench --bin exp_scalability -- [--sizes 2000,4000,...]`

use fuzzydedup_core::{CutSpec, DedupConfig, Deduplicator};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut sizes: Vec<usize> = vec![2_000, 4_000, 8_000, 16_000, 32_000];
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes n1,n2,..."))
                    .collect();
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    // One big relation, truncated per size so the sweeps share data.
    let max_n = sizes.iter().copied().max().unwrap_or(0);
    eprintln!("[exp_scalability] generating {max_n}-record Org relation...");
    let mut rng = StdRng::seed_from_u64(9);
    let dataset =
        org::generate(&mut rng, DatasetSpec { n_entities: max_n, ..DatasetSpec::medium() });

    println!(
        "{:>9} {:>12} {:>12} {:>10} {:>10}",
        "#tuples", "phase1(ms)", "phase2(ms)", "norm p1", "norm p2"
    );
    let mut baseline_p1: Option<f64> = None;
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &n in &sizes {
        let records: Vec<Vec<String>> = dataset.records.iter().take(n).cloned().collect();
        let config = DedupConfig::new(DistanceKind::FuzzyMatch)
            .cut(CutSpec::Size(5))
            .sn_threshold(4.0)
            .via_tables(true) // the paper's Phase 2 runs on the server
            .buffer_frames(8192);
        let outcome = Deduplicator::new(config.clone()).run_records(&records).expect("pipeline");
        let p1 = outcome.phase1_duration.as_secs_f64() * 1000.0;
        let p2 = outcome.phase2_duration.as_secs_f64() * 1000.0;
        let base = *baseline_p1.get_or_insert(p1);
        println!("{:>9} {:>12.1} {:>12.1} {:>10.2} {:>10.2}", n, p1, p2, p1 / base, p2 / base);
        rows.push((n, p1, p2));
    }

    println!("\nPer-doubling growth factors (≈2 ⇒ linear, the paper's log-log slope 1):");
    for w in rows.windows(2) {
        let (n0, p1a, p2a) = w[0];
        let (n1, p1b, p2b) = w[1];
        if n1 == 2 * n0 {
            println!(
                "  {:>7} -> {:>7}: phase1 x{:.2}, phase2 x{:.2}",
                n0,
                n1,
                p1b / p1a.max(1e-9),
                p2b / p2a.max(1e-9)
            );
        }
    }
}
