//! Experiment A2 (ours) — ensemble deduplication via the partition lattice.
//!
//! The paper notes its criteria are "orthogonal to the choice of specific
//! distance functions"; nothing prevents running DE under *several*
//! distance functions and combining the partitions. The partition lattice
//! gives the two natural combinators:
//!
//! * **meet** (greatest common refinement) — keep a pair only when every
//!   distance agrees: precision goes up, recall down;
//! * **join** (finest common coarsening) — keep a pair when any distance
//!   found it: recall goes up, precision down.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_ensemble`

use fuzzydedup_core::{evaluate, CutSpec, DedupConfig, Deduplicator, Partition};
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn report(label: &str, p: &Partition, gold: &[usize]) {
    let pr = evaluate(p, gold);
    println!(
        "{label:<18} recall={:.3} precision={:.3} f1={:.3} pairs={}",
        pr.recall,
        pr.precision,
        pr.f1(),
        pr.predicted_pairs
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::small());
    println!("Restaurants: {} records, {} true pairs\n", dataset.len(), dataset.true_pairs());

    let mut partitions = Vec::new();
    for distance in [DistanceKind::FuzzyMatch, DistanceKind::EditDistance, DistanceKind::Cosine] {
        let config = DedupConfig::new(distance).cut(CutSpec::Size(4)).sn_threshold(6.0);
        let outcome =
            Deduplicator::new(config.clone()).run_records(&dataset.records).expect("pipeline");
        report(distance.name(), &outcome.partition, &dataset.gold);
        partitions.push(outcome.partition);
    }

    println!();
    let meet_all = partitions.iter().skip(1).fold(partitions[0].clone(), |acc, p| acc.meet(p));
    report("meet (all agree)", &meet_all, &dataset.gold);
    let join_all = partitions.iter().skip(1).fold(partitions[0].clone(), |acc, p| acc.join(p));
    report("join (any found)", &join_all, &dataset.gold);
    let fms_ed = partitions[0].meet(&partitions[1]);
    report("meet (fms, ed)", &fms_ed, &dataset.gold);

    println!("\nExpected shape: the join raises recall above every single run;");
    println!("the meet of two *strong* distances (fms ∧ ed) trades recall for a");
    println!("precision boost over either component. Meeting with a weak");
    println!("component (cosine) hurts instead — ensembles inherit their");
    println!("members' quality, they don't transcend it.");
}
