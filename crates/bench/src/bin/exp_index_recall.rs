//! Experiment X3 (ours) — validating the paper's "treat probabilistic
//! indexes as exact" assumption.
//!
//! §4 of the paper: "For the purpose of this paper, we treat these
//! probabilistic indexes as exact nearest neighbor indexes. The
//! experimental results ... illustrate that this assumption does not
//! negatively impact the actual results." We quantify that claim for both
//! probabilistic index families against the exact nested-loop reference:
//!
//! * nearest-neighbor recall (does `top_1` agree with the truth?),
//!   conditioned on the truth being close (the only case the partitioning
//!   phase cares about);
//! * end-to-end quality deltas when the whole pipeline runs on each index.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_index_recall`

use std::sync::Arc;

use fuzzydedup_core::{evaluate, CutSpec, DedupConfig, Deduplicator, IndexChoice};
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_nnindex::{
    InvertedIndex, InvertedIndexConfig, MinHashConfig, MinHashIndex, NestedLoopIndex, NnIndex,
};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::{DistanceKind, EditDistance, UnfilteredDistance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nn_recall(approx: &dyn NnIndex, exact: &dyn NnIndex, close: f64) -> (f64, usize) {
    let mut agree = 0usize;
    let mut relevant = 0usize;
    for id in 0..exact.len() as u32 {
        let truth = exact.top_k(id, 1);
        let Some(t) = truth.first() else { continue };
        if t.dist < close {
            relevant += 1;
            if approx.top_k(id, 1).first().map(|x| x.id) == Some(t.id) {
                agree += 1;
            }
        }
    }
    (agree as f64 / relevant.max(1) as f64, relevant)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::small());
    let records = dataset.records.clone();
    println!("corpus: Restaurants, {} records, {} true pairs", records.len(), dataset.true_pairs());

    let exact = NestedLoopIndex::new(records.clone(), EditDistance);
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let inverted = InvertedIndex::build(
        records.clone(),
        DistanceKind::EditDistance.build(&records),
        pool,
        InvertedIndexConfig::default(),
    );
    let minhash = MinHashIndex::build(records.clone(), EditDistance, MinHashConfig::default());
    // The same inverted index with the candidate ladder disarmed
    // (`UnfilteredDistance` reports `admits_qgram_filter() == false`):
    // side-by-side recall shows the length/count/MergeSkip filters are
    // recall-lossless, not just fast.
    let unfiltered_pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4096),
        Arc::new(InMemoryDisk::new()),
    ));
    let inverted_nofilter = InvertedIndex::build(
        records.clone(),
        UnfilteredDistance(EditDistance),
        unfiltered_pool,
        InvertedIndexConfig::default(),
    );

    println!("\n# Nearest-neighbor recall vs exact reference (truth within distance bound):");
    println!("{:<18} {:>12} {:>12} {:>12}", "index", "nn<0.2", "nn<0.3", "nn<0.4");
    for (name, idx) in [
        ("inverted", &inverted as &dyn NnIndex),
        ("inverted-nofilter", &inverted_nofilter as &dyn NnIndex),
        ("minhash", &minhash as &dyn NnIndex),
    ] {
        let mut row = format!("{name:<18}");
        for bound in [0.2, 0.3, 0.4] {
            let (recall, n) = nn_recall(idx, &exact, bound);
            row.push_str(&format!(" {:>7.3}({n:>3})", recall));
        }
        println!("{row}");
    }
    for bound in [0.2, 0.3, 0.4] {
        let (filtered, _) = nn_recall(&inverted, &exact, bound);
        let (unfiltered, _) = nn_recall(&inverted_nofilter, &exact, bound);
        assert_eq!(
            filtered, unfiltered,
            "candidate filters changed nn<{bound} recall — they must be lossless"
        );
    }
    println!("(filters on/off rows are asserted identical: the candidate ladder is lossless)");

    println!("\n# End-to-end quality per index (DE_S(4), c=6, fms):");
    println!("{:<12} {:>8} {:>10} {:>7}", "index", "recall", "precision", "f1");
    for (name, choice) in [
        ("nested", IndexChoice::NestedLoop),
        ("inverted", IndexChoice::Inverted(InvertedIndexConfig::default())),
        ("minhash", IndexChoice::MinHash(MinHashConfig::default())),
    ] {
        let config = DedupConfig::new(DistanceKind::FuzzyMatch)
            .cut(CutSpec::Size(4))
            .sn_threshold(6.0)
            .index_choice(choice);
        let outcome =
            Deduplicator::new(config.clone()).run_records(&dataset.records).expect("pipeline");
        let pr = evaluate(&outcome.partition, &dataset.gold);
        println!("{:<12} {:>8.3} {:>10.3} {:>7.3}", name, pr.recall, pr.precision, pr.f1());
    }
    println!("\n(paper's claim holds when the probabilistic rows track the nested row closely)");
}
