//! Experiment X3 (ours) — validating the paper's "treat probabilistic
//! indexes as exact" assumption, and the `recall-smoke` stage of
//! `scripts/ci.sh`.
//!
//! §4 of the paper: "For the purpose of this paper, we treat these
//! probabilistic indexes as exact nearest neighbor indexes. The
//! experimental results ... illustrate that this assumption does not
//! negatively impact the actual results." We quantify that claim for
//! every index family against the exact nested-loop reference:
//!
//! * nearest-neighbor recall (does `top_1` agree with the truth?),
//!   conditioned on the truth being close (the only case the partitioning
//!   phase cares about);
//! * the same recall with the candidate ladder disarmed
//!   (`UnfilteredDistance`), **asserted identical** — the length, q-gram
//!   count, MergeSkip, and prefix filters must be recall-lossless;
//! * the three inverted postings layouts (packed, CSR, page-backed),
//!   asserted to agree with each other (the packed merge promises
//!   bit-identical candidate sets, not merely close recall);
//! * the prefix filter's radius queries, asserted identical to the plain
//!   MergeSkip path;
//! * end-to-end quality deltas when the whole pipeline runs on each index.
//!
//! Any violated assertion exits non-zero, which is what makes this binary
//! a CI gate and not just a table printer.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_index_recall`

use std::sync::Arc;

use fuzzydedup_core::{evaluate, CollapseKey, CutSpec, DedupConfig, Deduplicator, IndexChoice};
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_nnindex::{
    DynamicIndexConfig, DynamicInvertedIndex, InvertedIndex, InvertedIndexConfig, MinHashConfig,
    MinHashIndex, NestedLoopIndex, NnIndex, PostingsSource,
};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
use fuzzydedup_textdist::{DistanceKind, EditDistance, UnfilteredDistance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nn_recall(approx: &dyn NnIndex, exact: &dyn NnIndex, close: f64) -> (f64, usize) {
    let mut agree = 0usize;
    let mut relevant = 0usize;
    for id in 0..exact.len() as u32 {
        let truth = exact.top_k(id, 1);
        let Some(t) = truth.first() else { continue };
        if t.dist < close {
            relevant += 1;
            if approx.top_k(id, 1).first().map(|x| x.id) == Some(t.id) {
                agree += 1;
            }
        }
    }
    (agree as f64 / relevant.max(1) as f64, relevant)
}

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(4096), Arc::new(InMemoryDisk::new())))
}

fn build_inverted(
    records: &[Vec<String>],
    source: PostingsSource,
    prefix_filter: bool,
) -> InvertedIndex<EditDistance> {
    let config =
        InvertedIndexConfig { postings_source: source, prefix_filter, ..Default::default() };
    InvertedIndex::build(records.to_vec(), EditDistance, pool(), config)
}

fn build_inverted_unfiltered(
    records: &[Vec<String>],
    source: PostingsSource,
) -> InvertedIndex<UnfilteredDistance<EditDistance>> {
    let config = InvertedIndexConfig { postings_source: source, ..Default::default() };
    InvertedIndex::build(records.to_vec(), UnfilteredDistance(EditDistance), pool(), config)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::small());
    let records = dataset.records.clone();
    println!("corpus: Restaurants, {} records, {} true pairs", records.len(), dataset.true_pairs());

    let exact = NestedLoopIndex::new(records.clone(), EditDistance);

    // One inverted index per postings layout, each with an
    // `UnfilteredDistance` control (`admits_qgram_filter() == false`
    // degrades the whole candidate ladder to a no-op).
    let sources = [PostingsSource::Packed, PostingsSource::Csr, PostingsSource::Pages];
    let inverted: Vec<(String, InvertedIndex<EditDistance>)> = sources
        .iter()
        .map(|&s| (format!("inverted/{s:?}").to_lowercase(), build_inverted(&records, s, false)))
        .collect();
    let inverted_nofilter: Vec<InvertedIndex<UnfilteredDistance<EditDistance>>> =
        sources.iter().map(|&s| build_inverted_unfiltered(&records, s)).collect();

    let mut dynamic = DynamicInvertedIndex::new(EditDistance, DynamicIndexConfig::default());
    let mut dynamic_nofilter =
        DynamicInvertedIndex::new(UnfilteredDistance(EditDistance), DynamicIndexConfig::default());
    for rec in &records {
        dynamic.push(rec.clone());
        dynamic_nofilter.push(rec.clone());
    }

    let minhash = MinHashIndex::build(records.clone(), EditDistance, MinHashConfig::default());

    println!("\n# Nearest-neighbor recall vs exact reference (truth within distance bound):");
    println!("{:<18} {:>12} {:>12} {:>12}", "index", "nn<0.2", "nn<0.3", "nn<0.4");
    let mut rows: Vec<(&str, &dyn NnIndex)> = Vec::new();
    for (name, idx) in &inverted {
        rows.push((name.as_str(), idx as &dyn NnIndex));
    }
    rows.push(("dynamic", &dynamic as &dyn NnIndex));
    rows.push(("minhash", &minhash as &dyn NnIndex));
    for (name, idx) in &rows {
        let mut row = format!("{name:<18}");
        for bound in [0.2, 0.3, 0.4] {
            let (recall, n) = nn_recall(*idx, &exact, bound);
            row.push_str(&format!(" {:>7.3}({n:>3})", recall));
        }
        println!("{row}");
    }

    // Gate 1: the candidate ladder is recall-lossless on every index
    // that arms it (inverted × 3 layouts, dynamic).
    for bound in [0.2, 0.3, 0.4] {
        for (i, (name, idx)) in inverted.iter().enumerate() {
            let (filtered, _) = nn_recall(idx, &exact, bound);
            let (unfiltered, _) = nn_recall(&inverted_nofilter[i], &exact, bound);
            assert_eq!(
                filtered, unfiltered,
                "{name}: candidate filters changed nn<{bound} recall — they must be lossless"
            );
        }
        let (filtered, _) = nn_recall(&dynamic, &exact, bound);
        let (unfiltered, _) = nn_recall(&dynamic_nofilter, &exact, bound);
        assert_eq!(
            filtered, unfiltered,
            "dynamic: candidate filters changed nn<{bound} recall — they must be lossless"
        );
    }
    println!("(filters on/off rows are asserted identical: the candidate ladder is lossless)");

    // Gate 2: the three postings layouts answer every query identically —
    // the packed merge claims bit-identical candidate sets, so this is an
    // equality check on full top-1 results, not a recall comparison.
    let (reference_name, reference) = &inverted[0];
    for (name, idx) in &inverted[1..] {
        for id in 0..records.len() as u32 {
            assert_eq!(
                reference.top_k(id, 1),
                idx.top_k(id, 1),
                "{reference_name} vs {name}: top_1({id}) diverged across postings layouts"
            );
        }
    }
    println!("(postings layouts packed/csr/pages are asserted to answer top_1 identically)");

    // Gate 3: the prefix filter only short-circuits radius queries, and
    // losslessly — `within` must match the plain MergeSkip path exactly.
    for source in [PostingsSource::Packed, PostingsSource::Csr] {
        let plain = build_inverted(&records, source, false);
        let prefix = build_inverted(&records, source, true);
        for id in 0..records.len() as u32 {
            for radius in [0.1, 0.25] {
                assert_eq!(
                    prefix.within(id, radius),
                    plain.within(id, radius),
                    "{source:?}: prefix filter changed within({id}, {radius})"
                );
            }
        }
    }
    println!("(prefix filter is asserted lossless for radius queries on packed and csr)");

    // Gate 4: the exact-duplicate collapse pre-pass. In the exact regime
    // (no candidate budget, so the budget can never bisect a duplicate
    // class — DESIGN.md §7.10) the expanded NN relation is asserted
    // bit-identical to the collapse-off run. Under the default budget a
    // cut through a weight tie-block keeps a per-representative
    // *superset* of the full-corpus candidates (NG can only grow), so
    // the assertion there is partition identity — the invariant Phase 2
    // actually consumes.
    let mut rng = StdRng::seed_from_u64(7);
    let dup_heavy = restaurants::generate(&mut rng, DatasetSpec::small().dup_rate(0.4));
    let uncapped = InvertedIndexConfig { candidate_limit: 0, ..Default::default() };
    for (name, choice, exact) in [
        ("nested", IndexChoice::NestedLoop, true),
        ("inverted/uncapped", IndexChoice::Inverted(uncapped), true),
        ("inverted/default", IndexChoice::Inverted(InvertedIndexConfig::default()), false),
        ("minhash", IndexChoice::MinHash(MinHashConfig::default()), true),
    ] {
        let base = DedupConfig::new(DistanceKind::EditDistance)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .index_choice(choice);
        let plain =
            Deduplicator::new(base.clone()).run_records(&dup_heavy.records).expect("pipeline");
        let collapsed = Deduplicator::new(base.collapse(Some(CollapseKey::RecordString)))
            .run_records(&dup_heavy.records)
            .expect("pipeline");
        assert_eq!(plain.partition, collapsed.partition, "{name}: collapse moved the partition");
        if exact {
            assert_eq!(plain.nn_reln, collapsed.nn_reln, "{name}: collapse moved the NN relation");
        }
        assert!(
            collapsed.metrics.collapse.collapsed_records > 0,
            "{name}: a 40% duplicate stream collapsed nothing"
        );
    }
    println!("(exact-duplicate collapse: relation asserted bit-identical in the exact regime,");
    println!(" partition asserted identical under the default candidate budget)");

    println!("\n# End-to-end quality per index (DE_S(4), c=6, fms):");
    println!("{:<12} {:>8} {:>10} {:>7}", "index", "recall", "precision", "f1");
    for (name, choice) in [
        ("nested", IndexChoice::NestedLoop),
        ("inverted", IndexChoice::Inverted(InvertedIndexConfig::default())),
        ("minhash", IndexChoice::MinHash(MinHashConfig::default())),
    ] {
        let config = DedupConfig::new(DistanceKind::FuzzyMatch)
            .cut(CutSpec::Size(4))
            .sn_threshold(6.0)
            .index_choice(choice);
        let outcome =
            Deduplicator::new(config.clone()).run_records(&dataset.records).expect("pipeline");
        let pr = evaluate(&outcome.partition, &dataset.gold);
        println!("{:<12} {:>8.3} {:>10.3} {:>7.3}", name, pr.recall, pr.precision, pr.f1());
    }
    println!("\n(paper's claim holds when the probabilistic rows track the nested row closely)");
    println!("recall-smoke: ok — all losslessness and layout-equivalence assertions held");
}
