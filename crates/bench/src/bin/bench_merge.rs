//! `bench_merge` — worst-window merge of repeated bench passes.
//!
//! `scripts/bench_refresh.sh` runs every gated bench N times into
//! `pass_1/ .. pass_N/` scratch directories and then calls this binary to
//! fold them into one baseline: for each benchmark row, the pass with the
//! **largest** `min_ns` wins (see `gate::merge_worst_window` for why the
//! per-pass minimum is optimistic across passes and the per-row maximum
//! of minima is the level a fresh run can actually reproduce).
//!
//! Usage: `bench_merge --out DIR PASS_DIR [PASS_DIR ...]`
//!
//! Every `BENCH_*.json` in the first pass directory is merged across all
//! pass directories and written — in the criterion shim's exact artifact
//! shape — into `--out`. A pass missing an artifact (or an artifact
//! missing a row) is an error: partial passes would silently bias the
//! baseline toward whichever rows happened to be present.

use std::path::{Path, PathBuf};

use fuzzydedup_bench::gate::{merge_worst_window, parse_bench_doc, render_bench_doc, BenchDoc};

struct Args {
    out_dir: PathBuf,
    pass_dirs: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out_dir = None;
    let mut pass_dirs = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--help" | "-h" => {
                println!(
                    "bench_merge --out DIR PASS_DIR [PASS_DIR ...]\n\
                     Worst-window merge: per benchmark row, keep the pass with the largest min_ns."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown argument {other:?}")),
            dir => pass_dirs.push(PathBuf::from(dir)),
        }
    }
    let out_dir = out_dir.ok_or("missing --out DIR")?;
    if pass_dirs.is_empty() {
        return Err("need at least one PASS_DIR".to_string());
    }
    Ok(Args { out_dir, pass_dirs })
}

/// `BENCH_*.json` file names in `dir`, sorted for deterministic output.
fn bench_artifacts(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

fn load_doc(dir: &Path, artifact: &str) -> Result<BenchDoc, String> {
    let path = dir.join(artifact);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_bench_doc(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run(args: &Args) -> Result<(), String> {
    let artifacts = bench_artifacts(&args.pass_dirs[0])?;
    if artifacts.is_empty() {
        return Err(format!("no BENCH_*.json artifacts in {}", args.pass_dirs[0].display()));
    }
    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", args.out_dir.display()))?;
    for artifact in &artifacts {
        let mut passes = Vec::with_capacity(args.pass_dirs.len());
        for dir in &args.pass_dirs {
            passes.push(load_doc(dir, artifact)?);
        }
        let merged = merge_worst_window(&passes).map_err(|e| format!("{artifact}: {e}"))?;
        let out_path = args.out_dir.join(artifact);
        std::fs::write(&out_path, render_bench_doc(&merged))
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        eprintln!("merge: {artifact} <- {} passes -> {}", passes.len(), out_path.display());
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_merge: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("bench_merge: {e}");
        std::process::exit(1);
    }
}
