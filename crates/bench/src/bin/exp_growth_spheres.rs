//! Experiment F1 — Figure 1 / the §3 integers example.
//!
//! Prints, for the relation `{1, 2, 4, 20, 22, 30, 32}` with
//! `d(a,b) = |a−b|`, each tuple's nearest-neighbor distance `nn(v)`, its
//! growth sphere radius `2·nn(v)`, and its neighborhood growth `ng(v)`;
//! then shows how the *initial* DE formulation (no cut) collapses the
//! relation into a single group while the cut formulations recover the
//! intuitive `{1,2,4}, {20,22}, {30,32}`.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_growth_spheres`

use fuzzydedup_core::axioms::de_on_matrix;
use fuzzydedup_core::{compute_nn_reln, Aggregation, CutSpec, MatrixIndex, NeighborSpec};
use fuzzydedup_datagen::numeric::{paper_integers, paper_integers_gold};
use fuzzydedup_nnindex::LookupOrder;

fn main() {
    let points = paper_integers();
    let idx = MatrixIndex::from_points_1d(&points);
    let (reln, _) =
        compute_nn_reln(&idx, NeighborSpec::TopK(points.len() - 1), LookupOrder::Sequential, 2.0);

    println!("Relation: {points:?}   (d(a,b) = |a-b|, p = 2)");
    println!("{:>5} {:>7} {:>8} {:>10} {:>6}", "id", "value", "nn(v)", "2*nn(v)", "ng(v)");
    for e in reln.entries() {
        let nn = e.nn_dist().unwrap_or(f64::NAN);
        println!(
            "{:>5} {:>7} {:>8.1} {:>10.1} {:>6.0}",
            e.id,
            points[e.id as usize],
            nn,
            2.0 * nn,
            e.ng
        );
    }

    println!("\nInitial formulation (no cut), AGG=max, c=2 ... 8:");
    for c in [2.0, 3.0, 4.0, 8.0] {
        let p = de_on_matrix(&idx, CutSpec::Unbounded, Aggregation::Max, c);
        println!("  c={c:<4} groups={:?}", p.groups());
    }
    println!("\nWith a lenient c the whole relation collapses (the paper's warning):");
    let p = de_on_matrix(&idx, CutSpec::Unbounded, Aggregation::Max, 100.0);
    println!("  c=100  groups={:?}", p.groups());

    println!("\nCut formulations recover the intuitive partition {:?}:", paper_integers_gold());
    let p = de_on_matrix(&idx, CutSpec::Size(3), Aggregation::Max, 4.0);
    println!("  DE_S(3), c=4:   groups={:?}", p.groups());
    let p = de_on_matrix(&idx, CutSpec::Diameter(3.5), Aggregation::Max, 4.0);
    println!("  DE_D(3.5), c=4: groups={:?}", p.groups());
}
