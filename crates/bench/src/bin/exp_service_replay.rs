//! Service replay driver: mixed ingest/query traffic against the
//! long-running dedup service, plus the drain-identity check.
//!
//! The batch pipeline's scale story is `exp_scale_1m`; this is the
//! service-shaped counterpart. It replays an Org corpus through
//! `fuzzydedup_core::DedupService` — records through the bounded ingest
//! queue, point queries against the epoch snapshot while the writer
//! admits batches — then:
//!
//! - **asserts drain-identity**: after the final drain, the service
//!   partition must be *bit-identical* to a from-scratch
//!   `Deduplicator::run_records` over the same corpus with the same knobs
//!   (`EditDistance`, `DE_S(4)`, `Max`, `c = 4`). Exits non-zero on
//!   mismatch — this is the CI `service-smoke` invariant;
//! - reports exact point-query latency quantiles and service throughput;
//! - emits the `RunMetrics` JSON (with the `service` section filled) to
//!   `--out`, or stdout.
//!
//! Run with e.g.:
//!
//! ```text
//! cargo run --release -p fuzzydedup-bench --bin exp_service_replay -- \
//!     --records 10000 --batch-size 64 --query-ratio 0.3 --qps 0
//! ```
//!
//! `--records 5000` is the CI smoke configuration (`scripts/ci.sh`
//! service-smoke tier).

use std::process::ExitCode;
use std::time::Instant;

use fuzzydedup_bench::replay::{replay, ReplayConfig};
use fuzzydedup_core::{Aggregation, CutSpec, DedupConfig, Deduplicator};
use fuzzydedup_textdist::DistanceKind;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ReplayConfig { records: 10_000, ..ReplayConfig::default() };
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                i += 1;
                config.records = args[i].parse().expect("--records <n>");
            }
            "--batch-size" => {
                i += 1;
                config.batch_size = args[i].parse().expect("--batch-size <n>");
            }
            "--queue-capacity" => {
                i += 1;
                config.queue_capacity = args[i].parse().expect("--queue-capacity <n>");
            }
            "--query-ratio" => {
                i += 1;
                config.query_ratio = args[i].parse().expect("--query-ratio <0..1>");
            }
            "--qps" => {
                i += 1;
                config.qps = args[i].parse().expect("--qps <ops/s, 0 = unpaced>");
            }
            "--seed" => {
                i += 1;
                config.seed = args[i].parse().expect("--seed <n>");
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    eprintln!(
        "[exp_service_replay] replaying {} Org records (batch {}, queue {}, \
         query ratio {:.2}, qps {})...",
        config.records, config.batch_size, config.queue_capacity, config.query_ratio, config.qps
    );
    let outcome = replay(config);
    let s = &outcome.stats;
    eprintln!(
        "[exp_service_replay] mixed phase {:.1?}: {} batches / {} records admitted over \
         {} epochs; {} point queries (p50 {} ns, p99 {} ns); queue high-water {}; \
         {} groups, distinct-entity estimate {}{}",
        std::time::Duration::from_nanos(outcome.replay_wall_ns),
        s.batches_admitted,
        s.records_admitted,
        s.epochs_published,
        s.point_queries,
        outcome.metrics.service.query_p50_ns,
        outcome.metrics.service.query_p99_ns,
        s.queue_depth_high_water,
        s.num_groups,
        s.distinct_groups_estimate,
        if s.distinct_is_exact { " (exact)" } else { "" },
    );

    // Drain-identity: the service partition after the final drain must be
    // bit-identical to the from-scratch batch pipeline on the same corpus.
    eprintln!("[exp_service_replay] checking drain-identity against the batch pipeline...");
    let t = Instant::now();
    let batch = Deduplicator::new(
        DedupConfig::new(DistanceKind::EditDistance)
            .cut(CutSpec::Size(4))
            .aggregation(Aggregation::Max)
            .sn_threshold(4.0),
    )
    .run_records(&outcome.records)
    .expect("batch pipeline");
    if outcome.partition != batch.partition {
        eprintln!(
            "[exp_service_replay] DRAIN-IDENTITY VIOLATION: service partition \
             ({} groups) != batch partition ({} groups)",
            outcome.partition.num_groups(),
            batch.partition.num_groups(),
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[exp_service_replay] drain-identity holds: {} groups, batch recompute took {:.1?}",
        batch.partition.num_groups(),
        t.elapsed(),
    );

    let json = outcome.metrics.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write metrics JSON");
            eprintln!("[exp_service_replay] metrics written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
