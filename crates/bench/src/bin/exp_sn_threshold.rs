//! Experiment X1 — §4.4: deriving the SN threshold from a duplicate
//! fraction estimate.
//!
//! For each standard dataset: run Phase 1, show the NG distribution, the
//! true duplicate fraction, the threshold the heuristic returns at that
//! fraction (and under mis-estimation ±50%), and the quality the derived
//! threshold achieves versus the paper's fixed c = 4 and c = 6.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_sn_threshold`

use fuzzydedup_core::{estimate_sn_threshold, evaluate, CutSpec, DedupConfig, Deduplicator};
use fuzzydedup_datagen::standard_quality_datasets;
use fuzzydedup_textdist::DistanceKind;

fn main() {
    let datasets = standard_quality_datasets(42);
    let distance = DistanceKind::FuzzyMatch;
    for dataset in &datasets {
        eprintln!("[exp_sn_threshold] {}...", dataset.name);
        // Phase 1 once; the paper notes the threshold "is not required
        // until the second partitioning phase", so NG values are reusable.
        let probe = DedupConfig::new(distance).cut(CutSpec::Size(5)).sn_threshold(4.0);
        let outcome =
            Deduplicator::new(probe.clone()).run_records(&dataset.records).expect("phase 1");
        let ng = outcome.nn_reln.ng_values();

        // NG histogram (coarse).
        let mut hist = std::collections::BTreeMap::new();
        for &v in &ng {
            *hist.entry(v as i64).or_insert(0usize) += 1;
        }
        let f_true = dataset.duplicate_fraction();
        println!(
            "== {} ({} records, true duplicate fraction {:.3})",
            dataset.name,
            dataset.len(),
            f_true
        );
        print!("   NG histogram:");
        for (v, count) in hist.iter().take(12) {
            print!(" {v}:{count}");
        }
        println!();

        for (label, f) in
            [("f/2", f_true / 2.0), ("true f", f_true), ("1.5f", (1.5 * f_true).min(1.0))]
        {
            let c = estimate_sn_threshold(&ng, f).unwrap_or(4.0);
            let config = DedupConfig::new(distance).cut(CutSpec::Size(5)).sn_threshold(c);
            let pr = evaluate(
                &Deduplicator::new(config.clone())
                    .run_records(&dataset.records)
                    .expect("DE run")
                    .partition,
                &dataset.gold,
            );
            println!(
                "   estimate at {label:<7} -> c = {c:<6.1} recall={:.3} precision={:.3} f1={:.3}",
                pr.recall,
                pr.precision,
                pr.f1()
            );
        }
        for c in [4.0, 6.0] {
            let config = DedupConfig::new(distance).cut(CutSpec::Size(5)).sn_threshold(c);
            let pr = evaluate(
                &Deduplicator::new(config.clone())
                    .run_records(&dataset.records)
                    .expect("DE run")
                    .partition,
                &dataset.gold,
            );
            println!(
                "   fixed c = {c:<13} recall={:.3} precision={:.3} f1={:.3}",
                pr.recall,
                pr.precision,
                pr.f1()
            );
        }
    }
}
