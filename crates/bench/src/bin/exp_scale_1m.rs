//! Scale-out driver: the full two-phase pipeline on a synthetic Org
//! relation up to 1M records, with every memory-hungry intermediate
//! behind bounded storage.
//!
//! The paper runs its scalability experiment (Figure 9) to 3M rows on a
//! database server; this driver is our equivalent at workstation scale:
//!
//! - **work-stealing Phase 1** — `--threads` workers drain the id space
//!   through the shared block dispenser (`fuzzydedup_core::parallel`);
//! - **bounded buffer pool on real disk** — `--frames` 8 KiB frames over
//!   a temporary [`FileDisk`] carry the postings heap file, Phase-2
//!   tables, and the `NN_Reln` spill, so the relation's resident
//!   footprint is capped regardless of corpus size;
//! - **`NN_Reln` spill** — above `--spill-threshold` tuples the Phase-1
//!   result round-trips through heap pages (`fuzzydedup_core::spill`)
//!   before Phase 2 reads it back (bit-exact by construction);
//! - **peak RSS in the metrics** — the emitted `RunMetrics` JSON carries
//!   `spill.peak_rss_bytes` (VmHWM, or sampled VmRSS on kernels that
//!   omit the high-water mark), the bounded-memory evidence.
//!
//! Run with e.g.:
//!
//! ```text
//! cargo run --release -p fuzzydedup-bench --bin exp_scale_1m -- \
//!     --records 1000000 --threads 0 --frames 16384 --spill-threshold 100000
//! ```
//!
//! `--records 50000` is the CI smoke configuration (`scripts/ci.sh`
//! bench-smoke tier). The default cut is `DE_D(0.15)` — radius lookups
//! let the MergeSkip candidate ladder prune postings, which is what keeps
//! candidate generation subquadratic at this scale; `--cut size:5`
//! selects the paper's `DE_S(K)` shape instead.

use std::sync::Arc;
use std::time::Instant;

use fuzzydedup_core::{CutSpec, DedupConfig, Deduplicator, Parallelism};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, FileDisk};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn parse_cut(s: &str) -> CutSpec {
    match s.split_once(':') {
        Some(("size", k)) => CutSpec::Size(k.parse().expect("--cut size:<K>")),
        Some(("diameter", t)) => CutSpec::Diameter(t.parse().expect("--cut diameter:<theta>")),
        _ => panic!("--cut size:<K> | diameter:<theta>, got {s}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut records_n: usize = 1_000_000;
    let mut threads: usize = 0;
    let mut frames: usize = 16_384;
    let mut spill_threshold: usize = 100_000;
    let mut cut = CutSpec::Diameter(0.15);
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                i += 1;
                records_n = args[i].parse().expect("--records <n>");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads <n> (0 = all cores)");
            }
            "--frames" => {
                i += 1;
                frames = args[i].parse().expect("--frames <n>");
            }
            "--spill-threshold" => {
                i += 1;
                spill_threshold = args[i].parse().expect("--spill-threshold <tuples>");
            }
            "--cut" => {
                i += 1;
                cut = parse_cut(&args[i]);
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    // The standard Org shape yields ≈ 1.22 records per entity (20% of
    // entities duplicated, geometric group tail), so inflate and truncate
    // to hit the requested count exactly.
    let entities = records_n * 82 / 100;
    eprintln!("[exp_scale_1m] generating {records_n} Org records ({entities} entities)...");
    let t_gen = Instant::now();
    let mut rng = StdRng::seed_from_u64(42);
    let dataset =
        org::generate(&mut rng, DatasetSpec { n_entities: entities, ..DatasetSpec::medium() });
    let mut records = dataset.records;
    assert!(records.len() >= records_n, "need {records_n} records, got {}", records.len());
    records.truncate(records_n);
    eprintln!("[exp_scale_1m] generated in {:.1?}", t_gen.elapsed());

    // Bounded pool over a real temp file: index pages, Phase-2 tables,
    // and the NN_Reln spill all live behind `frames` frames of memory.
    let db_path = std::env::temp_dir()
        .join(format!("fuzzydedup_scale_{}_{records_n}.db", std::process::id()));
    let disk = FileDisk::create(&db_path).expect("create temp database file");
    let pool =
        Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(frames.max(1)), Arc::new(disk)));

    let config = DedupConfig::new(DistanceKind::EditDistance)
        .cut(cut)
        .sn_threshold(4.0)
        .parallelism(Parallelism::threads(threads))
        .pair_cache_capacity(1 << 22)
        .spill_threshold(spill_threshold);
    eprintln!(
        "[exp_scale_1m] running pipeline: cut={cut:?}, threads={threads} (0 = all cores), \
         frames={frames}, spill_threshold={spill_threshold}"
    );
    let t_run = Instant::now();
    let outcome =
        Deduplicator::new(config).run_records_with_pool(&records, pool).expect("pipeline");
    let wall = t_run.elapsed();

    let m = &outcome.metrics;
    eprintln!(
        "[exp_scale_1m] done in {wall:.1?}: {} records -> {} groups \
         (phase1 {:.1?}, phase2 {:.1?})",
        records_n,
        outcome.partition.num_groups(),
        outcome.phase1_duration,
        outcome.phase2_duration,
    );
    eprintln!(
        "[exp_scale_1m] spill: {} entries / {} bytes; peak RSS {:.2} GiB; \
         steal blocks {}; verify batches {} ({} candidates)",
        m.spill.entries,
        m.spill.bytes,
        m.spill.peak_rss_bytes as f64 / (1u64 << 30) as f64,
        m.phase1.steal_blocks,
        m.verify_batch.batches,
        m.verify_batch.batched_candidates,
    );
    let json = m.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write metrics JSON");
            eprintln!("[exp_scale_1m] metrics written to {path}");
        }
        None => println!("{json}"),
    }
    drop(outcome);
    let _ = std::fs::remove_file(&db_path);
}
