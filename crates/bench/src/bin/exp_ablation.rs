//! Experiment A1/X2 — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **CS-only vs SN-only vs CS+SN** (the paper argues both criteria are
//!    necessary: CS alone admits mutual-NN pairs among uniques, SN alone
//!    has no mutuality requirement at all);
//! 2. **minimality post-pass** on/off (§4.5.2 — mergers of disjoint
//!    compact sets should be rare on realistic data);
//! 3. **axiom battery** (Lemmas 1–4) on randomized numeric relations.
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_ablation`

use fuzzydedup_core::axioms::{
    check_richness, check_scale_invariance, check_split_merge_consistency, check_uniqueness,
};
use fuzzydedup_core::minimality::enforce_minimality;
use fuzzydedup_core::{
    evaluate, partition_entries_ablation, Aggregation, CutSpec, DedupConfig, Deduplicator,
    MatrixIndex,
};
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::small());
    let distance = DistanceKind::FuzzyMatch;
    let cut = CutSpec::Size(5);
    let c = 4.0;

    eprintln!("[exp_ablation] running pipeline once for NN lists...");
    let config = DedupConfig::new(distance).cut(cut).sn_threshold(c);
    let outcome =
        Deduplicator::new(config.clone()).run_records(&dataset.records).expect("pipeline");
    let reln = &outcome.nn_reln;

    println!(
        "# Criterion ablation on Restaurants ({} records, c={c}, {}):",
        dataset.len(),
        cut.label()
    );
    println!(
        "{:<14} {:>8} {:>10} {:>7} {:>12}",
        "variant", "recall", "precision", "f1", "pred pairs"
    );
    for (label, use_cs, use_sn) in [
        ("CS+SN", true, true),
        ("CS only", true, false),
        ("SN only", false, true),
        ("neither", false, false),
    ] {
        let p = partition_entries_ablation(reln, cut, Aggregation::Max, c, use_cs, use_sn);
        let pr = evaluate(&p, &dataset.gold);
        println!(
            "{:<14} {:>8.3} {:>10.3} {:>7.3} {:>12}",
            label,
            pr.recall,
            pr.precision,
            pr.f1(),
            pr.predicted_pairs
        );
    }

    println!("\n# Minimality post-pass (§4.5.2):");
    let base = &outcome.partition;
    let minimal = enforce_minimality(reln, base);
    let pr_base = evaluate(base, &dataset.gold);
    let pr_min = evaluate(&minimal, &dataset.gold);
    println!(
        "  without: f1={:.3} groups>1={}   with: f1={:.3} groups>1={}   groups split: {}",
        pr_base.f1(),
        base.duplicate_groups().count(),
        pr_min.f1(),
        minimal.duplicate_groups().count(),
        minimal.num_groups().saturating_sub(base.num_groups()),
    );
    println!("  (the paper predicts such mergers are 'very rare' — expect ~0 splits)");

    println!("\n# Axiom battery (Lemmas 1-4) on randomized 1-D relations:");
    let mut all_ok = true;
    for trial in 0..20 {
        let n = rng.gen_range(6..24);
        let points: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let m = MatrixIndex::from_points_1d(&points);
        let ok_unique = check_uniqueness(&m, CutSpec::Size(4), Aggregation::Max, 4.0)
            && check_uniqueness(&m, CutSpec::Diameter(5.0), Aggregation::Max, 4.0);
        let ok_scale =
            check_scale_invariance(&m, 4, Aggregation::Max, 4.0, &[0.01, 0.5, 3.0, 250.0]);
        let ok_smc =
            check_split_merge_consistency(&m, CutSpec::Size(4), Aggregation::Max, 4.0, 0.5, 2.0);
        if !(ok_unique && ok_scale && ok_smc) {
            all_ok = false;
            println!(
                "  trial {trial}: uniqueness={ok_unique} scale={ok_scale} split/merge={ok_smc}"
            );
        }
    }
    let rich = check_richness(&[2, 2, 3, 1, 2], 3, Aggregation::Max, 10.0)
        && check_richness(&[2; 12], 4, Aggregation::Max, 10.0);
    println!(
        "  uniqueness/scale/split-merge over 20 random relations: {}",
        if all_ok { "ALL PASS" } else { "FAILURES (above)" }
    );
    println!("  constrained richness realizations: {}", if rich { "PASS" } else { "FAIL" });
}
