//! Experiment F8 — Figure 8: breadth-first vs random lookup ordering.
//!
//! The paper measures, on a 3-million-row organization relation with
//! database buffer sizes of 32/64/128 MB: (i) buffer hit ratio (BHR),
//! (ii) processor usage (PU), and (iii) lookup throughput (pt), for the
//! breadth-first (bf) and random (rnd) lookup orders, and reports that bf
//! wins on all three — "the overall throughput improved by almost 100%
//! due to the BF order".
//!
//! Our substitute (DESIGN.md §4): an Org-like relation of configurable
//! size; buffer budgets *scaled to the index size* the same way the
//! paper's buffers relate to its index (the postings exceed the buffer);
//! BHR measured by the instrumented pool; PU and pt derived from a fixed
//! page-miss stall model (a miss costs `MISS_PENALTY` work units, a hit
//! costs 1): `PU = accesses / (accesses + misses · MISS_PENALTY)` and
//! `pt = lookups / total_work`, reported relative to the random order.
//!
//! Run with:
//! `cargo run --release -p fuzzydedup-bench --bin exp_bf_ordering -- [--records N]`
//!
//! Besides the stdout table, the full grid (buffer budget × lookup order,
//! with the sequential order included as a third point of comparison) is
//! written to `BENCH_bf_ordering.json` under `$BENCH_OUT_DIR` (default
//! `results/`) — the same convention the criterion benches use.

use std::sync::Arc;
use std::time::Instant;

use fuzzydedup_metrics::json::{JsonArray, JsonObject};

/// Index tuning for this experiment: aggressive stop-gram pruning
/// (`df > max(2% · n, 50)` skipped). Without it the synthetic Org
/// vocabulary's mega-frequent terms (street types, corporate suffixes)
/// dominate the postings traffic with a handful of permanently-resident
/// hot pages, and *no* lookup order can influence the hit ratio. The
/// paper's fuzzy-match index \[9\] keeps min-hash signatures rather than
/// full postings of frequent tokens, which has the same effect.
fn index_config() -> InvertedIndexConfig {
    InvertedIndexConfig {
        max_df_fraction: 0.02,
        stop_df_floor: 50,
        // This experiment is *about* postings page traffic: the default
        // CSR mirror never touches the pool after build, which would
        // make every order hit 100% BHR vacuously.
        postings_source: PostingsSource::Pages,
        ..Default::default()
    }
}

use fuzzydedup_core::{phase1::compute_nn_reln_cached, NeighborSpec, PairCache};
use fuzzydedup_datagen::{org, DatasetSpec};
use fuzzydedup_metrics::Counter;
use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig, LookupOrder, PostingsSource};
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk, PAGE_SIZE};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Work units stalled per page miss (disk-vs-CPU cost gap, order of
/// magnitude of a buffer-pool read-through on 2005 hardware).
const MISS_PENALTY: u64 = 9;

/// Pair-cache slots per record: deliberately small relative to the pair
/// traffic so the cache only pays off when pair *reuse clusters in time* —
/// the same temporal-locality property the buffer-hit-ratio columns
/// measure for pages, now measured for verified pairs.
const CACHE_SLOTS_PER_RECORD: usize = 2;

struct RunResult {
    bhr: f64,
    pu: f64,
    pt: f64,
    cache_hits: u64,
    cache_hit_rate: f64,
    wall_ms: u128,
}

fn run(records: &[Vec<String>], frames: usize, order: LookupOrder) -> RunResult {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(frames),
        Arc::new(InMemoryDisk::new()),
    ));
    let distance = DistanceKind::FuzzyMatch.build(records);
    let index = InvertedIndex::build(records.to_vec(), distance, pool.clone(), index_config());
    pool.reset_stats();
    let cache = PairCache::new(records.len() * CACHE_SLOTS_PER_RECORD);
    let before = fuzzydedup_metrics::snapshot();
    let start = Instant::now();
    let (_, _) = compute_nn_reln_cached(&index, NeighborSpec::TopK(5), order, 2.0, Some(&cache));
    let wall_ms = start.elapsed().as_millis();
    let delta = fuzzydedup_metrics::snapshot().delta(&before);
    let (hits, misses) = (delta.get(Counter::PairCacheHits), delta.get(Counter::PairCacheMisses));
    let stats = pool.stats();
    let total_work = stats.accesses() + stats.misses * MISS_PENALTY;
    RunResult {
        bhr: stats.hit_ratio(),
        pu: stats.accesses() as f64 / total_work.max(1) as f64,
        pt: records.len() as f64 / total_work.max(1) as f64 * 1000.0,
        cache_hits: hits,
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        wall_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut n_records = 20_000usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                i += 1;
                n_records = args[i].parse().expect("--records N");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    eprintln!("[exp_bf_ordering] generating {n_records}-record Org relation...");
    let mut rng = StdRng::seed_from_u64(8);
    let dataset = org::generate(
        &mut rng,
        DatasetSpec { n_entities: n_records * 4 / 5, ..DatasetSpec::medium() },
    );
    let records: Vec<Vec<String>> = dataset.records.into_iter().take(n_records).collect();

    // Size the index once to derive scaled buffer budgets.
    let probe_pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(1 << 16),
        Arc::new(InMemoryDisk::new()),
    ));
    let probe = InvertedIndex::build(
        records.clone(),
        DistanceKind::FuzzyMatch.build(&records),
        probe_pool,
        index_config(),
    );
    let index_pages = probe.postings_pages().max(1);
    drop(probe);
    println!(
        "index: {} postings pages (~{:.1} MB); buffers scaled as in the paper's 32/64/128MB-vs-index ratio",
        index_pages,
        (index_pages * PAGE_SIZE) as f64 / (1 << 20) as f64
    );

    // The paper's 32/64/128 MB against a ~600 MB index ≈ 5% / 11% / 21%.
    let budgets = [(0.05, "32MB-eq"), (0.11, "64MB-eq"), (0.21, "128MB-eq")];
    println!(
        "{:<9} {:<5} {:>7} {:>7} {:>9} {:>10} {:>7} {:>9}",
        "buffer", "order", "BHR%", "PU%", "pt", "pair-hits", "PHR%", "wall(ms)"
    );
    let mut json_rows = JsonArray::new();
    let mut bf_cache_hits = 0u64;
    let mut rnd_cache_hits = 0u64;
    for (frac, label) in budgets {
        let frames = ((index_pages as f64 * frac) as usize).max(2);
        let rnd = run(&records, frames, LookupOrder::Random(77));
        let seq = run(&records, frames, LookupOrder::Sequential);
        let bf = run(&records, frames, LookupOrder::breadth_first());
        bf_cache_hits += bf.cache_hits;
        rnd_cache_hits += rnd.cache_hits;
        for (name, r) in [("rnd", &rnd), ("seq", &seq), ("bf", &bf)] {
            println!(
                "{:<9} {:<5} {:>7.1} {:>7.1} {:>9.2} {:>10} {:>7.1} {:>9}",
                label,
                name,
                100.0 * r.bhr,
                100.0 * r.pu,
                r.pt,
                r.cache_hits,
                100.0 * r.cache_hit_rate,
                r.wall_ms
            );
            json_rows.push_object(|o| {
                o.str("buffer", label)
                    .u64("frames", frames as u64)
                    .str("order", name)
                    .f64_fixed("buffer_hit_ratio", r.bhr, 6)
                    .f64_fixed("processor_usage", r.pu, 6)
                    .f64_fixed("throughput", r.pt, 6)
                    .u64("pair_cache_hits", r.cache_hits)
                    .f64_fixed("pair_cache_hit_rate", r.cache_hit_rate, 6)
                    .u64("wall_ms", r.wall_ms as u64);
            });
        }
        println!(
            "{:<9} bf/rnd throughput ratio = {:.2}x (paper: ~2x)",
            label,
            bf.pt / rnd.pt.max(1e-12)
        );
    }
    // The same temporal locality that earns BF its buffer-hit win must
    // also earn it more pair-cache hits than the random order: a pair's
    // second verification comes from a *nearby* record, and BF visits
    // neighbors together while the bounded cache still holds the entry.
    println!(
        "pair-cache hits, all budgets: bf = {bf_cache_hits}, rnd = {rnd_cache_hits} \
         (bf/rnd = {:.2}x)",
        bf_cache_hits as f64 / (rnd_cache_hits as f64).max(1e-12)
    );
    // A statistical locality property of this corpus/parameter choice, not
    // an invariant: report it, still write the measurement, and signal the
    // regression via the exit status instead of aborting the bench run.
    let bf_beats_rnd = bf_cache_hits > rnd_cache_hits;
    if !bf_beats_rnd {
        eprintln!(
            "[exp_bf_ordering] WARNING: BF order did not beat random on pair-cache hits \
             ({bf_cache_hits} vs {rnd_cache_hits}); exiting nonzero"
        );
    }

    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    let mut doc = JsonObject::new();
    doc.str("experiment", "bf_ordering")
        .u64("records", records.len() as u64)
        .u64("index_pages", index_pages as u64)
        .raw("rows", &json_rows.finish());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[exp_bf_ordering] cannot create {out_dir}: {e}");
        return;
    }
    let path = format!("{out_dir}/BENCH_bf_ordering.json");
    match std::fs::write(&path, doc.finish() + "\n") {
        Ok(()) => eprintln!("[exp_bf_ordering] wrote {path}"),
        Err(e) => eprintln!("[exp_bf_ordering] cannot write {path}: {e}"),
    }
    if !bf_beats_rnd {
        std::process::exit(1);
    }
}
