//! Experiment F7 — Figure 7: aggregation functions on Restaurants.
//!
//! Precision vs recall of `DE_S(·)` and `DE_D(·)` under the Max, Avg and
//! Max2 aggregation functions. The paper: "All three aggregation functions
//! yield very similar results because a large percentage of groups are of
//! size 2."
//!
//! Run with: `cargo run --release -p fuzzydedup-bench --bin exp_aggregation`

use fuzzydedup_bench::{
    best_f1, render_quality_table, sweep_de_diameter, sweep_de_size, SweepContext,
};
use fuzzydedup_core::Aggregation;
use fuzzydedup_datagen::{restaurants, DatasetSpec};
use fuzzydedup_textdist::DistanceKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = restaurants::generate(&mut rng, DatasetSpec::small());
    let distance = DistanceKind::FuzzyMatch;
    let c = 4.0;

    let ctx = SweepContext::build(&dataset, distance);
    let mut series = Vec::new();
    for agg in [Aggregation::Max, Aggregation::Avg, Aggregation::Max2] {
        series.push(sweep_de_size(&ctx, &dataset, agg, c));
        series.push(sweep_de_diameter(&ctx, &dataset, agg, c));
    }
    println!(
        "{}",
        render_quality_table(
            &format!(
                "Restaurants — aggregation functions (Figure 7; {} records, c={c})",
                dataset.len()
            ),
            &series
        )
    );

    println!("# Spread of best F1 across aggregation functions (should be small):");
    for points in &series {
        println!(
            "  {:<16} best F1 = {:.3}",
            points.first().map(|p| p.algorithm.as_str()).unwrap_or("?"),
            best_f1(points)
        );
    }
    let f1s: Vec<f64> = series.iter().map(|s| best_f1(s)).collect();
    let spread = f1s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - f1s.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("  max spread = {spread:.3} (paper: 'very similar results')");
}
