//! Experiments F-ED / F-FMS — the §5.1 precision-vs-recall figures.
//!
//! One plot per dataset (Restaurants, BirdScott, Parks, Census, Media,
//! Org) per distance function (edit distance / fuzzy match similarity):
//! the single-linkage threshold baseline `thr` swept over θ, against
//! `DE_S(K)` with c ∈ {4, 6} swept over K and `DE_D(θ)` with c ∈ {4, 6}
//! swept over θ (AGG = max throughout, as in the paper's Figures).
//!
//! Expected shape (the paper's): DE dominates thr on most datasets —
//! "for the same recall, our DE approaches yield higher precision (often
//! 5-10% and sometimes 20% or more), especially for higher recall values.
//! Only for the Parks dataset, there is no improvement."
//!
//! Run with:
//! `cargo run --release -p fuzzydedup-bench --bin exp_quality -- [--distance ed|fms] [--seed N] [--json PATH]`
//!
//! With `--json PATH`, every sweep point is additionally written as a JSON
//! array of `{dataset, distance, algorithm, parameter, recall, precision,
//! f1}` rows — ready for external plotting.

use fuzzydedup_bench::{
    render_quality_table, render_summary, sweep_de_diameter, sweep_de_size,
    sweep_threshold_baseline, SweepContext,
};
use fuzzydedup_core::Aggregation;
use fuzzydedup_datagen::standard_quality_datasets;
use fuzzydedup_textdist::DistanceKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut distances = vec![DistanceKind::EditDistance, DistanceKind::FuzzyMatch];
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--distance" => {
                i += 1;
                let kind = DistanceKind::parse(&args[i]).expect("unknown distance");
                distances = vec![kind];
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("seed must be an integer");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    let mut json_rows: Vec<String> = Vec::new();

    let datasets = standard_quality_datasets(seed);
    for distance in distances {
        for dataset in &datasets {
            eprintln!(
                "[exp_quality] {} / {} ({} records)...",
                dataset.name,
                distance.name(),
                dataset.len()
            );
            let ctx = SweepContext::build(dataset, distance);
            let thr = sweep_threshold_baseline(&ctx, dataset);
            let de_s4 = sweep_de_size(&ctx, dataset, Aggregation::Max, 4.0);
            let de_s6 = sweep_de_size(&ctx, dataset, Aggregation::Max, 6.0);
            let de_d4 = sweep_de_diameter(&ctx, dataset, Aggregation::Max, 4.0);
            let de_d6 = sweep_de_diameter(&ctx, dataset, Aggregation::Max, 6.0);

            let title = format!(
                "{} — precision vs recall ({} records, {} true pairs, distance={})",
                dataset.name,
                dataset.len(),
                dataset.true_pairs(),
                distance.name()
            );
            println!(
                "{}",
                render_quality_table(
                    &title,
                    &[thr.clone(), de_s4.clone(), de_s6.clone(), de_d4.clone(), de_d6.clone()]
                )
            );
            if json_path.is_some() {
                for points in [&thr, &de_s4, &de_s6, &de_d4, &de_d6] {
                    for point in points.iter() {
                        json_rows.push(point.to_json_row(&dataset.name, distance.name()));
                    }
                }
            }
            println!(
                "{}",
                render_summary(
                    &format!("{} ({})", dataset.name, distance.name()),
                    &[
                        ("thr", thr.as_slice()),
                        ("DE_S c=4", de_s4.as_slice()),
                        ("DE_S c=6", de_s6.as_slice()),
                        ("DE_D c=4", de_d4.as_slice()),
                        ("DE_D c=6", de_d6.as_slice()),
                    ]
                )
            );
        }
    }
    if let Some(path) = json_path {
        let body = format!("[\n{}\n]\n", json_rows.join(",\n"));
        std::fs::write(&path, body).expect("write json output");
        eprintln!("[exp_quality] wrote {} rows to {path}", json_rows.len());
    }
}
