//! `Census[LastName, FirstName, MiddleInitial, Number, Street]` —
//! Riddle-style census records (the repository's synthetic census files
//! have this shape). Duplicates mix name typos, dropped middle initials,
//! and street abbreviations.

use std::collections::HashSet;

use rand::Rng;

use crate::dataset::{assemble_dataset, Dataset, DatasetSpec};
use crate::errors::{typo, ErrorModel};
use crate::seeds::{FIRST_NAMES, LAST_NAMES, STREETS, STREET_TYPES};

fn middle_initial(rng: &mut impl Rng) -> String {
    let letters = "abcdefghijklmnopqrstuvwxyz";
    letters.chars().nth(rng.gen_range(0..letters.len())).unwrap().to_string()
}

/// Generate a Census dataset of the given spec.
pub fn generate(rng: &mut impl Rng, spec: DatasetSpec) -> Dataset {
    let mut base: Vec<Vec<String>> = Vec::with_capacity(spec.n_entities);
    let mut seen: HashSet<String> = HashSet::new();
    let mut attempts = 0usize;
    while base.len() < spec.n_entities {
        attempts += 1;
        assert!(
            attempts < 200 * spec.n_entities + 10_000,
            "vocabulary too small for {} distinct entities",
            spec.n_entities
        );
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string();
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string();
        let mi = middle_initial(rng);
        let number = rng.gen_range(1..9999).to_string();
        let street = format!(
            "{} {}",
            STREETS[rng.gen_range(0..STREETS.len())],
            STREET_TYPES[rng.gen_range(0..STREET_TYPES.len())]
        );
        let key = format!("{last}|{first}|{mi}|{number}|{street}");
        if seen.insert(key) {
            base.push(vec![last, first, mi, number, street]);
        }
    }
    let name_model = ErrorModel { typo: 6, token_swap: 0, token_drop: 0, abbreviate: 0, squash: 1 };
    let street_model =
        ErrorModel { typo: 2, token_swap: 0, token_drop: 1, abbreviate: 5, squash: 0 };
    let intensity = spec.intensity;
    assemble_dataset(
        "Census",
        &["last_name", "first_name", "middle_initial", "number", "street"],
        base,
        spec,
        rng,
        move |rng, b| {
            let mut out = b.to_vec();
            for _ in 0..intensity.num_edits(&mut *rng) {
                match rng.gen_range(0..6u8) {
                    0 => out[0] = name_model.perturb_string(&mut *rng, &out[0]),
                    1 => out[1] = name_model.perturb_string(&mut *rng, &out[1]),
                    // Drop or change the middle initial.
                    2 => out[2] = String::new(),
                    // Digit noise in the house number.
                    3 => out[3] = typo(&mut *rng, &out[3]),
                    _ => out[4] = street_model.perturb_string(&mut *rng, &out[4]),
                }
            }
            if out == b {
                out[0] = typo(&mut *rng, &out[0]);
            }
            out
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(79);
        let d = generate(&mut rng, DatasetSpec::small());
        assert_eq!(d.name, "Census");
        assert_eq!(d.attributes.len(), 5);
        assert!(d.len() >= 400);
    }

    #[test]
    fn some_duplicates_drop_middle_initial() {
        let mut rng = StdRng::seed_from_u64(83);
        let d = generate(&mut rng, DatasetSpec::with_entities(400));
        let dropped = d.records.iter().filter(|r| r[2].is_empty()).count();
        assert!(dropped > 0, "expected dropped middle initials");
    }

    #[test]
    fn base_records_keep_initials() {
        let mut rng = StdRng::seed_from_u64(89);
        let d = generate(&mut rng, DatasetSpec::with_entities(200).dup_fraction(0.0));
        assert!(d.records.iter().all(|r| r[2].len() == 1));
    }

    #[test]
    fn name_collisions_exist_among_uniques() {
        // 50 first × 50 last names over ≥ 1000 entities guarantee distinct
        // people sharing full names — the hard case for census matching.
        let mut rng = StdRng::seed_from_u64(97);
        let d = generate(&mut rng, DatasetSpec::with_entities(1500).dup_fraction(0.0));
        use std::collections::HashMap;
        let mut by_name: HashMap<(String, String), usize> = HashMap::new();
        for r in &d.records {
            *by_name.entry((r[0].clone(), r[1].clone())).or_insert(0) += 1;
        }
        assert!(by_name.values().any(|&c| c >= 2));
    }
}
