//! Numeric demonstration relations (§3's integer example and synthetic
//! 1-D cluster mixtures for the axiom experiments).

use rand::Rng;

/// The §3 example instance: `{1, 2, 4, 20, 22, 30, 32}` with
/// `d(a, b) = |a − b|`. The intuitive partition (which DE with a cut
/// recovers) is `{1, 2, 4}, {20, 22}, {30, 32}`.
pub fn paper_integers() -> Vec<f64> {
    vec![1.0, 2.0, 4.0, 20.0, 22.0, 30.0, 32.0]
}

/// The gold grouping of [`paper_integers`] as index groups.
pub fn paper_integers_gold() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 2], vec![3, 4], vec![5, 6]]
}

/// A 1-D mixture: `n_clusters` tight clusters of `cluster_size` points
/// (spread `jitter`) centered `separation` apart, plus `n_noise` uniform
/// background points. Returns `(points, gold)` where gold labels cluster
/// members by cluster id and each noise point uniquely.
pub fn cluster_mixture(
    rng: &mut impl Rng,
    n_clusters: usize,
    cluster_size: usize,
    jitter: f64,
    separation: f64,
    n_noise: usize,
) -> (Vec<f64>, Vec<usize>) {
    let mut points = Vec::new();
    let mut gold = Vec::new();
    for c in 0..n_clusters {
        let center = c as f64 * separation;
        for _ in 0..cluster_size {
            points.push(center + rng.gen_range(-jitter..=jitter));
            gold.push(c);
        }
    }
    let span = n_clusters as f64 * separation;
    for i in 0..n_noise {
        points.push(rng.gen_range(0.0..span.max(1.0)));
        gold.push(n_clusters + i);
    }
    (points, gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_is_the_papers() {
        let p = paper_integers();
        assert_eq!(p.len(), 7);
        assert_eq!(p[3], 20.0);
        let gold = paper_integers_gold();
        assert_eq!(gold.iter().map(Vec::len).sum::<usize>(), 7);
    }

    #[test]
    fn mixture_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (points, gold) = cluster_mixture(&mut rng, 5, 3, 0.1, 100.0, 7);
        assert_eq!(points.len(), 22);
        assert_eq!(gold.len(), 22);
        // Noise labels are unique.
        let noise: Vec<usize> = gold[15..].to_vec();
        let set: std::collections::HashSet<usize> = noise.iter().copied().collect();
        assert_eq!(set.len(), 7);
        // Cluster members are near their center.
        for (i, &p) in points[..15].iter().enumerate() {
            let center = (gold[i] as f64) * 100.0;
            assert!((p - center).abs() <= 0.1);
        }
    }

    #[test]
    fn zero_noise_and_zero_clusters() {
        let mut rng = StdRng::seed_from_u64(2);
        let (points, gold) = cluster_mixture(&mut rng, 0, 3, 0.1, 100.0, 4);
        assert_eq!(points.len(), 4);
        assert_eq!(gold, vec![0, 1, 2, 3]);
    }
}
