#![warn(missing_docs)]

//! Gold-labelled synthetic datasets for fuzzy duplicate elimination.
//!
//! The paper evaluates on two internal warehouses (`Media[artistName,
//! trackName]`, `Org[name, address, city, state, zipcode]`) and four
//! datasets from the Riddle repository (`Restaurants`, `BirdScott`,
//! `Parks`, `Census`). None of those is redistributable, so this crate
//! generates synthetic stand-ins with the same *error structure* (see
//! `DESIGN.md` §4): base entities drawn from per-domain vocabularies, and
//! fuzzy duplicates produced by a configurable [`errors::ErrorModel`]
//! covering the phenomena in the paper's Table 1 —
//!
//! * typos: `"Shania Twain"` → `"Twian, Shania"` (transposition),
//!   `"Im Holdin"` (dropped characters/apostrophes);
//! * token transposition: `"Beatles, The"`;
//! * dropped tokens: `"Doors"` for `"The Doors"`;
//! * abbreviations: `"corp"` / `"corporation"`, `"St"` / `"Street"`;
//! * confusable series: `"Ears/Eyes - Part II/III/IV"` — distinct entities
//!   at small edit distance, generated as *unique* records so that global
//!   thresholds are punished exactly as in the paper.
//!
//! Every generated [`dataset::Dataset`] carries gold entity labels, so
//! precision/recall are computable. Generation is fully deterministic for
//! a seed.

pub mod csvio;
pub mod dataset;
pub mod errors;
pub mod numeric;
pub mod riddle;
pub mod seeds;

pub mod birds;
pub mod census;
pub mod media;
pub mod org;
pub mod parks;
pub mod restaurants;

pub use dataset::{Dataset, DatasetSpec, ErrorIntensity};
pub use errors::ErrorModel;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The standard battery of quality-experiment datasets (one per §5.1
/// figure), each at roughly the published scale.
pub fn standard_quality_datasets(seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        restaurants::generate(&mut rng, DatasetSpec::small()),
        birds::generate(&mut rng, DatasetSpec::small()),
        parks::generate(&mut rng, DatasetSpec::small()),
        census::generate(&mut rng, DatasetSpec::medium()),
        media::generate(&mut rng, DatasetSpec::medium()),
        org::generate(&mut rng, DatasetSpec::medium()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_battery_is_deterministic() {
        let a = standard_quality_datasets(7);
        let b = standard_quality_datasets(7);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.records, y.records);
            assert_eq!(x.gold, y.gold);
        }
        let c = standard_quality_datasets(8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.records != y.records));
    }

    #[test]
    fn battery_names_are_the_papers() {
        let battery = standard_quality_datasets(1);
        let names: Vec<&str> = battery.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["Restaurants", "BirdScott", "Parks", "Census", "Media", "Org"]);
    }
}
