//! `Restaurants[Name]` — Riddle-style single-attribute restaurant names.

use std::collections::HashSet;

use rand::Rng;

use crate::dataset::{assemble_dataset, Dataset, DatasetSpec};
use crate::errors::ErrorModel;
use crate::seeds::{CITIES, CUISINES, LAST_NAMES, RESTAURANT_CORES, RESTAURANT_HEADS};

fn restaurant(rng: &mut impl Rng) -> String {
    let head = RESTAURANT_HEADS[rng.gen_range(0..RESTAURANT_HEADS.len())];
    let core = RESTAURANT_CORES[rng.gen_range(0..RESTAURANT_CORES.len())];
    match rng.gen_range(0..6u8) {
        0 => format!("the {head} {core}"),
        1 => {
            let cuisine = CUISINES[rng.gen_range(0..CUISINES.len())];
            format!("{head} {core} {cuisine} restaurant")
        }
        2 => {
            let cuisine = CUISINES[rng.gen_range(0..CUISINES.len())];
            format!("{cuisine} {core} {head}")
        }
        3 => {
            // Owner-named places: "smith's diner".
            let owner = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            format!("{owner}'s {core}")
        }
        4 => {
            let (city, _, _) = CITIES[rng.gen_range(0..CITIES.len())];
            format!("{head} {core} of {city}")
        }
        _ => format!("{head} {core}"),
    }
}

/// Generate a Restaurants dataset of the given spec.
pub fn generate(rng: &mut impl Rng, spec: DatasetSpec) -> Dataset {
    let mut base: Vec<Vec<String>> = Vec::with_capacity(spec.n_entities);
    let mut seen: HashSet<String> = HashSet::new();
    let mut attempts = 0usize;
    while base.len() < spec.n_entities {
        attempts += 1;
        assert!(
            attempts < 200 * spec.n_entities + 10_000,
            "vocabulary too small for {} distinct entities",
            spec.n_entities
        );
        let name = restaurant(rng);
        if seen.insert(name.clone()) {
            base.push(vec![name]);
        }
    }
    let model = ErrorModel::default();
    let intensity = spec.intensity;
    assemble_dataset("Restaurants", &["name"], base, spec, rng, |rng, b| {
        let edits = intensity.num_edits(&mut *rng);
        model.perturb_record(&mut *rng, b, edits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(41);
        let d = generate(&mut rng, DatasetSpec::small());
        assert_eq!(d.name, "Restaurants");
        assert_eq!(d.attributes, vec!["name"]);
        assert!(d.len() >= 400);
        assert!(d.true_pairs() > 20);
    }

    #[test]
    fn names_are_multi_token() {
        let mut rng = StdRng::seed_from_u64(43);
        let d = generate(&mut rng, DatasetSpec::with_entities(100).dup_fraction(0.0));
        for r in &d.records {
            assert!(r[0].split_whitespace().count() >= 2, "{:?}", r[0]);
        }
    }

    #[test]
    fn dup_fraction_zero_means_no_pairs() {
        let mut rng = StdRng::seed_from_u64(47);
        let d = generate(&mut rng, DatasetSpec::with_entities(150).dup_fraction(0.0));
        assert_eq!(d.true_pairs(), 0);
        assert_eq!(d.len(), 150);
    }
}
