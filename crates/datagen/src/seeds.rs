//! Seed vocabularies for the domain generators.
//!
//! Small curated word lists; the generators combine them combinatorially,
//! so a few dozen seeds per list yield tens of thousands of distinct base
//! entities.

/// (long form, short form) pairs for the abbreviation operator and the
/// organization/address generators.
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("corporation", "corp"),
    ("incorporated", "inc"),
    ("company", "co"),
    ("limited", "ltd"),
    ("street", "st"),
    ("avenue", "ave"),
    ("boulevard", "blvd"),
    ("road", "rd"),
    ("drive", "dr"),
    ("saint", "st"),
    ("mount", "mt"),
    ("fort", "ft"),
    ("north", "n"),
    ("south", "s"),
    ("east", "e"),
    ("west", "w"),
    ("apartment", "apt"),
    ("suite", "ste"),
    ("and", "&"),
    ("national", "natl"),
    ("international", "intl"),
    ("university", "univ"),
    ("department", "dept"),
];

/// Common American first names (census-style).
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "nancy",
    "daniel",
    "lisa",
    "matthew",
    "margaret",
    "anthony",
    "betty",
    "donald",
    "sandra",
    "mark",
    "ashley",
    "paul",
    "dorothy",
    "steven",
    "kimberly",
    "andrew",
    "emily",
    "kenneth",
    "donna",
    "george",
    "michelle",
    "joshua",
    "carol",
    "kevin",
    "amanda",
    "brian",
    "melissa",
    "edward",
    "deborah",
];

/// Common American surnames.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
];

/// Street base names.
pub const STREETS: &[&str] = &[
    "main",
    "oak",
    "pine",
    "maple",
    "cedar",
    "elm",
    "washington",
    "lake",
    "hill",
    "park",
    "walnut",
    "spring",
    "north",
    "ridge",
    "church",
    "willow",
    "mill",
    "sunset",
    "railroad",
    "jackson",
    "franklin",
    "river",
    "meadow",
    "forest",
    "highland",
    "dogwood",
    "hickory",
    "laurel",
    "poplar",
    "chestnut",
    "spruce",
    "birch",
    "magnolia",
    "sycamore",
    "juniper",
];

/// Street type suffixes (long forms; abbreviation pairs above shorten
/// them).
pub const STREET_TYPES: &[&str] =
    &["street", "avenue", "road", "drive", "boulevard", "lane", "court", "place"];

/// US cities with state and zip prefix.
pub const CITIES: &[(&str, &str, &str)] = &[
    ("seattle", "wa", "981"),
    ("portland", "or", "972"),
    ("san francisco", "ca", "941"),
    ("los angeles", "ca", "900"),
    ("san diego", "ca", "921"),
    ("phoenix", "az", "850"),
    ("denver", "co", "802"),
    ("dallas", "tx", "752"),
    ("houston", "tx", "770"),
    ("austin", "tx", "787"),
    ("chicago", "il", "606"),
    ("minneapolis", "mn", "554"),
    ("st louis", "mo", "631"),
    ("atlanta", "ga", "303"),
    ("miami", "fl", "331"),
    ("charlotte", "nc", "282"),
    ("washington", "dc", "200"),
    ("philadelphia", "pa", "191"),
    ("new york", "ny", "100"),
    ("boston", "ma", "021"),
    ("detroit", "mi", "482"),
    ("cleveland", "oh", "441"),
    ("nashville", "tn", "372"),
    ("kansas city", "mo", "641"),
    ("salt lake city", "ut", "841"),
];

/// Organization name heads.
pub const ORG_HEADS: &[&str] = &[
    "acme",
    "global",
    "pioneer",
    "summit",
    "cascade",
    "evergreen",
    "liberty",
    "union",
    "pacific",
    "atlantic",
    "midwest",
    "northern",
    "southern",
    "golden",
    "silver",
    "granite",
    "keystone",
    "beacon",
    "harbor",
    "frontier",
    "vanguard",
    "heritage",
    "premier",
    "allied",
    "integrated",
    "consolidated",
    "advanced",
    "dynamic",
    "superior",
    "reliable",
];

/// Organization name cores.
pub const ORG_CORES: &[&str] = &[
    "software",
    "systems",
    "technologies",
    "industries",
    "manufacturing",
    "logistics",
    "foods",
    "beverages",
    "textiles",
    "plastics",
    "electronics",
    "instruments",
    "materials",
    "pharmaceuticals",
    "biosciences",
    "energy",
    "utilities",
    "communications",
    "media",
    "publishing",
    "financial",
    "insurance",
    "holdings",
    "partners",
    "consulting",
    "services",
    "solutions",
    "networks",
    "laboratories",
    "aerospace",
];

/// Organization suffixes (long forms).
pub const ORG_SUFFIXES: &[&str] = &["corporation", "incorporated", "company", "limited", "group"];

/// Restaurant name heads.
pub const RESTAURANT_HEADS: &[&str] = &[
    "golden", "jade", "blue", "red", "silver", "royal", "grand", "little", "old", "new", "happy",
    "lucky", "sunny", "corner", "village", "garden", "ocean", "mountain", "river", "star", "moon",
    "crystal", "ivory", "copper", "rustic", "urban", "cozy", "hidden", "twin", "wild",
];

/// Restaurant name cores.
pub const RESTAURANT_CORES: &[&str] = &[
    "dragon",
    "palace",
    "bistro",
    "kitchen",
    "grill",
    "diner",
    "tavern",
    "cafe",
    "trattoria",
    "cantina",
    "brasserie",
    "chophouse",
    "smokehouse",
    "noodle house",
    "curry house",
    "pizzeria",
    "steakhouse",
    "oyster bar",
    "taqueria",
    "bakery",
    "creperie",
    "gastropub",
    "tea room",
    "sushi bar",
    "ramen shop",
    "deli",
    "barbecue",
    "rotisserie",
    "wok",
    "osteria",
];

/// Cuisine qualifiers for restaurants.
pub const CUISINES: &[&str] = &[
    "italian",
    "french",
    "thai",
    "mexican",
    "chinese",
    "japanese",
    "indian",
    "greek",
    "vietnamese",
    "korean",
    "spanish",
    "lebanese",
    "ethiopian",
    "moroccan",
    "peruvian",
    "cajun",
    "southern",
    "tuscan",
    "sichuan",
    "cantonese",
];

/// Bird species adjectives (BirdScott-style common names).
pub const BIRD_ADJECTIVES: &[&str] = &[
    "american",
    "northern",
    "southern",
    "eastern",
    "western",
    "common",
    "great",
    "lesser",
    "little",
    "greater",
    "red-tailed",
    "red-winged",
    "white-crowned",
    "black-capped",
    "yellow-bellied",
    "blue-winged",
    "golden-crowned",
    "ruby-throated",
    "rose-breasted",
    "dark-eyed",
    "sharp-shinned",
    "broad-winged",
    "long-billed",
    "short-eared",
    "tufted",
    "crested",
    "spotted",
    "streaked",
    "painted",
    "marbled",
];

/// Bird species nouns.
pub const BIRD_SPECIES: &[&str] = &[
    "warbler",
    "sparrow",
    "hawk",
    "owl",
    "woodpecker",
    "flycatcher",
    "thrush",
    "vireo",
    "grosbeak",
    "bunting",
    "finch",
    "tanager",
    "oriole",
    "blackbird",
    "swallow",
    "swift",
    "hummingbird",
    "kingfisher",
    "sandpiper",
    "plover",
    "tern",
    "gull",
    "heron",
    "egret",
    "ibis",
    "grebe",
    "loon",
    "merganser",
    "teal",
    "wigeon",
];

/// Park name heads.
pub const PARK_HEADS: &[&str] = &[
    "yellowstone",
    "yosemite",
    "glacier",
    "sequoia",
    "redwood",
    "badlands",
    "arches",
    "canyonlands",
    "shenandoah",
    "olympic",
    "cascade",
    "sierra",
    "granite",
    "eagle",
    "bear",
    "deer",
    "elk",
    "bison",
    "falcon",
    "heron",
    "maple",
    "willow",
    "cypress",
    "juniper",
    "lakeside",
    "riverside",
    "hillcrest",
    "meadowbrook",
    "stonewall",
    "fox hollow",
];

/// Park landscape features (optional middle word).
pub const PARK_FEATURES: &[&str] = &[
    "creek", "lake", "valley", "ridge", "canyon", "meadow", "grove", "springs", "hollow", "point",
    "bluff", "bend",
];

/// Park type suffixes.
pub const PARK_TYPES: &[&str] = &[
    "national park",
    "state park",
    "county park",
    "memorial park",
    "regional park",
    "nature preserve",
    "wildlife refuge",
    "recreation area",
    "botanical garden",
    "city park",
];

/// Artist name heads for the media generator.
pub const ARTIST_HEADS: &[&str] = &[
    "the", "", "", // weight toward bare names
];

/// Artist name words.
pub const ARTIST_WORDS: &[&str] = &[
    "doors",
    "beatles",
    "stones",
    "eagles",
    "byrds",
    "kinks",
    "who",
    "animals",
    "zombies",
    "turtles",
    "ramblers",
    "drifters",
    "wanderers",
    "travelers",
    "strangers",
    "outlaws",
    "rebels",
    "pilots",
    "spiders",
    "scorpions",
    "falcons",
    "ravens",
    "coyotes",
    "wolves",
    "panthers",
    "tigers",
    "vipers",
    "cobras",
    "phantoms",
    "shadows",
];

/// Solo artist first/last names reuse [`FIRST_NAMES`]/[`LAST_NAMES`].
/// Track title openers.
pub const TRACK_OPENERS: &[&str] = &[
    "are you ready",
    "hold on",
    "let it go",
    "come with me",
    "take me home",
    "dancing in",
    "walking on",
    "running from",
    "waiting for",
    "dreaming of",
    "falling into",
    "singing to",
    "crying over",
    "living without",
    "breaking through",
    "burning down",
    "drifting past",
    "shining like",
    "fading into",
    "rising above",
];

/// Track title closers.
pub const TRACK_CLOSERS: &[&str] = &[
    "the night",
    "the rain",
    "the fire",
    "the storm",
    "the river",
    "the city",
    "the road",
    "my heart",
    "your love",
    "the moon",
    "the sun",
    "the dark",
    "the light",
    "the wind",
    "the ocean",
    "the mountain",
    "tomorrow",
    "yesterday",
    "forever",
    "goodbye",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_nonempty_and_lowercase() {
        for list in [
            FIRST_NAMES,
            LAST_NAMES,
            STREETS,
            STREET_TYPES,
            ORG_HEADS,
            ORG_CORES,
            ORG_SUFFIXES,
            RESTAURANT_HEADS,
            RESTAURANT_CORES,
            CUISINES,
            BIRD_ADJECTIVES,
            BIRD_SPECIES,
            PARK_HEADS,
            PARK_FEATURES,
            PARK_TYPES,
            ARTIST_WORDS,
            TRACK_OPENERS,
            TRACK_CLOSERS,
        ] {
            assert!(!list.is_empty());
            for w in list {
                assert_eq!(&w.to_lowercase(), w, "seed {w:?} must be lowercase");
            }
        }
        assert!(!CITIES.is_empty());
        assert!(!ABBREVIATIONS.is_empty());
    }

    #[test]
    fn abbreviations_are_distinct_pairs() {
        for &(long, short) in ABBREVIATIONS {
            assert_ne!(long, short);
            assert!(!long.is_empty() && !short.is_empty());
        }
    }

    #[test]
    fn no_duplicate_seeds_within_lists() {
        for list in [FIRST_NAMES, LAST_NAMES, ORG_HEADS, ORG_CORES, BIRD_SPECIES] {
            let set: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }
}
