//! Error injection: the perturbations that create fuzzy duplicates.
//!
//! Models the error classes the paper's Table 1 exhibits (typos, token
//! transposition, dropped tokens/characters, abbreviations) plus the
//! data-entry noise its introduction describes (`"Simson Lisa"` for
//! `"Lisa Simpson"`, `"United States"` for `"USA"`).

use rand::Rng;

/// Relative weights of the perturbation operators.
#[derive(Debug, Clone)]
pub struct ErrorModel {
    /// Weight of single-character typos (insert/delete/substitute/
    /// transpose).
    pub typo: u32,
    /// Weight of swapping two adjacent tokens (or rotating "First Last" to
    /// "Last, First").
    pub token_swap: u32,
    /// Weight of dropping one token (articles preferred).
    pub token_drop: u32,
    /// Weight of applying an abbreviation/expansion from
    /// [`crate::seeds::ABBREVIATIONS`].
    pub abbreviate: u32,
    /// Weight of dropping an apostrophe-like character or duplicating a
    /// letter.
    pub squash: u32,
}

impl Default for ErrorModel {
    fn default() -> Self {
        Self { typo: 4, token_swap: 2, token_drop: 2, abbreviate: 2, squash: 1 }
    }
}

impl ErrorModel {
    /// Apply `n_edits` random perturbations to a record, never producing an
    /// output identical to the input (a final forced typo breaks ties).
    pub fn perturb_record<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        record: &[String],
        n_edits: usize,
    ) -> Vec<String> {
        let mut out: Vec<String> = record.to_vec();
        for _ in 0..n_edits {
            // Pick a non-empty field to damage.
            let candidates: Vec<usize> =
                (0..out.len()).filter(|&i| !out[i].trim().is_empty()).collect();
            if candidates.is_empty() {
                break;
            }
            let field = candidates[rng.gen_range(0..candidates.len())];
            out[field] = self.perturb_string(rng, &out[field]);
        }
        if out == record && !record.is_empty() {
            // Ensure the duplicate is not an exact copy.
            let field = (0..out.len()).find(|&i| !out[i].is_empty()).unwrap_or(0);
            out[field] = typo(rng, &out[field]);
        }
        out
    }

    /// Apply one weighted perturbation to a string.
    pub fn perturb_string<R: Rng + ?Sized>(&self, rng: &mut R, s: &str) -> String {
        let total = self.typo + self.token_swap + self.token_drop + self.abbreviate + self.squash;
        if total == 0 || s.is_empty() {
            return s.to_string();
        }
        let mut pick = rng.gen_range(0..total);
        if pick < self.typo {
            return typo(rng, s);
        }
        pick -= self.typo;
        if pick < self.token_swap {
            return token_swap(rng, s);
        }
        pick -= self.token_swap;
        if pick < self.token_drop {
            return token_drop(rng, s);
        }
        pick -= self.token_drop;
        if pick < self.abbreviate {
            return abbreviate(rng, s);
        }
        squash(rng, s)
    }
}

/// One character-level edit: insert, delete, substitute, or transpose.
pub fn typo<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    fn random_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
        (b'a' + rng.gen_range(0..26u8)) as char
    }
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // insert
            let at = rng.gen_range(0..=out.len());
            let ch = random_letter(rng);
            out.insert(at, ch);
        }
        1 => {
            // delete
            let at = rng.gen_range(0..out.len());
            out.remove(at);
        }
        2 => {
            // substitute
            let at = rng.gen_range(0..out.len());
            let ch = random_letter(rng);
            out[at] = ch;
        }
        _ => {
            // transpose adjacent
            if out.len() >= 2 {
                let at = rng.gen_range(0..out.len() - 1);
                out.swap(at, at + 1);
            } else {
                let ch = random_letter(rng);
                out.push(ch);
            }
        }
    }
    out.into_iter().collect()
}

/// Swap two adjacent tokens, or produce the "Last, First" rotation for
/// two-token strings (the `"Twian, Shania"` pattern).
pub fn token_swap<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return typo(rng, s);
    }
    if tokens.len() == 2 && rng.gen_bool(0.5) {
        return format!("{}, {}", tokens[1], tokens[0]);
    }
    let mut toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
    let at = rng.gen_range(0..toks.len() - 1);
    toks.swap(at, at + 1);
    toks.join(" ")
}

/// Drop one token, preferring articles/stopwords (`"The Doors"` →
/// `"Doors"`).
pub fn token_drop<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return typo(rng, s);
    }
    let article = tokens.iter().position(|t| {
        matches!(t.to_ascii_lowercase().trim_matches(','), "the" | "a" | "an" | "of")
    });
    let at = article.unwrap_or_else(|| rng.gen_range(0..tokens.len()));
    let kept: Vec<&str> =
        tokens.iter().enumerate().filter(|&(i, _)| i != at).map(|(_, t)| *t).collect();
    kept.join(" ")
}

/// Apply one abbreviation or expansion from the shared table; falls back
/// to a typo when nothing matches.
pub fn abbreviate<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let lowered = s.to_ascii_lowercase();
    let mut applicable: Vec<(usize, &str, &str)> = Vec::new();
    for &(long, short) in crate::seeds::ABBREVIATIONS {
        if let Some(at) = find_word(&lowered, long) {
            applicable.push((at, long, short));
        }
        if let Some(at) = find_word(&lowered, short) {
            applicable.push((at, short, long));
        }
    }
    if applicable.is_empty() {
        return typo(rng, s);
    }
    let (at, from, to) = applicable[rng.gen_range(0..applicable.len())];
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..at]);
    out.push_str(to);
    out.push_str(&s[at + from.len()..]);
    out
}

/// Find `word` in `haystack` at word boundaries; both must be lowercase.
fn find_word(haystack: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().unwrap().is_alphanumeric();
        let end = at + word.len();
        let after_ok =
            end == haystack.len() || !haystack[end..].chars().next().unwrap().is_alphanumeric();
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// Remove an apostrophe (`"I'm"` → `"Im"`) or double a letter.
pub fn squash<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    if let Some(at) = s.find('\'') {
        let mut out = String::with_capacity(s.len());
        out.push_str(&s[..at]);
        out.push_str(&s[at + 1..]);
        return out;
    }
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return typo(rng, s);
    }
    let at = rng.gen_range(0..chars.len());
    let mut out: Vec<char> = chars.clone();
    out.insert(at, chars[at]);
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn typo_changes_string_by_one_edit() {
        let mut r = rng();
        for _ in 0..100 {
            let out = typo(&mut r, "microsoft");
            assert_ne!(out, "");
            let diff = (out.chars().count() as i64 - 9).abs();
            assert!(diff <= 1, "{out}");
        }
    }

    #[test]
    fn typo_on_empty_and_single() {
        let mut r = rng();
        assert_eq!(typo(&mut r, ""), "x");
        for _ in 0..50 {
            // One edit on a single char: empty (delete), one char
            // (substitute/transpose-fallback) or two (insert/double).
            let out = typo(&mut r, "a");
            assert!(out.chars().count() <= 2, "{out:?}");
        }
    }

    #[test]
    fn token_swap_produces_rotation_or_swap() {
        let mut r = rng();
        let mut saw_rotation = false;
        let mut saw_swap = false;
        for _ in 0..50 {
            let out = token_swap(&mut r, "Shania Twain");
            if out == "Twain, Shania" {
                saw_rotation = true;
            }
            if out == "Twain Shania" {
                saw_swap = true;
            }
        }
        assert!(saw_rotation && saw_swap);
    }

    #[test]
    fn token_drop_prefers_articles() {
        let mut r = rng();
        assert_eq!(token_drop(&mut r, "The Doors"), "Doors");
        assert_eq!(token_drop(&mut r, "Queen of Hearts"), "Queen Hearts");
        let out = token_drop(&mut r, "alpha beta");
        assert!(out == "alpha" || out == "beta");
    }

    #[test]
    fn abbreviation_round_trips() {
        let mut r = rng();
        let mut saw = std::collections::HashSet::new();
        for _ in 0..200 {
            saw.insert(abbreviate(&mut r, "Acme Corporation"));
        }
        assert!(
            saw.contains("Acme corp")
                || saw.contains("Acme Corp")
                || saw.iter().any(|s| s.to_lowercase() == "acme corp"),
            "expected an abbreviation, got {saw:?}"
        );
        // Expansion direction.
        let mut saw2 = std::collections::HashSet::new();
        for _ in 0..200 {
            saw2.insert(abbreviate(&mut r, "main st"));
        }
        assert!(saw2.iter().any(|s| s.contains("street") || s.contains("saint")), "{saw2:?}");
    }

    #[test]
    fn abbreviation_respects_word_boundaries() {
        // "st" inside "first" must not be replaced.
        let mut r = rng();
        for _ in 0..50 {
            let out = abbreviate(&mut r, "first prize");
            assert!(
                !out.contains("firstreet") && !out.to_lowercase().contains("firsaint"),
                "{out}"
            );
        }
    }

    #[test]
    fn squash_removes_apostrophe_first() {
        let mut r = rng();
        assert_eq!(squash(&mut r, "I'm Holding"), "Im Holding");
        let out = squash(&mut r, "abc");
        assert_eq!(out.len(), 4, "doubled letter: {out}");
    }

    #[test]
    fn perturb_record_never_returns_exact_copy() {
        let model = ErrorModel::default();
        let mut r = rng();
        let record = vec!["The Doors".to_string(), "LA Woman".to_string()];
        for _ in 0..100 {
            let out = model.perturb_record(&mut r, &record, 1);
            assert_ne!(out, record);
            assert_eq!(out.len(), 2);
        }
    }

    #[test]
    fn perturb_is_deterministic_per_seed() {
        let model = ErrorModel::default();
        let record = vec!["Shania Twain".to_string()];
        let a = model.perturb_record(&mut StdRng::seed_from_u64(9), &record, 2);
        let b = model.perturb_record(&mut StdRng::seed_from_u64(9), &record, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_weight_model_is_identity_on_string() {
        let model = ErrorModel { typo: 0, token_swap: 0, token_drop: 0, abbreviate: 0, squash: 0 };
        let mut r = rng();
        assert_eq!(model.perturb_string(&mut r, "abc"), "abc");
        // But perturb_record still forces a difference.
        let out = model.perturb_record(&mut r, &["abc".to_string()], 1);
        assert_ne!(out, vec!["abc".to_string()]);
    }
}
