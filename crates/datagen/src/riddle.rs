//! Loaders for externally-supplied labelled dedup datasets (Riddle-style).
//!
//! The paper's public datasets come from the RIDDLE repository
//! (Restaurants, BirdScott, Parks, Census). We cannot redistribute them,
//! but users who obtain them can load any dataset shaped the usual way —
//! a records file plus a gold-pairs file — into a [`Dataset`]:
//!
//! * **records**: CSV (with or without header) or one record per line;
//! * **gold pairs**: one duplicate pair of 0-based record indexes per
//!   line, separated by whitespace or a comma; `#` starts a comment.
//!   Pairs are closed transitively (union-find) into entity labels, the
//!   same convention RIDDLE's evaluation scripts use.

use crate::csvio::parse_csv;
use crate::dataset::Dataset;

/// How the records file is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFormat {
    /// CSV with a header row naming the attributes.
    CsvWithHeader,
    /// CSV without a header (attributes are named `col0`, `col1`, ...).
    CsvNoHeader,
    /// One single-attribute record per line (the shape of the RIDDLE name
    /// lists).
    Lines,
}

/// Parse a records file. Returns `(attribute names, records)`.
pub fn parse_records(
    text: &str,
    format: RecordFormat,
) -> Result<(Vec<String>, Vec<Vec<String>>), String> {
    match format {
        RecordFormat::Lines => {
            let records: Vec<Vec<String>> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(|l| vec![l.to_string()])
                .collect();
            Ok((vec!["name".to_string()], records))
        }
        RecordFormat::CsvWithHeader | RecordFormat::CsvNoHeader => {
            let mut rows = parse_csv(text)?;
            if rows.is_empty() {
                return Ok((Vec::new(), Vec::new()));
            }
            let arity = rows.iter().map(Vec::len).max().unwrap_or(0);
            for row in &mut rows {
                row.resize(arity, String::new());
            }
            let attributes = if format == RecordFormat::CsvWithHeader {
                rows.remove(0)
            } else {
                (0..arity).map(|i| format!("col{i}")).collect()
            };
            Ok((attributes, rows))
        }
    }
}

/// Parse a gold-pairs file into 0-based index pairs.
pub fn parse_gold_pairs(text: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut pairs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> =
            line.split(|c: char| c == ',' || c.is_whitespace()).filter(|f| !f.is_empty()).collect();
        if fields.len() != 2 {
            return Err(format!("line {}: expected two indexes, got {raw:?}", lineno + 1));
        }
        let a: u32 = fields[0].parse().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let b: u32 = fields[1].parse().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        pairs.push((a, b));
    }
    Ok(pairs)
}

/// Assemble a [`Dataset`] from parsed parts: gold pairs are closed
/// transitively into entity labels.
pub fn dataset_from_parts(
    name: &str,
    attributes: Vec<String>,
    records: Vec<Vec<String>>,
    pairs: &[(u32, u32)],
) -> Result<Dataset, String> {
    let n = records.len();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for &(a, b) in pairs {
        if a as usize >= n || b as usize >= n {
            return Err(format!("gold pair ({a}, {b}) out of range for {n} records"));
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
        }
    }
    // Dense entity labels from union-find roots.
    let mut label_of_root = std::collections::HashMap::new();
    let gold: Vec<usize> = (0..n as u32)
        .map(|id| {
            let root = find(&mut parent, id);
            let next = label_of_root.len();
            *label_of_root.entry(root).or_insert(next)
        })
        .collect();
    Ok(Dataset::new(name, attributes, records, gold))
}

/// One-call loader: records text + gold-pairs text → labelled dataset.
pub fn load_dataset(
    name: &str,
    records_text: &str,
    format: RecordFormat,
    pairs_text: &str,
) -> Result<Dataset, String> {
    let (attributes, records) = parse_records(records_text, format)?;
    let pairs = parse_gold_pairs(pairs_text)?;
    dataset_from_parts(name, attributes, records, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORDS: &str =
        "golden dragon\ngolden dragon restaurant\nblue moon cafe\nblue mon cafe\nsolo diner\n";
    const PAIRS: &str = "# duplicate pairs\n0 1\n2,3\n";

    #[test]
    fn loads_line_records_with_pairs() {
        let d = load_dataset("test", RECORDS, RecordFormat::Lines, PAIRS).unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.attributes, vec!["name"]);
        assert_eq!(d.true_pairs(), 2);
        assert_eq!(d.gold[0], d.gold[1]);
        assert_eq!(d.gold[2], d.gold[3]);
        assert_ne!(d.gold[0], d.gold[2]);
        assert_ne!(d.gold[4], d.gold[0]);
    }

    #[test]
    fn transitive_closure_of_pairs() {
        let d = load_dataset("t", "a\nb\nc\nd\n", RecordFormat::Lines, "0 1\n1 2\n").unwrap();
        assert_eq!(d.gold[0], d.gold[2], "0-1 and 1-2 chain into one entity");
        assert_ne!(d.gold[0], d.gold[3]);
        assert_eq!(d.true_pairs(), 3);
    }

    #[test]
    fn csv_formats() {
        let text = "name,city\ngolden dragon,seattle\nblue moon,portland\n";
        let (attrs, recs) = parse_records(text, RecordFormat::CsvWithHeader).unwrap();
        assert_eq!(attrs, vec!["name", "city"]);
        assert_eq!(recs.len(), 2);
        let (attrs, recs) = parse_records(text, RecordFormat::CsvNoHeader).unwrap();
        assert_eq!(attrs, vec!["col0", "col1"]);
        assert_eq!(recs.len(), 3, "header row becomes a record");
    }

    #[test]
    fn malformed_pairs_error() {
        assert!(parse_gold_pairs("0 1 2\n").is_err());
        assert!(parse_gold_pairs("zero one\n").is_err());
        assert!(parse_gold_pairs("").unwrap().is_empty());
        assert!(parse_gold_pairs("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn out_of_range_pairs_error() {
        let err = load_dataset("t", "a\nb\n", RecordFormat::Lines, "0 7\n").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn empty_inputs() {
        let d = load_dataset("t", "", RecordFormat::Lines, "").unwrap();
        assert!(d.is_empty());
    }
}
