//! `BirdScott[Name]` — Riddle-style bird common names. Bird lists are the
//! worst case for global thresholds: legitimate distinct species differ in
//! one word (`"northern flicker"` / `"gilded flicker"`), exactly the
//! "inherently close but not duplicates" phenomenon of §1.

use std::collections::HashSet;

use rand::Rng;

use crate::dataset::{assemble_dataset, Dataset, DatasetSpec};
use crate::errors::ErrorModel;
use crate::seeds::{BIRD_ADJECTIVES, BIRD_SPECIES};

fn bird(rng: &mut impl Rng) -> String {
    let adj = BIRD_ADJECTIVES[rng.gen_range(0..BIRD_ADJECTIVES.len())];
    let species = BIRD_SPECIES[rng.gen_range(0..BIRD_SPECIES.len())];
    if rng.gen_bool(0.2) {
        let adj2 = BIRD_ADJECTIVES[rng.gen_range(0..BIRD_ADJECTIVES.len())];
        format!("{adj} {adj2} {species}")
    } else {
        format!("{adj} {species}")
    }
}

/// Generate a BirdScott dataset. Every species noun appears under many
/// adjectives, so the unique records form natural near-neighbor families.
pub fn generate(rng: &mut impl Rng, spec: DatasetSpec) -> Dataset {
    let mut base: Vec<Vec<String>> = Vec::with_capacity(spec.n_entities);
    let mut seen: HashSet<String> = HashSet::new();
    let mut attempts = 0usize;
    while base.len() < spec.n_entities {
        attempts += 1;
        assert!(
            attempts < 200 * spec.n_entities + 10_000,
            "vocabulary too small for {} distinct entities",
            spec.n_entities
        );
        let name = bird(rng);
        if seen.insert(name.clone()) {
            base.push(vec![name]);
        }
    }
    // Bird-name errors are nearly all typos (field observers, scanned
    // checklists) — little token-level noise.
    let model = ErrorModel { typo: 6, token_swap: 1, token_drop: 1, abbreviate: 0, squash: 1 };
    let intensity = spec.intensity;
    assemble_dataset("BirdScott", &["name"], base, spec, rng, |rng, b| {
        let edits = intensity.num_edits(&mut *rng);
        model.perturb_record(&mut *rng, b, edits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(53);
        let d = generate(&mut rng, DatasetSpec::small());
        assert_eq!(d.name, "BirdScott");
        assert!(d.len() >= 400);
    }

    #[test]
    fn species_families_share_nouns() {
        let mut rng = StdRng::seed_from_u64(59);
        let d = generate(&mut rng, DatasetSpec::with_entities(300).dup_fraction(0.0));
        use std::collections::HashMap;
        let mut by_species: HashMap<&str, usize> = HashMap::new();
        for r in &d.records {
            let noun = r[0].split_whitespace().last().unwrap();
            *by_species.entry(noun).or_insert(0) += 1;
        }
        // Many distinct entities share a species noun — the near-neighbor
        // families that punish global thresholds.
        assert!(by_species.values().any(|&c| c >= 5));
    }

    #[test]
    fn deterministic() {
        let a = generate(&mut StdRng::seed_from_u64(61), DatasetSpec::with_entities(100));
        let b = generate(&mut StdRng::seed_from_u64(61), DatasetSpec::with_entities(100));
        assert_eq!(a.records, b.records);
    }
}
