//! Dataset container and generation parameters.

use rand::Rng;

/// A labelled relation: records plus gold entity ids (`gold[i] == gold[j]`
/// iff records `i` and `j` are fuzzy duplicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name (matches the paper's dataset names).
    pub name: String,
    /// Attribute names.
    pub attributes: Vec<String>,
    /// The records, each with `attributes.len()` fields.
    pub records: Vec<Vec<String>>,
    /// Gold entity label per record.
    pub gold: Vec<usize>,
}

impl Dataset {
    /// Construct, checking shape invariants.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<String>,
        records: Vec<Vec<String>>,
        gold: Vec<usize>,
    ) -> Self {
        let name = name.into();
        assert_eq!(records.len(), gold.len(), "{name}: gold must cover all records");
        let arity = attributes.len();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.len(), arity, "{name}: record {i} has wrong arity");
        }
        Self { name, attributes, records, gold }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of true duplicate pairs implied by the gold labels.
    pub fn true_pairs(&self) -> u64 {
        let mut counts = std::collections::HashMap::new();
        for &g in &self.gold {
            *counts.entry(g).or_insert(0u64) += 1;
        }
        counts.values().map(|&c| c * c.saturating_sub(1) / 2).sum()
    }

    /// Fraction of records belonging to a multi-record entity — the
    /// "fraction of duplicate tuples" the SN-threshold heuristic asks for.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let mut counts = std::collections::HashMap::new();
        for &g in &self.gold {
            *counts.entry(g).or_insert(0u64) += 1;
        }
        let dup_records: u64 = self.gold.iter().filter(|g| counts[g] > 1).count() as u64;
        dup_records as f64 / self.records.len() as f64
    }
}

/// How hard the injected errors are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorIntensity {
    /// 1 perturbation per duplicate.
    Light,
    /// 1–2 perturbations.
    Medium,
    /// 3–4 perturbations (stress test).
    Heavy,
}

impl ErrorIntensity {
    /// Sample the number of perturbations to apply.
    pub fn num_edits<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            ErrorIntensity::Light => 1,
            ErrorIntensity::Medium => 1 + usize::from(rng.gen_bool(0.5)),
            ErrorIntensity::Heavy => 3 + usize::from(rng.gen_bool(0.5)),
        }
    }
}

/// Size/shape parameters for a generated dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Number of distinct base entities.
    pub n_entities: usize,
    /// Fraction of entities that receive at least one duplicate.
    pub dup_entity_fraction: f64,
    /// Probability that a duplicated entity receives yet another duplicate
    /// (geometric tail: most groups end up of size 2–3, matching the
    /// paper's "most groups of duplicates in practice are very small").
    pub extra_dup_prob: f64,
    /// Maximum group size.
    pub max_group: usize,
    /// Error intensity for duplicates.
    pub intensity: ErrorIntensity,
    /// Fraction of the *final* dataset consisting of **exact** re-emissions
    /// of already-generated records (default 0, i.e. off). `0.5` means half
    /// the output rows are bytewise copies of the other half — the
    /// duplicate-heavy ingest shape the exact-duplicate collapse pre-pass
    /// targets (DESIGN.md §7.10). Exact copies carry their source's gold
    /// label. Clamped below 1.
    pub dup_rate: f64,
}

impl DatasetSpec {
    /// ≈ 500 entities — Riddle-scale (Restaurants has 864 records).
    pub fn small() -> Self {
        Self {
            n_entities: 400,
            dup_entity_fraction: 0.20,
            extra_dup_prob: 0.3,
            max_group: 4,
            intensity: ErrorIntensity::Medium,
            dup_rate: 0.0,
        }
    }

    /// ≈ 2000 entities — enough for stable precision/recall curves.
    pub fn medium() -> Self {
        Self {
            n_entities: 1500,
            dup_entity_fraction: 0.20,
            extra_dup_prob: 0.3,
            max_group: 4,
            intensity: ErrorIntensity::Medium,
            dup_rate: 0.0,
        }
    }

    /// Custom entity count, keeping the standard shape.
    pub fn with_entities(n_entities: usize) -> Self {
        Self { n_entities, ..Self::small() }
    }

    /// Override the duplicated-entity fraction.
    pub fn dup_fraction(mut self, f: f64) -> Self {
        self.dup_entity_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Override the error intensity.
    pub fn intensity(mut self, intensity: ErrorIntensity) -> Self {
        self.intensity = intensity;
        self
    }

    /// Override the exact-duplicate rate (see [`Self::dup_rate`]).
    pub fn dup_rate(mut self, rate: f64) -> Self {
        self.dup_rate = rate.clamp(0.0, 0.95);
        self
    }

    /// Sample the total group size for a duplicated entity (≥ 2).
    pub fn sample_group_size<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut size = 2;
        while size < self.max_group && rng.gen_bool(self.extra_dup_prob) {
            size += 1;
        }
        size
    }
}

/// Shared generation skeleton: take base records (one per entity), decide
/// which entities get duplicates, apply `perturb` per extra copy, shuffle
/// deterministically, and label.
pub fn assemble_dataset(
    name: &str,
    attributes: &[&str],
    base_records: Vec<Vec<String>>,
    spec: DatasetSpec,
    rng: &mut impl Rng,
    mut perturb: impl FnMut(&mut dyn rand::RngCore, &[String]) -> Vec<String>,
) -> Dataset {
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    for (entity, base) in base_records.into_iter().enumerate() {
        let group_size =
            if rng.gen_bool(spec.dup_entity_fraction) { spec.sample_group_size(rng) } else { 1 };
        for _ in 1..group_size {
            records.push((entity, perturb(rng, &base)));
        }
        records.push((entity, base));
    }
    // Exact-duplicate injection: re-emit already-generated rows verbatim
    // until copies make up `dup_rate` of the final dataset. Sampling from
    // the growing vector lets heavy classes form (a copy can itself be
    // copied). Gated so `dup_rate == 0` draws nothing and existing seeds
    // reproduce bit-identically.
    if spec.dup_rate > 0.0 && !records.is_empty() {
        let rate = spec.dup_rate.min(0.95);
        let extra = (rate / (1.0 - rate) * records.len() as f64).round() as usize;
        for _ in 0..extra {
            let source = records[rng.gen_range(0..records.len())].clone();
            records.push(source);
        }
    }
    // Deterministic shuffle so duplicates are not adjacent by construction.
    for i in (1..records.len()).rev() {
        let j = rng.gen_range(0..=i);
        records.swap(i, j);
    }
    let gold = records.iter().map(|(e, _)| *e).collect();
    let recs = records.into_iter().map(|(_, r)| r).collect();
    Dataset::new(name, attributes.iter().map(|s| s.to_string()).collect(), recs, gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_invariants() {
        let d = Dataset::new(
            "t",
            vec!["a".into()],
            vec![vec!["x".into()], vec!["y".into()], vec!["x2".into()]],
            vec![0, 1, 0],
        );
        assert_eq!(d.len(), 3);
        assert_eq!(d.true_pairs(), 1);
        assert!((d.duplicate_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gold must cover")]
    fn mismatched_gold_panics() {
        Dataset::new("t", vec!["a".into()], vec![vec!["x".into()]], vec![]);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn wrong_arity_panics() {
        Dataset::new("t", vec!["a".into(), "b".into()], vec![vec!["x".into()]], vec![0]);
    }

    #[test]
    fn group_sizes_bounded() {
        let spec = DatasetSpec::small();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let s = spec.sample_group_size(&mut rng);
            assert!((2..=spec.max_group).contains(&s));
        }
    }

    #[test]
    fn assemble_produces_expected_dup_fraction() {
        let spec = DatasetSpec::with_entities(1000);
        let mut rng = StdRng::seed_from_u64(5);
        let base: Vec<Vec<String>> = (0..1000).map(|i| vec![format!("entity {i}")]).collect();
        let d = assemble_dataset("t", &["name"], base, spec, &mut rng, |_, b| b.to_vec());
        // ~20% of entities duplicated; duplicate-record fraction is a bit
        // higher than the entity fraction (each group has ≥ 2 records).
        let f = d.duplicate_fraction();
        assert!((0.25..0.45).contains(&f), "duplicate fraction {f}");
        assert!(d.len() >= 1000);
        assert!(d.true_pairs() > 100);
    }

    #[test]
    fn dup_rate_injects_exact_copies() {
        // No perturbed groups (identity perturb would blur the count):
        // every exact copy comes from the injection pass.
        let spec = DatasetSpec::with_entities(500).dup_fraction(0.0).dup_rate(0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let base: Vec<Vec<String>> = (0..500).map(|i| vec![format!("entity {i}")]).collect();
        let d = assemble_dataset("t", &["name"], base, spec, &mut rng, |_, b| b.to_vec());
        // Exactly-equal record share ≈ dup_rate: count records whose field
        // vector occurs more than once.
        let mut counts = std::collections::HashMap::new();
        for r in &d.records {
            *counts.entry(r.clone()).or_insert(0usize) += 1;
        }
        let n_unique = counts.len();
        let copies = d.len() - n_unique;
        let share = copies as f64 / d.len() as f64;
        assert!((0.40..=0.60).contains(&share), "exact-copy share {share}");
        // Copies carry their source's gold label: every exact-equal pair
        // is also a gold duplicate pair, so per record-content the gold
        // label set is a singleton... except perturb here is the identity,
        // so just check gold is consistent within equal contents.
        let mut label_of = std::collections::HashMap::new();
        for (r, &g) in d.records.iter().zip(&d.gold) {
            assert_eq!(*label_of.entry(r.clone()).or_insert(g), g, "copy changed gold label");
        }
    }

    #[test]
    fn dup_rate_zero_is_bit_identical_to_before() {
        let base = || -> Vec<Vec<String>> { (0..200).map(|i| vec![format!("e {i}")]).collect() };
        let spec = DatasetSpec::with_entities(200);
        let mut rng_a = StdRng::seed_from_u64(11);
        let a = assemble_dataset("t", &["name"], base(), spec, &mut rng_a, |_, b| b.to_vec());
        let mut rng_b = StdRng::seed_from_u64(11);
        let b = assemble_dataset("t", &["name"], base(), spec.dup_rate(0.0), &mut rng_b, |_, b| {
            b.to_vec()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn intensity_edit_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ErrorIntensity::Light.num_edits(&mut rng), 1);
        for _ in 0..20 {
            let n = ErrorIntensity::Medium.num_edits(&mut rng);
            assert!((1..=2).contains(&n));
        }
        for _ in 0..20 {
            let n = ErrorIntensity::Heavy.num_edits(&mut rng);
            assert!((3..=4).contains(&n));
        }
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new("e", vec!["a".into()], vec![], vec![]);
        assert!(d.is_empty());
        assert_eq!(d.true_pairs(), 0);
        assert_eq!(d.duplicate_fraction(), 0.0);
    }
}
