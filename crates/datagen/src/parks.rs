//! `Parks[Name]` — Riddle-style park names. The paper found *no*
//! improvement over threshold baselines on Parks; the generator keeps the
//! profile that plausibly causes that: long, highly regular names whose
//! duplicates differ only by suffix conventions, so thresholds already do
//! well.

use std::collections::HashSet;

use rand::Rng;

use crate::dataset::{assemble_dataset, Dataset, DatasetSpec};
use crate::errors::ErrorModel;
use crate::seeds::{PARK_FEATURES, PARK_HEADS, PARK_TYPES};

fn park(rng: &mut impl Rng) -> String {
    let head = PARK_HEADS[rng.gen_range(0..PARK_HEADS.len())];
    let ty = PARK_TYPES[rng.gen_range(0..PARK_TYPES.len())];
    if rng.gen_bool(0.5) {
        let feature = PARK_FEATURES[rng.gen_range(0..PARK_FEATURES.len())];
        format!("{head} {feature} {ty}")
    } else {
        format!("{head} {ty}")
    }
}

/// Generate a Parks dataset of the given spec.
pub fn generate(rng: &mut impl Rng, spec: DatasetSpec) -> Dataset {
    let mut base: Vec<Vec<String>> = Vec::with_capacity(spec.n_entities);
    let mut seen: HashSet<String> = HashSet::new();
    let mut attempts = 0usize;
    while base.len() < spec.n_entities {
        attempts += 1;
        assert!(
            attempts < 200 * spec.n_entities + 10_000,
            "vocabulary too small for {} distinct entities",
            spec.n_entities
        );
        let name = park(rng);
        if seen.insert(name.clone()) {
            base.push(vec![name]);
        }
    }
    // Park duplicates mostly drop the type suffix or abbreviate it.
    let model = ErrorModel { typo: 2, token_swap: 0, token_drop: 5, abbreviate: 2, squash: 1 };
    let intensity = spec.intensity;
    assemble_dataset("Parks", &["name"], base, spec, rng, |rng, b| {
        let edits = intensity.num_edits(&mut *rng);
        model.perturb_record(&mut *rng, b, edits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(67);
        let d = generate(&mut rng, DatasetSpec::small());
        assert_eq!(d.name, "Parks");
        assert!(d.len() >= 400);
        assert!(d.true_pairs() > 10);
    }

    #[test]
    fn vocabulary_is_bounded() {
        // The combination space must comfortably exceed the standard spec
        // sizes, or generation could not terminate.
        let ceiling = PARK_HEADS.len() * PARK_TYPES.len() * (PARK_FEATURES.len() + 1);
        assert!(ceiling > 2 * DatasetSpec::small().n_entities);
        let mut rng = StdRng::seed_from_u64(71);
        let d = generate(&mut rng, DatasetSpec::with_entities(500).dup_fraction(0.0));
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn duplicates_often_drop_suffix_words() {
        let mut rng = StdRng::seed_from_u64(73);
        let d = generate(&mut rng, DatasetSpec::with_entities(150));
        use std::collections::HashMap;
        let mut by_gold: HashMap<usize, Vec<&str>> = HashMap::new();
        for (r, &g) in d.records.iter().zip(&d.gold) {
            by_gold.entry(g).or_default().push(r[0].as_str());
        }
        let shorter_variant = by_gold.values().filter(|v| v.len() > 1).any(|v| {
            let min = v.iter().map(|s| s.split_whitespace().count()).min().unwrap();
            let max = v.iter().map(|s| s.split_whitespace().count()).max().unwrap();
            min < max
        });
        assert!(shorter_variant, "expected a token-dropped duplicate");
    }
}
