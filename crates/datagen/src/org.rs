//! `Org[name, address, city, state, zipcode]` — the organization-address
//! warehouse used for the paper's performance experiments (3 million rows
//! in the paper; any size here). Duplicates carry the classic CRM noise:
//! abbreviated suffixes ("corporation"/"corp"), abbreviated street types,
//! and typos in names.

use std::collections::HashSet;

use rand::Rng;

use crate::dataset::{assemble_dataset, Dataset, DatasetSpec};
use crate::errors::ErrorModel;
use crate::seeds::{CITIES, ORG_CORES, ORG_HEADS, ORG_SUFFIXES, STREETS, STREET_TYPES};

fn org_name(rng: &mut impl Rng) -> String {
    let head = ORG_HEADS[rng.gen_range(0..ORG_HEADS.len())];
    let core = ORG_CORES[rng.gen_range(0..ORG_CORES.len())];
    let suffix = ORG_SUFFIXES[rng.gen_range(0..ORG_SUFFIXES.len())];
    format!("{head} {core} {suffix}")
}

fn address(rng: &mut impl Rng) -> String {
    let number = rng.gen_range(1..9999);
    let street = STREETS[rng.gen_range(0..STREETS.len())];
    let ty = STREET_TYPES[rng.gen_range(0..STREET_TYPES.len())];
    format!("{number} {street} {ty}")
}

/// Generate an Org dataset of the given spec.
pub fn generate(rng: &mut impl Rng, spec: DatasetSpec) -> Dataset {
    let mut base: Vec<Vec<String>> = Vec::with_capacity(spec.n_entities);
    let mut seen: HashSet<String> = HashSet::new();
    let mut attempts = 0usize;
    while base.len() < spec.n_entities {
        attempts += 1;
        assert!(
            attempts < 200 * spec.n_entities + 10_000,
            "vocabulary too small for {} distinct entities",
            spec.n_entities
        );
        let name = org_name(rng);
        let addr = address(rng);
        let (city, state, zip_prefix) = CITIES[rng.gen_range(0..CITIES.len())];
        let zip = format!("{zip_prefix}{:02}", rng.gen_range(0..100));
        let key = format!("{name}|{addr}");
        if seen.insert(key) {
            base.push(vec![name, addr, city.to_string(), state.to_string(), zip]);
        }
    }
    // Org noise leans on abbreviations more than music data does.
    let model = ErrorModel { typo: 3, token_swap: 1, token_drop: 1, abbreviate: 5, squash: 1 };
    let intensity = spec.intensity;
    assemble_dataset(
        "Org",
        &["name", "address", "city", "state", "zipcode"],
        base,
        spec,
        rng,
        |rng, b| {
            let edits = intensity.num_edits(&mut *rng);
            model.perturb_record(&mut *rng, b, edits)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_labels() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = generate(&mut rng, DatasetSpec::with_entities(250));
        assert_eq!(d.attributes.len(), 5);
        assert!(d.len() >= 250);
        assert!(d.true_pairs() > 10);
        for r in &d.records {
            assert_eq!(r.len(), 5);
        }
    }

    #[test]
    fn zips_match_city_prefixes() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = generate(&mut rng, DatasetSpec::with_entities(100).dup_fraction(0.0));
        for r in &d.records {
            let city = r[2].as_str();
            let zip = r[4].as_str();
            let (_, _, prefix) = CITIES.iter().find(|(c, _, _)| *c == city).unwrap();
            assert!(zip.starts_with(prefix), "{city} {zip}");
            assert_eq!(zip.len(), 5);
        }
    }

    #[test]
    fn scales_to_larger_sizes() {
        let mut rng = StdRng::seed_from_u64(29);
        let d = generate(&mut rng, DatasetSpec::with_entities(5000));
        assert!(d.len() >= 5000);
    }

    #[test]
    fn duplicates_often_use_abbreviations() {
        let mut rng = StdRng::seed_from_u64(31);
        let d = generate(&mut rng, DatasetSpec::with_entities(500));
        // At least one duplicate should contain a short form.
        let has_abbrev = d.records.iter().any(|r| {
            let joined = r.join(" ");
            joined
                .split_whitespace()
                .any(|w| matches!(w, "corp" | "inc" | "co" | "st" | "ave" | "rd" | "&"))
        });
        assert!(has_abbrev);
    }
}
