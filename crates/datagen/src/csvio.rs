//! Minimal CSV reading/writing (RFC 4180 subset) for dataset I/O.
//!
//! Supports quoted fields, embedded commas/quotes/newlines, and CRLF
//! line endings — enough to load real dedup inputs and write labelled
//! outputs without adding a dependency.

use std::fmt::Write as _;

/// Parse CSV text into rows of fields.
///
/// Handles `"quoted"` fields with `""` escapes, embedded separators and
/// newlines inside quotes, and both `\n` and `\r\n` endings. A trailing
/// newline does not produce an empty record.
///
/// Returns an error message with a line number on malformed input
/// (unterminated quote, characters after a closing quote).
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    // Whether the current field was quoted (affects what may follow).
    let mut was_quoted = false;
    // Whether any character belongs to the current record.
    let mut record_started = false;

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if field.is_empty() && !was_quoted {
                    in_quotes = true;
                    was_quoted = true;
                    record_started = true;
                } else {
                    return Err(format!("line {line}: unexpected quote inside unquoted field"));
                }
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                was_quoted = false;
                record_started = true;
            }
            '\r' => {
                // CRLF: swallow the CR and let the LF terminate the
                // record. A bare CR is field data.
                if chars.peek() != Some(&'\n') {
                    field.push('\r');
                    record_started = true;
                }
            }
            '\n' => {
                line += 1;
                if record_started || !field.is_empty() || !row.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                was_quoted = false;
                record_started = false;
            }
            _ => {
                if was_quoted {
                    // A quoted field already ended; bare chars after it are
                    // malformed (e.g. `"ab"c`).
                    return Err(format!("line {line}: data after closing quote"));
                }
                field.push(ch);
                record_started = true;
            }
        }
    }
    if in_quotes {
        return Err(format!("line {line}: unterminated quoted field"));
    }
    if record_started || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Quote a field if it contains a separator, quote, or newline.
fn quote_field(field: &str, out: &mut String) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialize rows to CSV text (LF endings, trailing newline).
pub fn write_csv<S: AsRef<str>>(rows: &[Vec<S>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, field) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            quote_field(field.as_ref(), &mut out);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let rows = parse_csv("a,b,c\nd,e,f\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let rows = parse_csv("a,b\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn quoted_fields() {
        let rows = parse_csv("\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n").unwrap();
        assert_eq!(rows, vec![vec!["a,b", "say \"hi\"", "multi\nline"]]);
    }

    #[test]
    fn crlf_endings() {
        let rows = parse_csv("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn bare_cr_is_field_data() {
        // Only CRLF terminates a record; a lone CR belongs to the field.
        let rows = parse_csv("a\rb,c\n").unwrap();
        assert_eq!(rows, vec![vec!["a\rb", "c"]]);
    }

    #[test]
    fn empty_fields_and_rows() {
        let rows = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "", "c"], vec!["", "", ""]]);
        assert!(parse_csv("").unwrap().is_empty());
        assert!(parse_csv("\n").unwrap().is_empty());
    }

    #[test]
    fn quoted_empty_field() {
        let rows = parse_csv("\"\",x\n").unwrap();
        assert_eq!(rows, vec![vec!["", "x"]]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_csv("\"unterminated\n").is_err());
        assert!(parse_csv("\"ab\"c,d\n").is_err());
        assert!(parse_csv("ab\"c\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let rows: Vec<Vec<String>> = vec![
            vec!["plain".into(), "with,comma".into()],
            vec!["with \"quotes\"".into(), "multi\nline".into()],
            vec!["".into(), "end".into()],
        ];
        let text = write_csv(&rows);
        assert_eq!(parse_csv(&text).unwrap(), rows);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_csv("ok,row\nbad\"row\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
