//! `Media[artistName, trackName]` — the paper's music warehouse, including
//! the exact Table 1 example and its two hard phenomena: *confusable
//! series* (`"Ears/Eyes - Part II/III/IV"`: distinct entities at tiny edit
//! distance) and *shared titles* (`"Are You Ready"` by four different
//! artists).

use std::collections::HashSet;

use rand::Rng;

use crate::dataset::{assemble_dataset, Dataset, DatasetSpec};
use crate::errors::ErrorModel;
use crate::seeds::{ARTIST_WORDS, FIRST_NAMES, LAST_NAMES, TRACK_CLOSERS, TRACK_OPENERS};

/// The exact Table 1 relation. Records 0–5 are three duplicate pairs;
/// records 6–13 are unique.
pub fn table1() -> Dataset {
    let rows: [(&str, &str); 14] = [
        ("The Doors", "LA Woman"),
        ("Doors", "LA Woman"),
        ("The Beatles", "A Little Help from My Friends"),
        ("Beatles, The", "With A Little Help From My Friend"),
        ("Shania Twain", "Im Holdin on to Love"),
        ("Twian, Shania", "I'm Holding On To Love"),
        ("4 th Elemynt", "Ears/Eyes"),
        ("4 th Elemynt", "Ears/Eyes - Part II"),
        ("4th Elemynt", "Ears/Eyes - Part III"),
        ("4 th Elemynt", "Ears/Eyes - Part IV"),
        ("Aaliyah", "Are You Ready"),
        ("AC DC", "Are You Ready"),
        ("Bob Dylan", "Are You Ready"),
        ("Creed", "Are You Ready"),
    ];
    let records = rows.iter().map(|(a, t)| vec![a.to_string(), t.to_string()]).collect();
    let gold = vec![0, 0, 1, 1, 2, 2, 3, 4, 5, 6, 7, 8, 9, 10];
    Dataset::new("Media-Table1", vec!["artistName".into(), "trackName".into()], records, gold)
}

fn roman(n: usize) -> &'static str {
    ["i", "ii", "iii", "iv", "v", "vi"][n.min(5)]
}

fn artist(rng: &mut impl Rng) -> String {
    if rng.gen_bool(0.5) {
        // Band name.
        let word = ARTIST_WORDS[rng.gen_range(0..ARTIST_WORDS.len())];
        if rng.gen_bool(0.6) {
            format!("the {word}")
        } else {
            word.to_string()
        }
    } else {
        // Solo artist.
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        format!("{first} {last}")
    }
}

fn track(rng: &mut impl Rng) -> String {
    let opener = TRACK_OPENERS[rng.gen_range(0..TRACK_OPENERS.len())];
    let closer = TRACK_CLOSERS[rng.gen_range(0..TRACK_CLOSERS.len())];
    format!("{opener} {closer}")
}

/// Generate a Media dataset. Besides ordinary entities, it plants the two
/// hard structures of Table 1 with ~10% of the entity budget each:
/// part-series by one artist (unique entities, tiny distances) and one
/// title shared by several artists (unique entities, shared tokens).
pub fn generate(rng: &mut impl Rng, spec: DatasetSpec) -> Dataset {
    let mut base: Vec<Vec<String>> = Vec::with_capacity(spec.n_entities);
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let push_unique = |base: &mut Vec<Vec<String>>,
                       seen: &mut HashSet<(String, String)>,
                       a: String,
                       t: String| {
        if seen.insert((a.clone(), t.clone())) {
            base.push(vec![a, t]);
        }
    };

    let mut attempts = 0usize;
    while base.len() < spec.n_entities {
        attempts += 1;
        assert!(
            attempts < 200 * spec.n_entities + 10_000,
            "vocabulary too small for {} distinct entities",
            spec.n_entities
        );
        let roll = rng.gen_range(0..10u8);
        if roll == 0 && base.len() + 4 <= spec.n_entities {
            // Confusable series: one artist, "<track> - part i..iv".
            let a = artist(rng);
            let t = track(rng);
            for part in 0..4 {
                push_unique(&mut base, &mut seen, a.clone(), format!("{t} - part {}", roman(part)));
            }
        } else if roll == 1 && base.len() + 3 <= spec.n_entities {
            // Shared title across distinct artists.
            let t = track(rng);
            for _ in 0..3 {
                push_unique(&mut base, &mut seen, artist(rng), t.clone());
            }
        } else {
            push_unique(&mut base, &mut seen, artist(rng), track(rng));
        }
    }

    let model = ErrorModel::default();
    let intensity = spec.intensity;
    assemble_dataset("Media", &["artistName", "trackName"], base, spec, rng, |rng, b| {
        let edits = intensity.num_edits(&mut *rng);
        model.perturb_record(&mut *rng, b, edits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_shape() {
        let d = table1();
        assert_eq!(d.len(), 14);
        assert_eq!(d.true_pairs(), 3);
        assert_eq!(d.attributes, vec!["artistName", "trackName"]);
        assert!((d.duplicate_fraction() - 6.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn generated_media_has_planted_structures() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = generate(&mut rng, DatasetSpec::with_entities(300));
        assert!(d.len() >= 300);
        // Confusable series present.
        let parts = d.records.iter().filter(|r| r[1].contains(" - part ")).count();
        assert!(parts >= 4, "expected planted series, found {parts}");
        // Shared titles present: some track appears under ≥ 3 artists with
        // different gold labels.
        use std::collections::HashMap;
        let mut by_track: HashMap<&str, HashSet<usize>> = HashMap::new();
        for (r, &g) in d.records.iter().zip(&d.gold) {
            by_track.entry(r[1].as_str()).or_default().insert(g);
        }
        assert!(by_track.values().any(|s| s.len() >= 3), "no shared titles planted");
    }

    #[test]
    fn base_records_are_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&mut rng, DatasetSpec::with_entities(200));
        // Records with unique gold labels must be pairwise distinct.
        use std::collections::HashMap;
        let mut label_count: HashMap<usize, usize> = HashMap::new();
        for &g in &d.gold {
            *label_count.entry(g).or_insert(0) += 1;
        }
        let uniques: Vec<&Vec<String>> = d
            .records
            .iter()
            .zip(&d.gold)
            .filter(|(_, g)| label_count[g] == 1)
            .map(|(r, _)| r)
            .collect();
        let set: HashSet<&Vec<String>> = uniques.iter().copied().collect();
        assert_eq!(set.len(), uniques.len());
    }

    #[test]
    fn duplicates_differ_from_their_base() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = generate(&mut rng, DatasetSpec::with_entities(200));
        use std::collections::HashMap;
        let mut by_gold: HashMap<usize, Vec<&Vec<String>>> = HashMap::new();
        for (r, &g) in d.records.iter().zip(&d.gold) {
            by_gold.entry(g).or_default().push(r);
        }
        for group in by_gold.values().filter(|g| g.len() > 1) {
            let set: HashSet<&&Vec<String>> = group.iter().collect();
            assert_eq!(set.len(), group.len(), "duplicates must not be exact copies");
        }
    }
}
