//! Sort-merge equi-join: the I/O-friendly alternative to [`crate::join`].
//!
//! The hash join builds an in-memory table of one side; when neither side
//! fits in memory a database instead sorts both inputs on the join key
//! (external sort) and merges them. Since our external sort already runs
//! through the buffer pool, this operator gives the substrate a fully
//! out-of-core join path. Results are identical to [`crate::join::hash_join`]
//! up to emission order (asserted by tests).

use std::cmp::Ordering;

use crate::error::RelationResult;
use crate::sort::{external_sort, SortConfig};
use crate::table::Table;
use crate::tuple::Tuple;

/// Sort-merge join `left` and `right` on equality of the given key
/// columns, invoking `emit` for each matching pair. Duplicate keys produce
/// the full cross product, as SQL requires.
pub fn merge_join(
    left: &Table,
    right: &Table,
    left_key: &[usize],
    right_key: &[usize],
    mut emit: impl FnMut(&Tuple, &Tuple),
) -> RelationResult<()> {
    assert_eq!(left_key.len(), right_key.len(), "key arity must match");

    let sorted_left = external_sort(left, &SortConfig::by_columns(left_key.to_vec()))?;
    let sorted_right = external_sort(right, &SortConfig::by_columns(right_key.to_vec()))?;
    let l: Vec<Tuple> = sorted_left.read_all()?;
    let r: Vec<Tuple> = sorted_right.read_all()?;

    let key_cmp = |a: &Tuple, b: &Tuple| -> Ordering {
        for (&ka, &kb) in left_key.iter().zip(right_key) {
            let c = a.get(ka).cmp(b.get(kb));
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    };

    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match key_cmp(&l[i], &r[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Extent of the equal-key run on each side.
                let i_end = (i..l.len())
                    .find(|&x| key_cmp(&l[x], &r[j]) != Ordering::Equal)
                    .unwrap_or(l.len());
                let j_end = (j..r.len())
                    .find(|&y| key_cmp(&l[i], &r[y]) != Ordering::Equal)
                    .unwrap_or(r.len());
                for lt in &l[i..i_end] {
                    for rt in &r[j..j_end] {
                        emit(lt, rt);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::hash_join;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;
    use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn table_with(rows: &[(i64, &str)]) -> Table {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(4), disk));
        let schema = Arc::new(Schema::new(vec![
            Column::new("k", ColumnType::I64),
            Column::new("v", ColumnType::Str),
        ]));
        let t = Table::create(pool, schema);
        for (k, v) in rows {
            t.insert(&Tuple::new(vec![Value::I64(*k), Value::from(*v)])).unwrap();
        }
        t
    }

    fn collect_pairs(join: impl FnOnce(&mut dyn FnMut(&Tuple, &Tuple))) -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        join(&mut |a: &Tuple, b: &Tuple| {
            pairs.push((
                a.get(1).as_str().unwrap().to_string(),
                b.get(1).as_str().unwrap().to_string(),
            ));
        });
        pairs.sort();
        pairs
    }

    #[test]
    fn matches_hash_join_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let l_rows: Vec<(i64, String)> =
            (0..120).map(|i| (rng.gen_range(0..20), format!("l{i}"))).collect();
        let r_rows: Vec<(i64, String)> =
            (0..80).map(|i| (rng.gen_range(0..20), format!("r{i}"))).collect();
        let l_refs: Vec<(i64, &str)> = l_rows.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let r_refs: Vec<(i64, &str)> = r_rows.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let l = table_with(&l_refs);
        let r = table_with(&r_refs);

        let merged = collect_pairs(|emit| merge_join(&l, &r, &[0], &[0], emit).unwrap());
        let hashed = collect_pairs(|emit| hash_join(&l, &r, &[0], &[0], emit).unwrap());
        assert_eq!(merged.len(), hashed.len());
        assert_eq!(merged, hashed);
        assert!(!merged.is_empty());
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let l = table_with(&[(1, "a1"), (1, "a2"), (2, "b")]);
        let r = table_with(&[(1, "x1"), (1, "x2"), (3, "z")]);
        let pairs = collect_pairs(|emit| merge_join(&l, &r, &[0], &[0], emit).unwrap());
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&("a2".to_string(), "x1".to_string())));
    }

    #[test]
    fn disjoint_keys_empty() {
        let l = table_with(&[(1, "a")]);
        let r = table_with(&[(2, "b")]);
        let pairs = collect_pairs(|emit| merge_join(&l, &r, &[0], &[0], emit).unwrap());
        assert!(pairs.is_empty());
    }

    #[test]
    fn empty_sides() {
        let l = table_with(&[]);
        let r = table_with(&[(1, "b")]);
        let mut count = 0;
        merge_join(&l, &r, &[0], &[0], |_, _| count += 1).unwrap();
        merge_join(&r, &l, &[0], &[0], |_, _| count += 1).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "key arity")]
    fn mismatched_keys_panic() {
        let l = table_with(&[(1, "a")]);
        let r = table_with(&[(1, "b")]);
        merge_join(&l, &r, &[0], &[0, 1], |_, _| {}).unwrap();
    }
}
