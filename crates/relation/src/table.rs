//! Heap-file-backed tables with pull-based scans.

use std::sync::Arc;

use fuzzydedup_storage::{BufferPool, HeapFile, RecordId};

use crate::error::RelationResult;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// A relation: a schema plus a heap file of encoded tuples.
pub struct Table {
    schema: Arc<Schema>,
    heap: HeapFile,
}

impl Table {
    /// Create an empty table on a buffer pool.
    pub fn create(pool: Arc<BufferPool>, schema: Arc<Schema>) -> Self {
        Self { schema, heap: HeapFile::create(pool) }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The buffer pool backing this table.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.heap.pool()
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.heap.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pages occupied.
    pub fn num_pages(&self) -> usize {
        self.heap.num_pages()
    }

    /// Insert a tuple after validating it against the schema.
    pub fn insert(&self, tuple: &Tuple) -> RelationResult<RecordId> {
        self.schema.check(tuple.values())?;
        Ok(self.heap.insert(&tuple.encode())?)
    }

    /// Fetch one tuple by record id.
    pub fn get(&self, id: RecordId) -> RelationResult<Tuple> {
        let bytes = self.heap.get(id)?;
        Tuple::decode(&bytes)
    }

    /// Visit every tuple in storage order.
    pub fn scan(&self, mut visit: impl FnMut(RecordId, Tuple)) -> RelationResult<()> {
        let mut decode_err = None;
        self.heap.scan(|id, bytes| {
            if decode_err.is_some() {
                return;
            }
            match Tuple::decode(bytes) {
                Ok(t) => visit(id, t),
                Err(e) => decode_err = Some(e),
            }
        })?;
        match decode_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pull-based tuple iterator over a snapshot of the table (materialized
    /// on the first `next()` call; each page is touched exactly once).
    pub fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            table: self,
            buffered: Vec::new(),
            buffered_pos: 0,
            done: false,
            fetched: false,
        }
    }

    /// Collect all tuples into memory.
    pub fn read_all(&self) -> RelationResult<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.scan(|_, t| out.push(t))?;
        Ok(out)
    }
}

/// Pull iterator over a table's tuples.
///
/// The current implementation materializes the scan buffer lazily on first
/// `next()` call; each item is `RelationResult<Tuple>` so decode errors
/// surface instead of silently truncating.
pub struct TupleIter<'a> {
    table: &'a Table,
    buffered: Vec<Tuple>,
    buffered_pos: usize,
    done: bool,
    fetched: bool,
}

impl Iterator for TupleIter<'_> {
    type Item = RelationResult<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.fetched {
            self.fetched = true;
            match self.table.read_all() {
                Ok(tuples) => self.buffered = tuples,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        if self.buffered_pos < self.buffered.len() {
            let t = self.buffered[self.buffered_pos].clone();
            self.buffered_pos += 1;
            Some(Ok(t))
        } else {
            self.done = true;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use crate::value::Value;
    use fuzzydedup_storage::{BufferPoolConfig, InMemoryDisk};

    fn make_table() -> Table {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(4), disk));
        let schema = Arc::new(Schema::new(vec![
            Column::new("id", ColumnType::I64),
            Column::new("name", ColumnType::Str),
        ]));
        Table::create(pool, schema)
    }

    fn row(id: i64, name: &str) -> Tuple {
        Tuple::new(vec![Value::I64(id), Value::from(name)])
    }

    #[test]
    fn insert_scan_roundtrip() {
        let t = make_table();
        for i in 0..10 {
            t.insert(&row(i, &format!("name{i}"))).unwrap();
        }
        assert_eq!(t.len(), 10);
        let all = t.read_all().unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[3].get(1).as_str().unwrap(), "name3");
    }

    #[test]
    fn schema_enforced_on_insert() {
        let t = make_table();
        let bad_arity = Tuple::new(vec![Value::I64(1)]);
        assert!(t.insert(&bad_arity).is_err());
        let bad_type = Tuple::new(vec![Value::Str("x".into()), Value::Str("y".into())]);
        assert!(t.insert(&bad_type).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn get_by_record_id() {
        let t = make_table();
        let rid = t.insert(&row(42, "answer")).unwrap();
        let back = t.get(rid).unwrap();
        assert_eq!(back.get(0).as_i64().unwrap(), 42);
    }

    #[test]
    fn iterator_yields_everything() {
        let t = make_table();
        for i in 0..25 {
            t.insert(&row(i, "x")).unwrap();
        }
        let ids: Vec<i64> = t.iter().map(|r| r.unwrap().get(0).as_i64().unwrap()).collect();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn large_table_spills_pages() {
        let t = make_table();
        let long_name = "x".repeat(500);
        for i in 0..100 {
            t.insert(&row(i, &long_name)).unwrap();
        }
        assert!(t.num_pages() > 1);
        assert_eq!(t.read_all().unwrap().len(), 100);
    }

    #[test]
    fn empty_table() {
        let t = make_table();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        assert!(t.read_all().unwrap().is_empty());
    }
}
