//! Tuples: rows of values, encodable to heap-file records.

use std::cmp::Ordering;

use crate::error::RelationResult;
use crate::value::Value;

/// A row of values. The schema is carried by the containing table; a bare
/// `Tuple` is just an ordered value list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Construct from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Take ownership of the values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at a column index (panics when out of range, like slice
    /// indexing — table code validates arity against the schema on insert).
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Binary encoding: arity (u16) followed by each value's encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * self.values.len() + 2);
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            v.encode(&mut out);
        }
        out
    }

    /// Decode from heap-file record bytes.
    pub fn decode(bytes: &[u8]) -> RelationResult<Self> {
        use crate::error::RelationError;
        if bytes.len() < 2 {
            return Err(RelationError::DecodeError("missing arity"));
        }
        let arity = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let mut pos = 2;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(bytes, &mut pos)?);
        }
        if pos != bytes.len() {
            return Err(RelationError::DecodeError("trailing bytes"));
        }
        Ok(Self { values })
    }

    /// Compare two tuples on a sequence of key column indices (total order,
    /// used by the external sort).
    pub fn compare_on(&self, other: &Self, key_columns: &[usize]) -> Ordering {
        for &k in key_columns {
            let c = self.values[k].cmp(&other.values[k]);
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Neighbor;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip() {
        let t = Tuple::new(vec![
            Value::I64(7),
            Value::Str("the doors".into()),
            Value::Neighbors(vec![Neighbor::new(1, 0.25)]),
            Value::BoolList(vec![true, false]),
            Value::F64(3.5),
            Value::Null,
        ]);
        let bytes = t.encode();
        assert_eq!(Tuple::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let t = Tuple::new(vec![Value::I64(1)]);
        let mut bytes = t.encode();
        bytes.push(0xAB);
        assert!(Tuple::decode(&bytes).is_err());
        assert!(Tuple::decode(&[]).is_err());
        assert!(Tuple::decode(&[1]).is_err());
    }

    #[test]
    fn compare_on_keys() {
        let a = Tuple::new(vec![Value::I64(1), Value::Str("b".into())]);
        let b = Tuple::new(vec![Value::I64(1), Value::Str("a".into())]);
        assert_eq!(a.compare_on(&b, &[0]), Ordering::Equal);
        assert_eq!(a.compare_on(&b, &[0, 1]), Ordering::Greater);
        assert_eq!(a.compare_on(&b, &[1]), Ordering::Greater);
        assert_eq!(a.compare_on(&b, &[]), Ordering::Equal);
    }

    proptest! {
        #[test]
        fn roundtrip_random_tuples(
            ints in prop::collection::vec(any::<i64>(), 0..6),
            strs in prop::collection::vec(".{0,20}", 0..4),
        ) {
            let mut values: Vec<Value> = Vec::new();
            values.extend(ints.iter().map(|&i| Value::I64(i)));
            values.extend(strs.iter().map(|s| Value::Str(s.clone())));
            let t = Tuple::new(values);
            prop_assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
        }
    }
}
