#![warn(missing_docs)]

//! Typed relations over the paged storage engine.
//!
//! The paper's Phase 2 runs "standard SQL queries" against the database
//! server: a `SELECT INTO` self-join building the `CSPairs` relation, and a
//! `SELECT * FROM CSPairs ORDER BY ID` grouping query. This crate is the
//! substrate those queries run on in our reproduction: a small, typed
//! relational layer with
//!
//! * [`value::Value`] — typed values including the neighbor lists the
//!   algorithm materializes;
//! * [`schema::Schema`] — named, typed columns;
//! * [`tuple::Tuple`] — records encodable to page bytes;
//! * [`table::Table`] — heap-file-backed relations with pull-based scans;
//! * [`sort`] — external merge sort (bounded-memory runs + k-way merge),
//!   the engine behind `ORDER BY`;
//! * [`group`] — sorted-input grouping, the engine behind the CS-group
//!   query;
//! * [`join`] — hash equi-join, the engine behind the CSPairs self-join.
//!
//! Everything is deliberately minimal — this is not a general query engine,
//! it is the exact operator set Phase 2 needs, built honestly on pages and
//! the buffer pool so that I/O behaviour is measurable.

pub mod error;
pub mod group;
pub mod join;
pub mod merge_join;
pub mod ops;
pub mod schema;
pub mod sort;
pub mod table;
pub mod tuple;
pub mod value;

pub use error::{RelationError, RelationResult};
pub use group::group_sorted;
pub use join::hash_join;
pub use merge_join::merge_join;
pub use ops::{aggregate_column, filter, project, ColumnStats};
pub use schema::{Column, ColumnType, Schema};
pub use sort::{external_sort, SortConfig};
pub use table::{Table, TupleIter};
pub use tuple::Tuple;
pub use value::{Neighbor, Value};
