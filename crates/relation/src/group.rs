//! Grouping of sorted input: the engine behind the CS-group query.
//!
//! Phase 2 processes the result of `select * from CSPairs order by ID` one
//! group at a time: "each compact SN set G will be grouped together under
//! the tuple with the minimum ID in G". [`group_sorted`] turns a sorted
//! tuple stream into `(key, rows)` groups.

use crate::tuple::Tuple;
use crate::value::Value;

/// Group consecutive tuples of a **sorted** sequence by the values of
/// `key_columns`. Returns `(key values, tuples)` per group, preserving
/// input order within groups.
///
/// The input must already be sorted on the key columns (e.g. by
/// [`crate::sort::external_sort`]); equal keys that are not adjacent end up
/// in separate groups, exactly like SQL `GROUP BY` over a clustered scan
/// would misbehave — callers sort first.
pub fn group_sorted(
    tuples: impl IntoIterator<Item = Tuple>,
    key_columns: &[usize],
) -> Vec<(Vec<Value>, Vec<Tuple>)> {
    let mut out: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    for t in tuples {
        let key: Vec<Value> = key_columns.iter().map(|&k| t.get(k).clone()).collect();
        match out.last_mut() {
            Some((last_key, rows)) if *last_key == key => rows.push(t),
            _ => out.push((key, vec![t])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: i64, s: &str) -> Tuple {
        Tuple::new(vec![Value::I64(id), Value::from(s)])
    }

    #[test]
    fn groups_adjacent_keys() {
        let tuples = vec![row(1, "a"), row(1, "b"), row(2, "c"), row(3, "d"), row(3, "e")];
        let groups = group_sorted(tuples, &[0]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, vec![Value::I64(1)]);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].1.len(), 1);
        assert_eq!(groups[2].1.len(), 2);
    }

    #[test]
    fn preserves_order_within_group() {
        let tuples = vec![row(1, "first"), row(1, "second"), row(1, "third")];
        let groups = group_sorted(tuples, &[0]);
        let texts: Vec<&str> = groups[0].1.iter().map(|t| t.get(1).as_str().unwrap()).collect();
        assert_eq!(texts, ["first", "second", "third"]);
    }

    #[test]
    fn empty_input() {
        assert!(group_sorted(Vec::new(), &[0]).is_empty());
    }

    #[test]
    fn multi_column_keys() {
        let tuples = vec![
            Tuple::new(vec![Value::I64(1), Value::from("x"), Value::Bool(true)]),
            Tuple::new(vec![Value::I64(1), Value::from("x"), Value::Bool(false)]),
            Tuple::new(vec![Value::I64(1), Value::from("y"), Value::Bool(true)]),
        ];
        let groups = group_sorted(tuples, &[0, 1]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn unsorted_input_splits_groups() {
        // Documents the contract: non-adjacent equal keys form two groups.
        let tuples = vec![row(1, "a"), row(2, "b"), row(1, "c")];
        let groups = group_sorted(tuples, &[0]);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn empty_key_is_one_group() {
        let tuples = vec![row(1, "a"), row(2, "b")];
        let groups = group_sorted(tuples, &[]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 2);
    }
}
