//! Named, typed column schemas.

use crate::error::{RelationError, RelationResult};
use crate::value::Value;

/// Column data types (matching the [`Value`] variants; every column is
/// implicitly nullable, as in SQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Booleans.
    Bool,
    /// 64-bit integers.
    I64,
    /// 64-bit floats.
    F64,
    /// UTF-8 strings.
    Str,
    /// Neighbor lists (`NN-List`).
    Neighbors,
    /// Boolean vectors (`[CS2..CSK]`).
    BoolList,
}

impl ColumnType {
    /// Whether a value inhabits this type (NULL inhabits every type).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::I64, Value::I64(_))
                | (ColumnType::F64, Value::F64(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Neighbors, Value::Neighbors(_))
                | (ColumnType::BoolList, Value::BoolList(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into(), ty }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Construct a schema. Panics on duplicate column names (a programming
    /// error, not a data error).
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|o| o.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> RelationResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelationError::NoSuchColumn(name.to_string()))
    }

    /// Validate that a row of values matches this schema.
    pub fn check(&self, values: &[Value]) -> RelationResult<()> {
        if values.len() != self.arity() {
            return Err(RelationError::SchemaMismatch {
                expected: format!("{} columns", self.arity()),
                found: format!("{} values", values.len()),
            });
        }
        for (col, val) in self.columns.iter().zip(values) {
            if !col.ty.admits(val) {
                return Err(RelationError::SchemaMismatch {
                    expected: format!("{:?} for column {}", col.ty, col.name),
                    found: val.type_name().to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::I64),
            Column::new("nn_list", ColumnType::Neighbors),
            Column::new("ng", ColumnType::F64),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("ng").unwrap(), 2);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::new(vec![Column::new("id", ColumnType::I64), Column::new("id", ColumnType::Str)]);
    }

    #[test]
    fn check_accepts_valid_rows() {
        let s = schema();
        s.check(&[Value::I64(1), Value::Neighbors(vec![]), Value::F64(2.0)]).unwrap();
        // NULL inhabits any column.
        s.check(&[Value::Null, Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn check_rejects_bad_rows() {
        let s = schema();
        assert!(s.check(&[Value::I64(1)]).is_err(), "wrong arity");
        assert!(
            s.check(&[Value::Str("x".into()), Value::Neighbors(vec![]), Value::F64(0.0)]).is_err(),
            "wrong type"
        );
    }

    #[test]
    fn admits_matrix() {
        assert!(ColumnType::I64.admits(&Value::I64(1)));
        assert!(!ColumnType::I64.admits(&Value::F64(1.0)));
        assert!(ColumnType::Bool.admits(&Value::Null));
        assert!(ColumnType::BoolList.admits(&Value::BoolList(vec![])));
        assert!(!ColumnType::Neighbors.admits(&Value::BoolList(vec![])));
    }
}
