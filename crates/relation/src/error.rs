//! Relation-layer error types.

use std::fmt;

use fuzzydedup_storage::StorageError;

/// Result alias for relation operations.
pub type RelationResult<T> = Result<T, RelationError>;

/// Errors raised by the relation layer.
#[derive(Debug)]
pub enum RelationError {
    /// A tuple's arity or value types do not match the table schema.
    SchemaMismatch {
        /// What was expected, human-readable.
        expected: String,
        /// What was found, human-readable.
        found: String,
    },
    /// Encoded tuple bytes could not be decoded.
    DecodeError(&'static str),
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// An underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            Self::DecodeError(why) => write!(f, "tuple decode error: {why}"),
            Self::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            Self::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for RelationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RelationError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RelationError::SchemaMismatch { expected: "i64".into(), found: "str".into() };
        assert!(e.to_string().contains("expected i64"));
        assert!(RelationError::DecodeError("truncated").to_string().contains("truncated"));
        assert!(RelationError::NoSuchColumn("ng".into()).to_string().contains("ng"));
        let s: RelationError = StorageError::PageNotFound(3).into();
        assert!(s.to_string().contains("page 3"));
    }
}
