//! Typed values with a total order and a compact binary encoding.
//!
//! The value set is the one Phase 2 needs: integers for tuple identifiers,
//! floats for distances and neighborhood growths, strings for record
//! attributes, booleans for the `CSi` flags, and *neighbor lists* — the
//! `NN-List` attribute of `NN_Reln` holding `(tuple id, distance)` pairs
//! sorted by distance.
//!
//! `Value` implements a **total order** (floats via `f64::total_cmp`, NaN
//! sorting last) so it can key external sorts without panics.

use std::cmp::Ordering;

use crate::error::{RelationError, RelationResult};

/// One entry of an `NN-List`: a neighbor's tuple id and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Neighboring tuple's identifier.
    pub id: u32,
    /// Distance from the list's owner to this neighbor.
    pub dist: f64,
}

impl Neighbor {
    /// Construct a neighbor entry.
    pub fn new(id: u32, dist: f64) -> Self {
        Self { id, dist }
    }
}

/// A typed relational value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean (the `CSi` flags of the CSPairs relation).
    Bool(bool),
    /// 64-bit integer (tuple identifiers, counts).
    I64(i64),
    /// 64-bit float (distances, neighborhood growths).
    F64(f64),
    /// UTF-8 string (record attributes).
    Str(String),
    /// Neighbor list sorted ascending by distance (the `NN-List` column).
    Neighbors(Vec<Neighbor>),
    /// List of booleans (the `[CS2..CSK]` vector, variable length for the
    /// diameter specification).
    BoolList(Vec<bool>),
}

impl Value {
    /// Type tag used by the binary encoding and by schema checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Neighbors(_) => "neighbors",
            Value::BoolList(_) => "boollist",
        }
    }

    /// Extract an i64, erroring on other types.
    pub fn as_i64(&self) -> RelationResult<i64> {
        match self {
            Value::I64(v) => Ok(*v),
            other => Err(RelationError::SchemaMismatch {
                expected: "i64".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract an f64, erroring on other types.
    pub fn as_f64(&self) -> RelationResult<f64> {
        match self {
            Value::F64(v) => Ok(*v),
            other => Err(RelationError::SchemaMismatch {
                expected: "f64".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract a string slice, erroring on other types.
    pub fn as_str(&self) -> RelationResult<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(RelationError::SchemaMismatch {
                expected: "str".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract a neighbor list, erroring on other types.
    pub fn as_neighbors(&self) -> RelationResult<&[Neighbor]> {
        match self {
            Value::Neighbors(v) => Ok(v),
            other => Err(RelationError::SchemaMismatch {
                expected: "neighbors".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract a bool list, erroring on other types.
    pub fn as_bool_list(&self) -> RelationResult<&[bool]> {
        match self {
            Value::BoolList(v) => Ok(v),
            other => Err(RelationError::SchemaMismatch {
                expected: "boollist".into(),
                found: other.type_name().into(),
            }),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) => 2,
            Value::F64(_) => 3,
            Value::Str(_) => 4,
            Value::Neighbors(_) => 5,
            Value::BoolList(_) => 6,
        }
    }

    /// Append the binary encoding of this value to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::I64(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::F64(v) => {
                out.push(3);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Neighbors(ns) => {
                out.push(5);
                out.extend_from_slice(&(ns.len() as u32).to_le_bytes());
                for n in ns {
                    out.extend_from_slice(&n.id.to_le_bytes());
                    out.extend_from_slice(&n.dist.to_le_bytes());
                }
            }
            Value::BoolList(bs) => {
                out.push(6);
                out.extend_from_slice(&(bs.len() as u32).to_le_bytes());
                out.extend(bs.iter().map(|&b| u8::from(b)));
            }
        }
    }

    /// Decode one value from `bytes` starting at `*pos`, advancing `*pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> RelationResult<Value> {
        fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> RelationResult<&'a [u8]> {
            let end = *pos + n;
            if end > bytes.len() {
                return Err(RelationError::DecodeError("truncated value"));
            }
            let slice = &bytes[*pos..end];
            *pos = end;
            Ok(slice)
        }
        fn take_u32(bytes: &[u8], pos: &mut usize) -> RelationResult<u32> {
            Ok(u32::from_le_bytes(take(bytes, pos, 4)?.try_into().unwrap()))
        }

        let tag = *bytes.get(*pos).ok_or(RelationError::DecodeError("missing tag"))?;
        *pos += 1;
        match tag {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(take(bytes, pos, 1)?[0] != 0)),
            2 => Ok(Value::I64(i64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap()))),
            3 => Ok(Value::F64(f64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap()))),
            4 => {
                let len = take_u32(bytes, pos)? as usize;
                let raw = take(bytes, pos, len)?;
                let s = std::str::from_utf8(raw)
                    .map_err(|_| RelationError::DecodeError("invalid utf-8"))?;
                Ok(Value::Str(s.to_string()))
            }
            5 => {
                let len = take_u32(bytes, pos)? as usize;
                let mut ns = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = take_u32(bytes, pos)?;
                    let dist = f64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap());
                    ns.push(Neighbor::new(id, dist));
                }
                Ok(Value::Neighbors(ns))
            }
            6 => {
                let len = take_u32(bytes, pos)? as usize;
                let raw = take(bytes, pos, len)?;
                Ok(Value::BoolList(raw.iter().map(|&b| b != 0).collect()))
            }
            _ => Err(RelationError::DecodeError("unknown tag")),
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::I64(v) => v.hash(state),
            // Hash the bit pattern; consistent with `Ord` via `total_cmp`
            // for all values a HashMap key would actually contain (equal
            // bit patterns compare equal).
            Value::F64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Neighbors(ns) => {
                ns.len().hash(state);
                for n in ns {
                    n.id.hash(state);
                    n.dist.to_bits().hash(state);
                }
            }
            Value::BoolList(bs) => bs.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Neighbors(a), Neighbors(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.id.cmp(&y.id).then(x.dist.total_cmp(&y.dist));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (BoolList(a), BoolList(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Value::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decode must consume everything");
        back
    }

    #[test]
    fn roundtrip_all_variants() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(-42),
            Value::I64(i64::MAX),
            Value::F64(0.375),
            Value::F64(f64::NEG_INFINITY),
            Value::Str("".into()),
            Value::Str("the doors — la woman".into()),
            Value::Neighbors(vec![Neighbor::new(1, 0.1), Neighbor::new(7, 0.9)]),
            Value::Neighbors(vec![]),
            Value::BoolList(vec![true, false, true]),
            Value::BoolList(vec![]),
        ];
        for v in &values {
            assert_eq!(&roundtrip(v), v);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(5).as_i64().unwrap(), 5);
        assert_eq!(Value::F64(2.5).as_f64().unwrap(), 2.5);
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
        assert!(Value::I64(5).as_str().is_err());
        assert!(Value::Str("x".into()).as_i64().is_err());
        let ns = Value::Neighbors(vec![Neighbor::new(3, 0.5)]);
        assert_eq!(ns.as_neighbors().unwrap()[0].id, 3);
        assert!(ns.as_bool_list().is_err());
        assert_eq!(Value::BoolList(vec![true]).as_bool_list().unwrap(), &[true]);
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = [
            Value::Str("a".into()),
            Value::I64(1),
            Value::Null,
            Value::F64(0.5),
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[4], Value::Str(_)));
    }

    #[test]
    fn nan_sorts_without_panic() {
        let mut vals = [Value::F64(f64::NAN), Value::F64(1.0), Value::F64(-1.0)];
        vals.sort();
        assert_eq!(vals[0], Value::F64(-1.0));
        assert_eq!(vals[1], Value::F64(1.0));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut pos = 0;
        assert!(Value::decode(&[], &mut pos).is_err());
        let mut pos = 0;
        assert!(Value::decode(&[99], &mut pos).is_err());
        let mut pos = 0;
        assert!(Value::decode(&[2, 1, 2], &mut pos).is_err(), "truncated i64");
        let mut pos = 0;
        assert!(Value::decode(&[4, 5, 0, 0, 0, b'a'], &mut pos).is_err(), "short string");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::I64(3));
        assert_eq!(Value::from(3u32), Value::I64(3));
        assert_eq!(Value::from(0.5f64), Value::F64(0.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    proptest! {
        #[test]
        fn roundtrip_strings(s in ".{0,80}") {
            let v = Value::Str(s);
            prop_assert_eq!(roundtrip(&v), v);
        }

        #[test]
        fn roundtrip_neighbors(ns in prop::collection::vec((any::<u32>(), any::<f64>()), 0..32)) {
            let v = Value::Neighbors(ns.iter().map(|&(i, d)| Neighbor::new(i, d)).collect());
            let back = roundtrip(&v);
            // NaN distances compare unequal under PartialEq; compare bits.
            if let (Value::Neighbors(a), Value::Neighbors(b)) = (&v, &back) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.id, y.id);
                    prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            } else {
                prop_assert!(false, "wrong variant");
            }
        }

        #[test]
        fn ord_is_total_and_consistent(a in any::<i64>(), b in any::<i64>()) {
            let va = Value::I64(a);
            let vb = Value::I64(b);
            prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
        }
    }
}
