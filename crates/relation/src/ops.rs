//! Basic relational operators: selection, projection, simple aggregates.
//!
//! Rounds out the Phase-2 substrate with the remaining textbook operators
//! so the experiment drivers (and downstream users) can express their
//! bookkeeping queries against tables instead of ad-hoc vectors. All
//! operators stream through [`Table::scan`], so their I/O goes through the
//! instrumented buffer pool like everything else.

use std::sync::Arc;

use crate::error::RelationResult;
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;

/// Selection: copy the tuples satisfying `predicate` into a new table with
/// the same schema.
pub fn filter(input: &Table, predicate: impl Fn(&Tuple) -> bool) -> RelationResult<Table> {
    let output = Table::create(input.pool().clone(), input.schema().clone());
    let mut pending = Vec::new();
    input.scan(|_, t| {
        if predicate(&t) {
            pending.push(t);
        }
    })?;
    for t in pending {
        output.insert(&t)?;
    }
    Ok(output)
}

/// Projection: keep the given columns (in the given order), producing a
/// table with the corresponding sub-schema.
pub fn project(input: &Table, columns: &[usize]) -> RelationResult<Table> {
    let in_schema = input.schema();
    let out_columns = columns
        .iter()
        .map(|&c| {
            in_schema
                .columns()
                .get(c)
                .cloned()
                .ok_or_else(|| crate::error::RelationError::NoSuchColumn(format!("#{c}")))
        })
        .collect::<RelationResult<Vec<_>>>()?;
    let output = Table::create(input.pool().clone(), Arc::new(Schema::new(out_columns)));
    let mut pending = Vec::new();
    input.scan(|_, t| {
        let values: Vec<Value> = columns.iter().map(|&c| t.get(c).clone()).collect();
        pending.push(Tuple::new(values));
    })?;
    for t in pending {
        output.insert(&t)?;
    }
    Ok(output)
}

/// Simple scalar aggregates over one numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Row count (all rows, including NULLs in the column).
    pub count: u64,
    /// Count of non-NULL numeric values.
    pub non_null: u64,
    /// Minimum value (None when no numeric values).
    pub min: Option<f64>,
    /// Maximum value.
    pub max: Option<f64>,
    /// Sum of values.
    pub sum: f64,
}

impl ColumnStats {
    /// Mean of the non-NULL values.
    pub fn mean(&self) -> Option<f64> {
        (self.non_null > 0).then(|| self.sum / self.non_null as f64)
    }
}

/// Aggregate a column, accepting `I64` and `F64` values (NULL and other
/// types are skipped but counted in `count`).
pub fn aggregate_column(input: &Table, column: usize) -> RelationResult<ColumnStats> {
    let mut stats = ColumnStats { count: 0, non_null: 0, min: None, max: None, sum: 0.0 };
    input.scan(|_, t| {
        stats.count += 1;
        let v = match t.get(column) {
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        };
        if let Some(v) = v {
            stats.non_null += 1;
            stats.sum += v;
            stats.min = Some(stats.min.map_or(v, |m: f64| m.min(v)));
            stats.max = Some(stats.max.map_or(v, |m: f64| m.max(v)));
        }
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};

    fn table() -> Table {
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(4),
            Arc::new(InMemoryDisk::new()),
        ));
        let schema = Arc::new(Schema::new(vec![
            Column::new("id", ColumnType::I64),
            Column::new("score", ColumnType::F64),
            Column::new("name", ColumnType::Str),
        ]));
        let t = Table::create(pool, schema);
        for i in 0..10i64 {
            t.insert(&Tuple::new(vec![
                Value::I64(i),
                if i == 5 { Value::Null } else { Value::F64(i as f64 * 0.5) },
                Value::from(format!("row{i}").as_str()),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = table();
        let even = filter(&t, |row| row.get(0).as_i64().unwrap() % 2 == 0).unwrap();
        assert_eq!(even.len(), 5);
        assert_eq!(even.schema().arity(), 3);
        for row in even.read_all().unwrap() {
            assert_eq!(row.get(0).as_i64().unwrap() % 2, 0);
        }
    }

    #[test]
    fn filter_nothing_and_everything() {
        let t = table();
        assert_eq!(filter(&t, |_| false).unwrap().len(), 0);
        assert_eq!(filter(&t, |_| true).unwrap().len(), 10);
    }

    #[test]
    fn project_reorders_columns() {
        let t = table();
        let p = project(&t, &[2, 0]).unwrap();
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.schema().columns()[0].name, "name");
        let first = &p.read_all().unwrap()[0];
        assert_eq!(first.get(0).as_str().unwrap(), "row0");
        assert_eq!(first.get(1).as_i64().unwrap(), 0);
    }

    #[test]
    fn project_bad_column_errors() {
        let t = table();
        assert!(project(&t, &[7]).is_err());
    }

    #[test]
    fn project_duplicate_column_panics_on_schema() {
        // Projecting the same column twice duplicates the name — the
        // schema constructor treats that as a programming error.
        let t = table();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| project(&t, &[0, 0])));
        assert!(result.is_err());
    }

    #[test]
    fn aggregate_handles_nulls() {
        let t = table();
        let stats = aggregate_column(&t, 1).unwrap();
        assert_eq!(stats.count, 10);
        assert_eq!(stats.non_null, 9);
        assert_eq!(stats.min, Some(0.0));
        assert_eq!(stats.max, Some(4.5));
        // sum of 0,0.5,...,4.5 minus the 2.5 at i=5.
        assert!((stats.sum - (22.5 - 2.5)).abs() < 1e-12);
        assert!((stats.mean().unwrap() - 20.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_i64_column() {
        let t = table();
        let stats = aggregate_column(&t, 0).unwrap();
        assert_eq!(stats.non_null, 10);
        assert_eq!(stats.sum, 45.0);
    }

    #[test]
    fn aggregate_non_numeric_column() {
        let t = table();
        let stats = aggregate_column(&t, 2).unwrap();
        assert_eq!(stats.count, 10);
        assert_eq!(stats.non_null, 0);
        assert_eq!(stats.mean(), None);
        assert_eq!(stats.min, None);
    }
}
