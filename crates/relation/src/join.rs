//! Hash equi-join: the engine behind the CSPairs self-join.
//!
//! The paper's CSPairs construction step is a self-join of `NN_Reln` "on
//! the predicate that a tuple NN_Reln.ID is less than NN_Reln2.ID and that
//! it is in the K-nearest neighbor set of NN_Reln2.ID and vice-versa". Our
//! [`hash_join`] implements the generic equi-join core (build + probe); the
//! non-equi residual predicates (`ID < ID2`, mutual-membership) are applied
//! by the caller's `emit` callback, mirroring how a database would evaluate
//! residual predicates on top of the join.

use std::collections::HashMap;

use crate::error::RelationResult;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;

/// Hash-join `left` and `right` on equality of the given key columns,
/// invoking `emit` for each matching pair. The smaller side should be
/// passed as `left` (the build side); both sides are streamed through the
/// buffer pool.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &[usize],
    right_key: &[usize],
    mut emit: impl FnMut(&Tuple, &Tuple),
) -> RelationResult<()> {
    assert_eq!(left_key.len(), right_key.len(), "key arity must match");
    // Build.
    let mut build: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
    left.scan(|_, t| {
        let key: Vec<Value> = left_key.iter().map(|&k| t.get(k).clone()).collect();
        build.entry(key).or_default().push(t);
    })?;
    // Probe.
    right.scan(|_, t| {
        let key: Vec<Value> = right_key.iter().map(|&k| t.get(k).clone()).collect();
        if let Some(matches) = build.get(&key) {
            for l in matches {
                emit(l, &t);
            }
        }
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};
    use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
    use std::sync::Arc;

    fn table_with(rows: &[(i64, &str)]) -> Table {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(4), disk));
        let schema = Arc::new(Schema::new(vec![
            Column::new("k", ColumnType::I64),
            Column::new("v", ColumnType::Str),
        ]));
        let t = Table::create(pool, schema);
        for (k, v) in rows {
            t.insert(&Tuple::new(vec![Value::I64(*k), Value::from(*v)])).unwrap();
        }
        t
    }

    #[test]
    fn inner_join_matches() {
        let l = table_with(&[(1, "a"), (2, "b"), (3, "c")]);
        let r = table_with(&[(2, "x"), (3, "y"), (4, "z")]);
        let mut pairs = Vec::new();
        hash_join(&l, &r, &[0], &[0], |a, b| {
            pairs.push((
                a.get(1).as_str().unwrap().to_string(),
                b.get(1).as_str().unwrap().to_string(),
            ));
        })
        .unwrap();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![("b".to_string(), "x".to_string()), ("c".to_string(), "y".to_string())]
        );
    }

    #[test]
    fn duplicate_keys_produce_cross_product() {
        let l = table_with(&[(1, "a1"), (1, "a2")]);
        let r = table_with(&[(1, "b1"), (1, "b2")]);
        let mut count = 0;
        hash_join(&l, &r, &[0], &[0], |_, _| count += 1).unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn self_join_with_residual_predicate() {
        // The CSPairs pattern: self-join on a blocking key, residual
        // predicate ID1 < ID2 applied in the emit callback.
        let t = table_with(&[(7, "p"), (7, "q"), (7, "r")]);
        let mut pairs = Vec::new();
        hash_join(&t, &t, &[0], &[0], |a, b| {
            let (x, y) = (a.get(1).as_str().unwrap(), b.get(1).as_str().unwrap());
            if x < y {
                pairs.push((x.to_string(), y.to_string()));
            }
        })
        .unwrap();
        pairs.sort();
        assert_eq!(pairs.len(), 3); // (p,q), (p,r), (q,r)
    }

    #[test]
    fn empty_sides() {
        let l = table_with(&[]);
        let r = table_with(&[(1, "x")]);
        let mut count = 0;
        hash_join(&l, &r, &[0], &[0], |_, _| count += 1).unwrap();
        hash_join(&r, &l, &[0], &[0], |_, _| count += 1).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "key arity")]
    fn mismatched_key_arity_panics() {
        let l = table_with(&[(1, "a")]);
        let r = table_with(&[(1, "b")]);
        hash_join(&l, &r, &[0], &[0, 1], |_, _| {}).unwrap();
    }
}
