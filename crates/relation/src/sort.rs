//! External merge sort: the engine behind `ORDER BY`.
//!
//! Phase 2 of the paper's algorithm issues the *CS-group query*
//! `select * from CSPairs order by ID`, and observes that "the cost of
//! sorting the CSPairs relation dominates the partitioning step cost". We
//! implement the textbook external merge sort: bounded-memory run
//! generation (quicksort of up to `run_size` tuples) followed by a k-way
//! merge via a binary heap. Runs are spilled to temporary tables on the
//! same buffer pool, so sort I/O flows through the instrumented pool like
//! everything else.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::error::RelationResult;
use crate::table::Table;
use crate::tuple::Tuple;

/// Configuration for the external sort.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Key column indices, in significance order.
    pub key_columns: Vec<usize>,
    /// Maximum tuples per in-memory run.
    pub run_size: usize,
}

impl SortConfig {
    /// Sort on the given key columns with the default run size (64k tuples).
    pub fn by_columns(key_columns: Vec<usize>) -> Self {
        Self { key_columns, run_size: 65_536 }
    }

    /// Override the run size (mainly for tests that want to force merging).
    pub fn run_size(mut self, run_size: usize) -> Self {
        self.run_size = run_size.max(1);
        self
    }
}

/// Heap entry for the k-way merge. `BinaryHeap` is a max-heap, so ordering
/// is reversed; ties are broken by run index to make the sort stable across
/// runs (within a run, the in-memory sort is stable already).
struct MergeEntry {
    tuple: Tuple,
    run: usize,
    pos: usize,
    key_columns: Arc<Vec<usize>>,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behavior.
        other
            .tuple
            .compare_on(&self.tuple, &self.key_columns)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// Sort `input` into a fresh table with the same schema, using bounded
/// memory (`config.run_size` tuples per run).
pub fn external_sort(input: &Table, config: &SortConfig) -> RelationResult<Table> {
    let pool = input.pool().clone();
    let schema = input.schema().clone();

    // Run generation.
    let mut runs: Vec<Table> = Vec::new();
    let mut current: Vec<Tuple> = Vec::with_capacity(config.run_size.min(1024));
    let spill = |current: &mut Vec<Tuple>, runs: &mut Vec<Table>| -> RelationResult<()> {
        if current.is_empty() {
            return Ok(());
        }
        current.sort_by(|a, b| a.compare_on(b, &config.key_columns));
        let run = Table::create(pool.clone(), schema.clone());
        for t in current.drain(..) {
            run.insert(&t)?;
        }
        runs.push(run);
        Ok(())
    };

    // Collect runs; `scan` is closure-based so spills are deferred until
    // after the scan to keep error handling straightforward.
    let mut pending: Vec<Vec<Tuple>> = Vec::new();
    input.scan(|_, t| {
        current.push(t);
        if current.len() >= config.run_size {
            pending.push(std::mem::take(&mut current));
        }
    })?;
    for mut p in pending {
        spill(&mut p, &mut runs)?;
    }
    spill(&mut current, &mut runs)?;

    let output = Table::create(pool, schema);
    if runs.is_empty() {
        return Ok(output);
    }

    // Fast path: a single run is already sorted.
    if runs.len() == 1 {
        runs[0].scan(|_, t| {
            // Insert errors can only be schema mismatches, impossible here.
            output.insert(&t).expect("same schema");
        })?;
        return Ok(output);
    }

    // K-way merge. Run contents are materialized per run; the merge then
    // proceeds index-wise. (Runs were just written through the pool, so
    // reading them back exercises the same I/O path a disk-based merge
    // would.)
    let run_tuples: Vec<Vec<Tuple>> =
        runs.iter().map(|r| r.read_all()).collect::<RelationResult<_>>()?;
    let key_columns = Arc::new(config.key_columns.clone());
    let mut heap = BinaryHeap::with_capacity(run_tuples.len());
    for (run, tuples) in run_tuples.iter().enumerate() {
        if let Some(first) = tuples.first() {
            heap.push(MergeEntry {
                tuple: first.clone(),
                run,
                pos: 0,
                key_columns: key_columns.clone(),
            });
        }
    }
    while let Some(entry) = heap.pop() {
        output.insert(&entry.tuple)?;
        let next_pos = entry.pos + 1;
        if let Some(next) = run_tuples[entry.run].get(next_pos) {
            heap.push(MergeEntry {
                tuple: next.clone(),
                run: entry.run,
                pos: next_pos,
                key_columns: key_columns.clone(),
            });
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;
    use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn make_table() -> Table {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(8), disk));
        let schema = Arc::new(Schema::new(vec![
            Column::new("id", ColumnType::I64),
            Column::new("payload", ColumnType::Str),
        ]));
        Table::create(pool, schema)
    }

    fn ids_of(t: &Table) -> Vec<i64> {
        t.read_all().unwrap().iter().map(|t| t.get(0).as_i64().unwrap()).collect()
    }

    #[test]
    fn sorts_random_input() {
        let t = make_table();
        let mut rng = StdRng::seed_from_u64(7);
        let mut expected: Vec<i64> = Vec::new();
        for _ in 0..500 {
            let v: i64 = rng.gen_range(-1000..1000);
            expected.push(v);
            t.insert(&Tuple::new(vec![Value::I64(v), Value::from("x")])).unwrap();
        }
        expected.sort();
        let sorted = external_sort(&t, &SortConfig::by_columns(vec![0])).unwrap();
        assert_eq!(ids_of(&sorted), expected);
    }

    #[test]
    fn merges_many_small_runs() {
        let t = make_table();
        let mut rng = StdRng::seed_from_u64(11);
        let mut expected: Vec<i64> = Vec::new();
        for _ in 0..300 {
            let v: i64 = rng.gen_range(0..10_000);
            expected.push(v);
            t.insert(&Tuple::new(vec![Value::I64(v), Value::from("y")])).unwrap();
        }
        expected.sort();
        // run_size 16 → ~19 runs merged.
        let cfg = SortConfig::by_columns(vec![0]).run_size(16);
        let sorted = external_sort(&t, &cfg).unwrap();
        assert_eq!(ids_of(&sorted), expected);
    }

    #[test]
    fn multi_key_sort() {
        let t = make_table();
        let rows = [(2, "b"), (1, "z"), (2, "a"), (1, "a")];
        for (i, s) in rows {
            t.insert(&Tuple::new(vec![Value::I64(i), Value::from(s)])).unwrap();
        }
        let sorted = external_sort(&t, &SortConfig::by_columns(vec![0, 1]).run_size(2)).unwrap();
        let got: Vec<(i64, String)> = sorted
            .read_all()
            .unwrap()
            .iter()
            .map(|t| (t.get(0).as_i64().unwrap(), t.get(1).as_str().unwrap().to_string()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, "a".to_string()),
                (1, "z".to_string()),
                (2, "a".to_string()),
                (2, "b".to_string())
            ]
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let t = make_table();
        let sorted = external_sort(&t, &SortConfig::by_columns(vec![0])).unwrap();
        assert!(sorted.is_empty());

        t.insert(&Tuple::new(vec![Value::I64(9), Value::from("only")])).unwrap();
        let sorted = external_sort(&t, &SortConfig::by_columns(vec![0])).unwrap();
        assert_eq!(ids_of(&sorted), vec![9]);
    }

    #[test]
    fn already_sorted_input_is_preserved() {
        let t = make_table();
        for i in 0..100 {
            t.insert(&Tuple::new(vec![Value::I64(i), Value::from("s")])).unwrap();
        }
        let sorted = external_sort(&t, &SortConfig::by_columns(vec![0]).run_size(10)).unwrap();
        assert_eq!(ids_of(&sorted), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_all_survive() {
        let t = make_table();
        for _ in 0..50 {
            t.insert(&Tuple::new(vec![Value::I64(5), Value::from("dup")])).unwrap();
        }
        let sorted = external_sort(&t, &SortConfig::by_columns(vec![0]).run_size(7)).unwrap();
        assert_eq!(sorted.len(), 50);
        assert!(ids_of(&sorted).iter().all(|&v| v == 5));
    }
}
