#![warn(missing_docs)]

//! Paged storage engine with an instrumented buffer pool.
//!
//! The ICDE 2005 paper runs as a client of Microsoft SQL Server: the
//! nearest-neighbor index pages live in the *database buffer*, and the
//! paper's Figure 8 measures how the breadth-first lookup order improves the
//! **buffer hit ratio**, processor usage, and lookup throughput at different
//! buffer memory sizes (32/64/128 MB). This crate is our substitute for
//! that backend (see `DESIGN.md` §4): a faithful page/buffer-pool/heap-file
//! stack whose buffer pool counts hits, misses, and evictions, so the same
//! experiment can be regenerated deterministically.
//!
//! Components:
//!
//! * [`page`] — fixed-size pages with a slotted record layout;
//! * [`disk`] — [`disk::DiskManager`] trait with in-memory and file-backed
//!   implementations (reads/writes whole pages, counts I/O);
//! * [`buffer`] — [`buffer::BufferPool`] with pluggable replacement
//!   ([`buffer::ReplacementPolicy::Lru`] / `Clock`), pin counts, dirty
//!   tracking, and [`buffer::BufferStats`];
//! * [`heap`] — [`heap::HeapFile`], an unordered record file over the
//!   buffer pool with stable [`heap::RecordId`]s and full-scan iteration.

pub mod buffer;
pub mod disk;
pub mod error;
pub mod heap;
pub mod page;

pub use buffer::{BufferPool, BufferPoolConfig, BufferStats, ReplacementPolicy};
pub use disk::{DiskManager, FileDisk, InMemoryDisk};
pub use error::{StorageError, StorageResult};
pub use heap::{HeapFile, RecordId};
pub use page::{Page, PageId, PAGE_SIZE};
