//! Fixed-size pages with a slotted record layout.
//!
//! Pages are the unit of I/O and of buffering. We use the classic slotted
//! layout: a header at the front, a slot directory growing forward after
//! the header, and record payloads growing backward from the end of the
//! page. Deleted slots are tombstoned (offset = `u16::MAX`); space is
//! reclaimed only on page rebuild (not needed by our workloads, which are
//! append-heavy).
//!
//! Layout (little-endian):
//!
//! ```text
//! [0..2)   slot_count: u16
//! [2..4)   free_space_end: u16   (records live in [free_space_end, PAGE_SIZE))
//! [4..4 + 4*slot_count)  slot directory: (offset: u16, len: u16) per slot
//! [free_space_end..PAGE_SIZE)  record payloads
//! ```

use crate::error::{StorageError, StorageResult};

/// Page size in bytes: 8 KiB, matching SQL Server's page size (the backend
/// the paper's prototype ran against).
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 4;
const SLOT_SIZE: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// Identifier of a page within a disk manager's page space.
pub type PageId = u64;

/// An 8 KiB slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut page = Self { data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap() };
        page.set_slot_count(0);
        page.set_free_space_end(PAGE_SIZE as u16);
        page
    }

    /// Reconstruct a page from raw bytes (e.g. read from disk), validating
    /// the header.
    pub fn from_bytes(id: PageId, bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::CorruptPage(id, "wrong page length"));
        }
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        data.copy_from_slice(bytes);
        let page = Self { data: data.try_into().unwrap() };
        let slots = page.slot_count() as usize;
        let fse = page.free_space_end() as usize;
        if fse > PAGE_SIZE || HEADER_SIZE + slots * SLOT_SIZE > fse {
            return Err(StorageError::CorruptPage(id, "header out of bounds"));
        }
        Ok(page)
    }

    /// Raw page bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn free_space_end(&self) -> u16 {
        self.read_u16(2)
    }

    fn set_free_space_end(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let at = HEADER_SIZE + idx as usize * SLOT_SIZE;
        (self.read_u16(at), self.read_u16(at + 2))
    }

    fn set_slot(&mut self, idx: u16, offset: u16, len: u16) {
        let at = HEADER_SIZE + idx as usize * SLOT_SIZE;
        self.write_u16(at, offset);
        self.write_u16(at + 2, len);
    }

    /// Free bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        (self.free_space_end() as usize).saturating_sub(dir_end)
    }

    /// Maximum payload an empty page can hold.
    pub fn max_record_size() -> usize {
        PAGE_SIZE - HEADER_SIZE - SLOT_SIZE
    }

    /// Whether a record of `len` bytes fits in this page right now.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Insert a record, returning its slot index.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<u16> {
        if record.len() > Self::max_record_size() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: Self::max_record_size(),
            });
        }
        if !self.fits(record.len()) {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: self.free_space().saturating_sub(SLOT_SIZE),
            });
        }
        let slot = self.slot_count();
        let new_end = self.free_space_end() as usize - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_slot_count(slot + 1);
        self.set_free_space_end(new_end as u16);
        self.set_slot(slot, new_end as u16, record.len() as u16);
        Ok(slot)
    }

    /// Read the record in a slot; `None` for tombstoned or out-of-range
    /// slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (offset, len) = self.slot(slot);
        if offset == TOMBSTONE {
            return None;
        }
        Some(&self.data[offset as usize..offset as usize + len as usize])
    }

    /// Tombstone a slot. Returns whether a live record was deleted.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (offset, len) = self.slot(slot);
        if offset == TOMBSTONE {
            return false;
        }
        self.set_slot(slot, TOMBSTONE, len);
        true
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Bytes of payload space occupied by tombstoned records (reclaimable
    /// by [`Page::compact`]).
    pub fn dead_bytes(&self) -> usize {
        (0..self.slot_count())
            .filter_map(|s| {
                let (offset, len) = self.slot(s);
                (offset == TOMBSTONE).then_some(len as usize)
            })
            .sum()
    }

    /// Rewrite the page in place, reclaiming the payload space of
    /// tombstoned records. Slot numbers are **stable** — live records keep
    /// their slots (so `RecordId`s remain valid) and tombstoned slots stay
    /// tombstoned. Returns the number of bytes reclaimed.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.dead_bytes();
        if reclaimed == 0 {
            return 0;
        }
        let live: Vec<(u16, Vec<u8>)> = self.records().map(|(s, r)| (s, r.to_vec())).collect();
        let slot_count = self.slot_count();
        // Tombstoned slots no longer occupy payload: zero their lengths so
        // `dead_bytes` reflects reality (and compaction is idempotent).
        for s in 0..slot_count {
            if self.slot(s).0 == TOMBSTONE {
                self.set_slot(s, TOMBSTONE, 0);
            }
        }
        // Rebuild payloads from the end of the page.
        let mut end = PAGE_SIZE;
        for (slot, record) in &live {
            end -= record.len();
            self.data[end..end + record.len()].copy_from_slice(record);
            self.set_slot(*slot, end as u16, record.len() as u16);
        }
        self.set_free_space_end(end as u16);
        self.set_slot_count(slot_count);
        reclaimed
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_page() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
        assert!(p.get(0).is_none());
        assert_eq!(p.records().count(), 0);
    }

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0), Some(&b"hello"[..]));
        assert_eq!(p.get(1), Some(&b"world!"[..]));
        assert_eq!(p.records().count(), 2);
    }

    #[test]
    fn empty_record_allowed() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        assert!(p.delete(0));
        assert!(!p.delete(0), "double delete is a no-op");
        assert!(p.get(0).is_none());
        assert_eq!(p.get(1), Some(&b"b"[..]));
        assert_eq!(p.records().count(), 1);
        assert!(!p.delete(99));
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let mut inserted = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            inserted += 1;
        }
        assert!(inserted >= 8);
        assert!(p.insert(&rec).is_err());
        // A small record may still fit.
        assert!(p.fits(1) == p.insert(b"x").is_ok());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        let too_big = vec![0u8; Page::max_record_size() + 1];
        assert!(matches!(p.insert(&too_big), Err(StorageError::RecordTooLarge { .. })));
        let exactly = vec![1u8; Page::max_record_size()];
        assert!(p.insert(&exactly).is_ok());
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        p.insert(b"me too").unwrap();
        p.delete(0);
        let restored = Page::from_bytes(0, p.bytes().as_slice()).unwrap();
        assert!(restored.get(0).is_none());
        assert_eq!(restored.get(1), Some(&b"me too"[..]));
    }

    #[test]
    fn from_bytes_validates() {
        assert!(Page::from_bytes(0, &[0u8; 16]).is_err());
        let mut bad = vec![0u8; PAGE_SIZE];
        bad[0] = 0xff; // slot_count huge
        bad[1] = 0xff;
        bad[2] = 0x10; // free_space_end small
        assert!(Page::from_bytes(0, &bad).is_err());
    }

    #[test]
    fn compact_reclaims_dead_space() {
        let mut p = Page::new();
        let a = p.insert(&[1u8; 1000]).unwrap();
        let b = p.insert(&[2u8; 1000]).unwrap();
        let c = p.insert(&[3u8; 1000]).unwrap();
        p.delete(b);
        assert_eq!(p.dead_bytes(), 1000);
        let before_free = p.free_space();
        let reclaimed = p.compact();
        assert_eq!(reclaimed, 1000);
        assert_eq!(p.free_space(), before_free + 1000);
        // Live records intact, same slots; tombstone preserved.
        assert_eq!(p.get(a), Some(&[1u8; 1000][..]));
        assert_eq!(p.get(c), Some(&[3u8; 1000][..]));
        assert!(p.get(b).is_none());
        // Idempotent.
        assert_eq!(p.compact(), 0);
        assert_eq!(p.dead_bytes(), 0);
    }

    #[test]
    fn compact_then_insert_reuses_space() {
        let mut p = Page::new();
        let big = vec![7u8; 3000];
        p.insert(&big).unwrap();
        let victim = p.insert(&big).unwrap();
        while p.fits(big.len()) {
            p.insert(&big).unwrap();
        }
        assert!(!p.fits(big.len()));
        p.delete(victim);
        assert!(!p.fits(big.len()), "space not reusable until compaction");
        p.compact();
        assert!(p.fits(big.len()));
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s), Some(big.as_slice()));
    }

    proptest! {
        #[test]
        fn compact_preserves_live_records(
            sizes in prop::collection::vec(1usize..400, 1..24),
            delete_mask in prop::collection::vec(any::<bool>(), 24),
        ) {
            let mut p = Page::new();
            let mut slots = Vec::new();
            for (i, sz) in sizes.iter().enumerate() {
                let rec = vec![(i % 251) as u8; *sz];
                if p.fits(*sz) {
                    slots.push((p.insert(&rec).unwrap(), rec));
                }
            }
            let mut expected: Vec<(u16, Option<Vec<u8>>)> = Vec::new();
            for (i, (slot, rec)) in slots.iter().enumerate() {
                if delete_mask.get(i).copied().unwrap_or(false) {
                    p.delete(*slot);
                    expected.push((*slot, None));
                } else {
                    expected.push((*slot, Some(rec.clone())));
                }
            }
            p.compact();
            for (slot, rec) in &expected {
                prop_assert_eq!(p.get(*slot), rec.as_deref());
            }
        }

        #[test]
        fn inserted_records_round_trip(records in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..64), 0..40)) {
            let mut p = Page::new();
            let mut stored = Vec::new();
            for r in &records {
                if p.fits(r.len()) {
                    let s = p.insert(r).unwrap();
                    stored.push((s, r.clone()));
                }
            }
            for (s, r) in &stored {
                prop_assert_eq!(p.get(*s), Some(r.as_slice()));
            }
            // Round-trip through bytes preserves everything.
            let restored = Page::from_bytes(0, p.bytes().as_slice()).unwrap();
            for (s, r) in &stored {
                prop_assert_eq!(restored.get(*s), Some(r.as_slice()));
            }
        }

        #[test]
        fn free_space_never_negative(sizes in prop::collection::vec(1usize..512, 0..64)) {
            let mut p = Page::new();
            for sz in sizes {
                let rec = vec![0u8; sz];
                if p.fits(sz) {
                    p.insert(&rec).unwrap();
                }
                prop_assert!(p.free_space() <= PAGE_SIZE);
            }
        }
    }
}
