//! Storage error types.

use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// The requested page does not exist on the disk manager.
    PageNotFound(u64),
    /// Every frame in the buffer pool is pinned; nothing can be evicted.
    BufferPoolFull,
    /// A record does not fit into a single page.
    RecordTooLarge {
        /// The record's payload size in bytes.
        size: usize,
        /// Maximum payload a fresh page accepts.
        max: usize,
    },
    /// The requested record id does not exist (or was never written).
    RecordNotFound {
        /// Page containing the slot.
        page: u64,
        /// Slot index within the page.
        slot: u16,
    },
    /// Page bytes failed structural validation when loaded.
    CorruptPage(u64, &'static str),
    /// An underlying I/O failure (file-backed disk manager only).
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PageNotFound(id) => write!(f, "page {id} not found"),
            Self::BufferPoolFull => write!(f, "buffer pool full: all frames pinned"),
            Self::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            Self::RecordNotFound { page, slot } => {
                write!(f, "record (page {page}, slot {slot}) not found")
            }
            Self::CorruptPage(id, why) => write!(f, "page {id} corrupt: {why}"),
            Self::Io(e) => write!(f, "storage I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(StorageError::PageNotFound(7).to_string(), "page 7 not found");
        assert!(StorageError::BufferPoolFull.to_string().contains("pinned"));
        let e = StorageError::RecordTooLarge { size: 9000, max: 8100 };
        assert!(e.to_string().contains("9000"));
        let e = StorageError::RecordNotFound { page: 1, slot: 2 };
        assert!(e.to_string().contains("slot 2"));
    }

    #[test]
    fn io_error_wraps() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
