//! Disk managers: whole-page persistence behind the buffer pool.
//!
//! The buffer pool reads and writes whole pages through the
//! [`DiskManager`] trait. Two implementations are provided:
//!
//! * [`InMemoryDisk`] — pages held in a `Vec`; the default for experiments
//!   (a real disk would only add noise to the buffer-hit-ratio measurements
//!   the paper's Figure 8 cares about, and the miss *count* is what our
//!   cost model consumes);
//! * [`FileDisk`] — pages in a real file via positioned reads/writes, for
//!   datasets larger than memory and for persistence tests.
//!
//! Both count physical reads and writes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Whole-page storage behind the buffer pool.
pub trait DiskManager: Send + Sync {
    /// Allocate a fresh page id (the page is materialized on first write).
    fn allocate(&self) -> PageId;

    /// Read a page.
    fn read(&self, id: PageId) -> StorageResult<Page>;

    /// Write a page.
    fn write(&self, id: PageId, page: &Page) -> StorageResult<()>;

    /// Number of pages allocated so far.
    fn num_pages(&self) -> u64;

    /// Physical reads performed.
    fn reads(&self) -> u64;

    /// Physical writes performed.
    fn writes(&self) -> u64;
}

/// Pages kept in memory. Reads clone the stored page (the buffer pool holds
/// its own frame copy, as it would with real I/O).
pub struct InMemoryDisk {
    pages: Mutex<Vec<Option<Page>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Default for InMemoryDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryDisk {
    /// Empty in-memory disk.
    pub fn new() -> Self {
        Self { pages: Mutex::new(Vec::new()), reads: AtomicU64::new(0), writes: AtomicU64::new(0) }
    }
}

impl DiskManager for InMemoryDisk {
    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        pages.push(None);
        (pages.len() - 1) as PageId
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.lock();
        match pages.get(id as usize) {
            Some(Some(p)) => Ok(p.clone()),
            // Allocated but never written: hand back an empty page, exactly
            // like reading zeroed file space.
            Some(None) => Ok(Page::new()),
            None => Err(StorageError::PageNotFound(id)),
        }
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.lock();
        match pages.get_mut(id as usize) {
            Some(slot) => {
                *slot = Some(page.clone());
                Ok(())
            }
            None => Err(StorageError::PageNotFound(id)),
        }
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// Pages stored in a single file at `id * PAGE_SIZE` offsets.
pub struct FileDisk {
    file: Mutex<File>,
    next_page: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FileDisk {
    /// Create (or truncate) a database file.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self {
            file: Mutex::new(file),
            next_page: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Open an existing database file; page count is derived from its
    /// length.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file: Mutex::new(file),
            next_page: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }
}

impl DiskManager for FileDisk {
    fn allocate(&self) -> PageId {
        self.next_page.fetch_add(1, Ordering::SeqCst)
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        if id >= self.next_page.load(Ordering::SeqCst) {
            return Err(StorageError::PageNotFound(id));
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        let offset = id * PAGE_SIZE as u64;
        let file_len = file.metadata()?.len();
        if offset >= file_len {
            // Allocated but never written.
            return Ok(Page::new());
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_exact(&mut buf)?;
        Page::from_bytes(id, &buf)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        if id >= self.next_page.load(Ordering::SeqCst) {
            return Err(StorageError::PageNotFound(id));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(page.bytes().as_slice())?;
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.next_page.load(Ordering::SeqCst)
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let id0 = disk.allocate();
        let id1 = disk.allocate();
        assert_ne!(id0, id1);
        assert_eq!(disk.num_pages(), 2);

        let mut p = Page::new();
        p.insert(b"record one").unwrap();
        disk.write(id0, &p).unwrap();

        let back = disk.read(id0).unwrap();
        assert_eq!(back.get(0), Some(&b"record one"[..]));

        // Allocated-but-unwritten pages read as empty.
        let empty = disk.read(id1).unwrap();
        assert_eq!(empty.slot_count(), 0);

        // Out-of-range access fails.
        assert!(disk.read(999).is_err());
        assert!(disk.write(999, &p).is_err());

        assert!(disk.reads() >= 2);
        assert!(disk.writes() >= 1);
    }

    #[test]
    fn in_memory_roundtrip() {
        roundtrip(&InMemoryDisk::new());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fuzzydedup-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.db");
        roundtrip(&FileDisk::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("fuzzydedup-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.db");
        {
            let disk = FileDisk::create(&path).unwrap();
            let id = disk.allocate();
            let mut p = Page::new();
            p.insert(b"durable").unwrap();
            disk.write(id, &p).unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.num_pages(), 1);
            let p = disk.read(0).unwrap();
            assert_eq!(p.get(0), Some(&b"durable"[..]));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_clones_do_not_alias() {
        let disk = InMemoryDisk::new();
        let id = disk.allocate();
        let mut p = Page::new();
        p.insert(b"v1").unwrap();
        disk.write(id, &p).unwrap();
        let mut copy = disk.read(id).unwrap();
        copy.insert(b"local only").unwrap();
        let fresh = disk.read(id).unwrap();
        assert_eq!(fresh.slot_count(), 1, "mutating a read copy must not leak to disk");
    }
}
