//! Buffer pool: fixed set of page frames with replacement and statistics.
//!
//! The pool is the centerpiece of the Figure-8 reproduction: the paper's
//! breadth-first lookup order wins *because* consecutive nearest-neighbor
//! lookups touch the same index pages, raising the database buffer hit
//! ratio. [`BufferStats`] exposes hits, misses, evictions and dirty
//! write-backs; the experiment drivers derive "buffer hit ratio",
//! "processor usage" (useful-work fraction under a fixed page-miss stall
//! cost) and lookup throughput from them.
//!
//! Access is closure-based ([`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`]): the page is pinned for the duration of
//! the closure and unpinned afterwards, which makes pin leaks impossible in
//! safe code. Replacement is LRU (via an ordered recency index, `O(log n)`
//! per access) or Clock (second chance, `O(1)` amortized).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Replacement policy for the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used unpinned frame.
    #[default]
    Lru,
    /// Clock / second-chance.
    Clock,
}

/// Buffer pool configuration.
#[derive(Debug, Clone)]
pub struct BufferPoolConfig {
    /// Number of page frames.
    pub capacity: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl BufferPoolConfig {
    /// Capacity given as a memory budget in bytes (rounded down to whole
    /// pages, minimum one frame). `BufferPoolConfig::with_memory(32 << 20)`
    /// models the paper's "32MB" database buffer.
    pub fn with_memory(bytes: usize) -> Self {
        Self { capacity: (bytes / PAGE_SIZE).max(1), policy: ReplacementPolicy::Lru }
    }

    /// Capacity in frames.
    pub fn with_capacity(frames: usize) -> Self {
        Self { capacity: frames.max(1), policy: ReplacementPolicy::Lru }
    }

    /// Select a replacement policy.
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Cumulative buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back to disk on eviction or flush.
    pub writebacks: u64,
}

impl BufferStats {
    /// Total page requests.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; `0` when no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page_id: Option<PageId>,
    page: Page,
    dirty: bool,
    pins: u32,
    /// LRU recency tick (key into `lru_index`).
    tick: u64,
    /// Clock reference bit.
    referenced: bool,
}

struct Inner {
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    /// tick -> frame index, for O(log n) LRU victim selection.
    lru_index: BTreeMap<u64, usize>,
    clock_hand: usize,
    next_tick: u64,
}

/// A fixed-capacity pool of page frames over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    inner: Mutex<Inner>,
    policy: ReplacementPolicy,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Create a pool over a disk manager.
    pub fn new(config: BufferPoolConfig, disk: Arc<dyn DiskManager>) -> Self {
        let frames = (0..config.capacity)
            .map(|_| Frame {
                page_id: None,
                page: Page::new(),
                dirty: false,
                pins: 0,
                tick: 0,
                referenced: false,
            })
            .collect();
        Self {
            disk,
            inner: Mutex::new(Inner {
                frames,
                page_table: HashMap::new(),
                lru_index: BTreeMap::new(),
                clock_hand: 0,
                next_tick: 1,
            }),
            policy: config.policy,
            capacity: config.capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate a fresh page on the backing disk.
    pub fn allocate_page(&self) -> PageId {
        self.disk.allocate()
    }

    /// Snapshot of the cumulative statistics.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Reset the statistics (frame contents are untouched), e.g. between a
    /// warm-up phase and a measured phase.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    /// Run `f` with shared access to a page, pinning it for the duration.
    ///
    /// The pool latch is held while `f` runs: `f` must not call back into
    /// this pool (use [`crate::heap::HeapFile::scan`]-style copy-out when a
    /// visitor needs to perform further storage operations).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let idx = self.fetch(&mut inner, id)?;
        inner.frames[idx].pins += 1;
        // The pool lock is held across `f`; all consumers in this workspace
        // perform short, CPU-only work inside the closure.
        let result = f(&inner.frames[idx].page);
        inner.frames[idx].pins -= 1;
        Ok(result)
    }

    /// Run `f` with exclusive access to a page, marking it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let idx = self.fetch(&mut inner, id)?;
        inner.frames[idx].pins += 1;
        inner.frames[idx].dirty = true;
        let result = f(&mut inner.frames[idx].page);
        inner.frames[idx].pins -= 1;
        Ok(result)
    }

    /// Write all dirty frames back to disk.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].dirty {
                if let Some(pid) = inner.frames[idx].page_id {
                    self.disk.write(pid, &inner.frames[idx].page)?;
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                    inner.frames[idx].dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().page_table.len()
    }

    fn touch(&self, inner: &mut Inner, idx: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                let old_tick = inner.frames[idx].tick;
                if old_tick != 0 {
                    inner.lru_index.remove(&old_tick);
                }
                let tick = inner.next_tick;
                inner.next_tick += 1;
                inner.frames[idx].tick = tick;
                inner.lru_index.insert(tick, idx);
            }
            ReplacementPolicy::Clock => {
                inner.frames[idx].referenced = true;
            }
        }
    }

    fn fetch(&self, inner: &mut Inner, id: PageId) -> StorageResult<usize> {
        if let Some(&idx) = inner.page_table.get(&id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(inner, idx);
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.find_victim(inner)?;
        // Write back the evicted page if needed.
        if let Some(old_id) = inner.frames[idx].page_id.take() {
            inner.page_table.remove(&old_id);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if inner.frames[idx].dirty {
                self.disk.write(old_id, &inner.frames[idx].page)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        let page = self.disk.read(id)?;
        let frame = &mut inner.frames[idx];
        frame.page = page;
        frame.page_id = Some(id);
        frame.dirty = false;
        inner.page_table.insert(id, idx);
        self.touch(inner, idx);
        Ok(idx)
    }

    fn find_victim(&self, inner: &mut Inner) -> StorageResult<usize> {
        // Prefer a frame that has never held a page.
        if let Some(idx) = inner.frames.iter().position(|f| f.page_id.is_none()) {
            return Ok(idx);
        }
        match self.policy {
            ReplacementPolicy::Lru => {
                let victim = inner
                    .lru_index
                    .iter()
                    .map(|(&tick, &idx)| (tick, idx))
                    .find(|&(_, idx)| inner.frames[idx].pins == 0);
                match victim {
                    Some((tick, idx)) => {
                        inner.lru_index.remove(&tick);
                        inner.frames[idx].tick = 0;
                        Ok(idx)
                    }
                    None => Err(StorageError::BufferPoolFull),
                }
            }
            ReplacementPolicy::Clock => {
                let n = inner.frames.len();
                // Two sweeps: the first clears reference bits, the second
                // must find a victim unless everything is pinned.
                for _ in 0..2 * n {
                    let idx = inner.clock_hand;
                    inner.clock_hand = (inner.clock_hand + 1) % n;
                    let frame = &mut inner.frames[idx];
                    if frame.pins > 0 {
                        continue;
                    }
                    if frame.referenced {
                        frame.referenced = false;
                    } else {
                        return Ok(idx);
                    }
                }
                Err(StorageError::BufferPoolFull)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn pool(capacity: usize, policy: ReplacementPolicy) -> BufferPool {
        let disk = Arc::new(InMemoryDisk::new());
        BufferPool::new(BufferPoolConfig { capacity, policy }, disk)
    }

    fn write_marker(pool: &BufferPool, id: PageId, marker: u8) {
        pool.with_page_mut(id, |p| {
            p.insert(&[marker]).unwrap();
        })
        .unwrap();
    }

    fn read_marker(pool: &BufferPool, id: PageId) -> u8 {
        pool.with_page(id, |p| p.get(0).unwrap()[0]).unwrap()
    }

    #[test]
    fn pages_survive_eviction() {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Clock] {
            let pool = pool(2, policy);
            let ids: Vec<PageId> = (0..5).map(|_| pool.allocate_page()).collect();
            for (i, &id) in ids.iter().enumerate() {
                write_marker(&pool, id, i as u8);
            }
            // Only 2 frames: earlier pages were evicted and written back.
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(read_marker(&pool, id), i as u8, "policy {policy:?}");
            }
            let stats = pool.stats();
            assert!(stats.evictions > 0);
            assert!(stats.writebacks > 0);
        }
    }

    #[test]
    fn hit_when_resident() {
        let pool = pool(4, ReplacementPolicy::Lru);
        let id = pool.allocate_page();
        write_marker(&pool, id, 1);
        pool.reset_stats();
        for _ in 0..10 {
            read_marker(&pool, id);
        }
        let stats = pool.stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hit_ratio(), 1.0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = pool(2, ReplacementPolicy::Lru);
        let a = pool.allocate_page();
        let b = pool.allocate_page();
        let c = pool.allocate_page();
        write_marker(&pool, a, 0);
        write_marker(&pool, b, 1);
        read_marker(&pool, a); // a is now the most recent
        write_marker(&pool, c, 2); // evicts b
        pool.reset_stats();
        read_marker(&pool, a);
        read_marker(&pool, c);
        let stats = pool.stats();
        assert_eq!(stats.misses, 0, "a and c should be resident");
        read_marker(&pool, b);
        assert_eq!(pool.stats().misses, 1, "b was the LRU victim");
    }

    #[test]
    fn locality_beats_random_access() {
        // The core phenomenon behind Figure 8: sequentially-local access
        // patterns enjoy a far higher hit ratio than scattered ones.
        let pool_local = pool(8, ReplacementPolicy::Lru);
        let ids: Vec<PageId> = (0..64).map(|_| pool_local.allocate_page()).collect();
        for &id in &ids {
            write_marker(&pool_local, id, 0);
        }
        pool_local.reset_stats();
        // Local: dwell on a window of 4 pages at a time.
        for w in ids.chunks(4) {
            for _ in 0..8 {
                for &id in w {
                    read_marker(&pool_local, id);
                }
            }
        }
        let local_ratio = pool_local.stats().hit_ratio();

        let pool_rand = pool(8, ReplacementPolicy::Lru);
        let ids2: Vec<PageId> = (0..64).map(|_| pool_rand.allocate_page()).collect();
        for &id in &ids2 {
            write_marker(&pool_rand, id, 0);
        }
        pool_rand.reset_stats();
        // Scattered: stride through all pages repeatedly.
        for round in 0..32 {
            for (i, _) in ids2.iter().enumerate() {
                let id = ids2[(i * 17 + round * 7) % ids2.len()];
                read_marker(&pool_rand, id);
            }
        }
        let rand_ratio = pool_rand.stats().hit_ratio();
        assert!(
            local_ratio > rand_ratio + 0.2,
            "local {local_ratio:.3} should beat random {rand_ratio:.3}"
        );
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = BufferPool::new(BufferPoolConfig::with_capacity(4), disk.clone());
        let id = pool.allocate_page();
        write_marker(&pool, id, 42);
        assert_eq!(disk.writes(), 0, "write should be buffered");
        pool.flush_all().unwrap();
        assert_eq!(disk.writes(), 1);
        // Direct disk read sees the flushed content.
        let p = disk.read(id).unwrap();
        assert_eq!(p.get(0), Some(&[42u8][..]));
        // Flushing again is a no-op (page now clean).
        pool.flush_all().unwrap();
        assert_eq!(disk.writes(), 1);
    }

    #[test]
    fn with_memory_config() {
        let cfg = BufferPoolConfig::with_memory(32 << 20);
        assert_eq!(cfg.capacity, (32 << 20) / PAGE_SIZE);
        let tiny = BufferPoolConfig::with_memory(1);
        assert_eq!(tiny.capacity, 1, "minimum one frame");
    }

    #[test]
    fn capacity_one_pool_works() {
        let pool = pool(1, ReplacementPolicy::Lru);
        let a = pool.allocate_page();
        let b = pool.allocate_page();
        write_marker(&pool, a, 1);
        write_marker(&pool, b, 2);
        assert_eq!(read_marker(&pool, a), 1);
        assert_eq!(read_marker(&pool, b), 2);
    }

    #[test]
    fn clock_policy_second_chance() {
        let pool = pool(3, ReplacementPolicy::Clock);
        let ids: Vec<PageId> = (0..6).map(|_| pool.allocate_page()).collect();
        for (i, &id) in ids.iter().enumerate() {
            write_marker(&pool, id, i as u8);
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(read_marker(&pool, id), i as u8);
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let pool = pool(2, ReplacementPolicy::Lru);
        let id = pool.allocate_page();
        write_marker(&pool, id, 0);
        assert!(pool.stats().accesses() > 0);
        pool.reset_stats();
        assert_eq!(pool.stats(), BufferStats::default());
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn resident_pages_tracks_occupancy() {
        let pool = pool(4, ReplacementPolicy::Lru);
        assert_eq!(pool.resident_pages(), 0);
        let ids: Vec<PageId> = (0..6).map(|_| pool.allocate_page()).collect();
        for &id in &ids {
            write_marker(&pool, id, 0);
        }
        assert_eq!(pool.resident_pages(), 4, "occupancy capped at capacity");
    }
}
