//! Heap files: unordered record storage over the buffer pool.
//!
//! A [`HeapFile`] owns a growing list of pages and appends records to the
//! last page with room, allocating new pages as needed. Records are
//! addressed by stable [`RecordId`]s (page, slot) and iterated in storage
//! order. This is the physical representation behind the `relation` crate's
//! tables (`NN_Reln`, `CSPairs`, and the input relations themselves).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};

/// Stable address of a record: (page, slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Construct a record id.
    pub fn new(page: PageId, slot: u16) -> Self {
        Self { page, slot }
    }
}

/// An unordered file of variable-length records.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Mutex<Vec<PageId>>,
    records: Mutex<u64>,
}

impl HeapFile {
    /// Create an empty heap file on a buffer pool.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        Self { pool, pages: Mutex::new(Vec::new()), records: Mutex::new(0) }
    }

    /// The buffer pool backing this file.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of live records ever inserted minus deletions.
    pub fn len(&self) -> u64 {
        *self.records.lock()
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages allocated by this file.
    pub fn num_pages(&self) -> usize {
        self.pages.lock().len()
    }

    /// Append a record, returning its id.
    pub fn insert(&self, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() > Page::max_record_size() {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: Page::max_record_size(),
            });
        }
        let mut pages = self.pages.lock();
        // Try the last page first (append workload).
        if let Some(&last) = pages.last() {
            let slot = self.pool.with_page_mut(last, |p| {
                if p.fits(record.len()) {
                    Some(p.insert(record).expect("fits was checked"))
                } else {
                    None
                }
            })?;
            if let Some(slot) = slot {
                *self.records.lock() += 1;
                return Ok(RecordId::new(last, slot));
            }
        }
        // Allocate a fresh page.
        let page_id = self.pool.allocate_page();
        pages.push(page_id);
        let slot =
            self.pool.with_page_mut(page_id, |p| p.insert(record).expect("empty page must fit"))?;
        *self.records.lock() += 1;
        Ok(RecordId::new(page_id, slot))
    }

    /// Read a record by id into an owned buffer.
    pub fn get(&self, id: RecordId) -> StorageResult<Vec<u8>> {
        let found = self.pool.with_page(id.page, |p| p.get(id.slot).map(<[u8]>::to_vec))?;
        found.ok_or(StorageError::RecordNotFound { page: id.page, slot: id.slot })
    }

    /// Delete a record. Returns whether a live record was removed.
    pub fn delete(&self, id: RecordId) -> StorageResult<bool> {
        let deleted = self.pool.with_page_mut(id.page, |p| p.delete(id.slot))?;
        if deleted {
            *self.records.lock() -= 1;
        }
        Ok(deleted)
    }

    /// Visit every live record in storage order. The callback receives the
    /// record id and payload.
    ///
    /// Each page's records are copied out of the buffer frame *before* the
    /// callback runs, so the callback is free to perform further storage
    /// operations (insert into another table on the same pool, nested
    /// scans, ...) without deadlocking on the pool latch.
    pub fn scan(&self, mut visit: impl FnMut(RecordId, &[u8])) -> StorageResult<()> {
        let pages = self.pages.lock().clone();
        let mut batch: Vec<(u16, Vec<u8>)> = Vec::new();
        for page_id in pages {
            batch.clear();
            self.pool.with_page(page_id, |p| {
                for (slot, rec) in p.records() {
                    batch.push((slot, rec.to_vec()));
                }
            })?;
            for (slot, rec) in &batch {
                visit(RecordId::new(page_id, *slot), rec);
            }
        }
        Ok(())
    }

    /// Compact every page, reclaiming the payload space of deleted
    /// records. `RecordId`s of live records remain valid. Returns total
    /// bytes reclaimed.
    pub fn vacuum(&self) -> StorageResult<usize> {
        let pages = self.pages.lock().clone();
        let mut reclaimed = 0;
        for page_id in pages {
            reclaimed += self.pool.with_page_mut(page_id, |p| p.compact())?;
        }
        Ok(reclaimed)
    }

    /// Collect all live records into memory (convenience for tests and for
    /// sort-run generation).
    pub fn read_all(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.scan(|id, rec| out.push((id, rec.to_vec())))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPoolConfig;
    use crate::disk::InMemoryDisk;

    fn heap(frames: usize) -> HeapFile {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(frames), disk));
        HeapFile::create(pool)
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap(4);
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap(), b"beta");
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    fn spills_to_multiple_pages() {
        let h = heap(2);
        let rec = vec![9u8; 2000];
        let ids: Vec<RecordId> = (0..20).map(|_| h.insert(&rec).unwrap()).collect();
        assert!(h.num_pages() > 1);
        assert_eq!(h.len(), 20);
        for id in ids {
            assert_eq!(h.get(id).unwrap(), rec);
        }
    }

    #[test]
    fn scan_visits_in_storage_order() {
        let h = heap(4);
        for i in 0..50u8 {
            h.insert(&[i]).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|_, rec| seen.push(rec[0])).unwrap();
        assert_eq!(seen, (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn delete_removes_from_scan() {
        let h = heap(4);
        let a = h.insert(b"keep").unwrap();
        let b = h.insert(b"drop").unwrap();
        assert!(h.delete(b).unwrap());
        assert!(!h.delete(b).unwrap());
        assert_eq!(h.len(), 1);
        assert!(h.get(b).is_err());
        assert_eq!(h.get(a).unwrap(), b"keep");
        let all = h.read_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, b"keep");
    }

    #[test]
    fn records_survive_buffer_pressure() {
        // More pages than frames: records must round-trip through disk.
        let h = heap(1);
        let mut ids = Vec::new();
        for i in 0..30u32 {
            let rec = i.to_le_bytes().repeat(300); // 1200 bytes
            ids.push((h.insert(&rec).unwrap(), rec));
        }
        assert!(h.num_pages() > 3);
        for (id, rec) in &ids {
            assert_eq!(&h.get(*id).unwrap(), rec);
        }
    }

    #[test]
    fn oversized_record_rejected() {
        let h = heap(2);
        let too_big = vec![0u8; crate::page::PAGE_SIZE];
        assert!(h.insert(&too_big).is_err());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn vacuum_reclaims_and_preserves() {
        let h = heap(2);
        let rec = vec![5u8; 1500];
        let ids: Vec<RecordId> = (0..12).map(|_| h.insert(&rec).unwrap()).collect();
        for id in ids.iter().step_by(2) {
            h.delete(*id).unwrap();
        }
        let reclaimed = h.vacuum().unwrap();
        assert_eq!(reclaimed, 6 * 1500);
        assert_eq!(h.len(), 6);
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(h.get(*id).is_err());
            } else {
                assert_eq!(h.get(*id).unwrap(), rec);
            }
        }
        // Second vacuum is a no-op.
        assert_eq!(h.vacuum().unwrap(), 0);
    }

    #[test]
    fn empty_scan_is_fine() {
        let h = heap(2);
        let mut count = 0;
        h.scan(|_, _| count += 1).unwrap();
        assert_eq!(count, 0);
        assert!(h.read_all().unwrap().is_empty());
    }
}
