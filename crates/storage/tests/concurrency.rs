//! Concurrency stress tests: the buffer pool and heap files are shared
//! across Phase-1 worker threads (see `fuzzydedup-core::parallel`), so
//! they must stay consistent under contention.

use std::sync::Arc;

use fuzzydedup_storage::{BufferPool, BufferPoolConfig, HeapFile, InMemoryDisk, ReplacementPolicy};

#[test]
fn concurrent_readers_see_consistent_pages() {
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Clock] {
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig { capacity: 8, policy },
            Arc::new(InMemoryDisk::new()),
        ));
        // 64 pages, each stamped with its index.
        let ids: Vec<_> = (0..64u64)
            .map(|i| {
                let id = pool.allocate_page();
                pool.with_page_mut(id, |p| {
                    p.insert(&i.to_le_bytes()).unwrap();
                })
                .unwrap();
                (id, i)
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..8 {
                let pool = pool.clone();
                let ids = ids.clone();
                scope.spawn(move || {
                    for round in 0..200 {
                        let (id, stamp) = ids[(t * 31 + round * 7) % ids.len()];
                        let got = pool
                            .with_page(id, |p| {
                                u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap())
                            })
                            .unwrap();
                        assert_eq!(got, stamp, "policy {policy:?}");
                    }
                });
            }
        });
        let stats = pool.stats();
        // One access per setup write + one per read.
        assert_eq!(stats.accesses(), 64 + 8 * 200);
    }
}

#[test]
fn concurrent_heap_inserts_preserve_every_record() {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(6),
        Arc::new(InMemoryDisk::new()),
    ));
    let heap = Arc::new(HeapFile::create(pool));
    let per_thread = 250usize;
    std::thread::scope(|scope| {
        for t in 0..4u8 {
            let heap = heap.clone();
            scope.spawn(move || {
                for i in 0..per_thread {
                    let payload = format!("thread {t} record {i} {}", "x".repeat(50));
                    heap.insert(payload.as_bytes()).unwrap();
                }
            });
        }
    });
    assert_eq!(heap.len(), 4 * per_thread as u64);
    // Every record decodable and attributed to its writer.
    let mut counts = [0usize; 4];
    heap.scan(|_, rec| {
        let text = std::str::from_utf8(rec).unwrap();
        let t: usize = text
            .strip_prefix("thread ")
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        counts[t] += 1;
    })
    .unwrap();
    assert!(counts.iter().all(|&c| c == per_thread), "{counts:?}");
}

#[test]
fn mixed_read_write_workload() {
    let pool = Arc::new(BufferPool::new(
        BufferPoolConfig::with_capacity(4),
        Arc::new(InMemoryDisk::new()),
    ));
    let heap = Arc::new(HeapFile::create(pool.clone()));
    // Seed records.
    let seeded: Vec<_> = (0..100u32).map(|i| heap.insert(&i.to_le_bytes()).unwrap()).collect();
    std::thread::scope(|scope| {
        // Writers append.
        for _ in 0..2 {
            let heap = heap.clone();
            scope.spawn(move || {
                for i in 1000..1200u32 {
                    heap.insert(&i.to_le_bytes()).unwrap();
                }
            });
        }
        // Readers re-read the seeded records while writers churn frames.
        for t in 0..4usize {
            let heap = heap.clone();
            let seeded = seeded.clone();
            scope.spawn(move || {
                for round in 0..100 {
                    let idx = (t * 17 + round * 13) % seeded.len();
                    let bytes = heap.get(seeded[idx]).unwrap();
                    let v = u32::from_le_bytes(bytes.try_into().unwrap());
                    assert_eq!(v as usize, idx);
                }
            });
        }
    });
    assert_eq!(heap.len(), 100 + 2 * 200);
    pool.flush_all().unwrap();
}
