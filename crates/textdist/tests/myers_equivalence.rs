//! Property tests pinning the bit-parallel Myers kernel to the classic
//! dynamic-programming implementations it replaced (DESIGN.md, "kernel
//! selection ladder").
//!
//! Two oracles, both kept in `edit.rs` precisely for this purpose:
//! - `levenshtein_dp` — the full two-row DP, exact by construction;
//! - `levenshtein_banded` — the k-banded DP that the nnindex
//!   verification paths used before `myers_bounded` took over.
//!
//! Strings are drawn from a Unicode-heavy alphabet (ASCII + 2–3-byte
//! accents/CJK + a 4-byte astral emoji) at lengths 0–200, which crosses
//! the 64-char single-word boundary and exercises the blocked multi-word
//! path, the non-ASCII spill table, and common prefix/suffix stripping.

use fuzzydedup_textdist::{levenshtein_banded, levenshtein_bounded, levenshtein_dp, myers};
use proptest::prelude::*;

/// Mixed alphabet as a shim pattern: ASCII letters/digits, 2-byte
/// (`é` `ü` `ß` `ñ`), 3-byte CJK (`日` `本` `語`), and 4-byte `😀`, so
/// char-vs-byte confusion cannot hide.
const UNI: &str = "[a-z0-9éüßñ日本語😀]";

/// The same alphabet as a slice, for index-driven edits.
const UNI_CHARS: &[char] = &['a', 'b', 'z', '0', '9', 'é', 'ü', 'ß', 'ñ', '日', '本', '語', '😀'];

/// Perturb `s` into a near-duplicate so the pair is *correlated* — random
/// independent pairs are almost always at distance ≈ max(len), which never
/// exercises the interesting small-k region. Each edit is a
/// (position, alphabet-index) pair steering a substitute/insert/delete.
fn near_duplicate(s: &str, edits: &[(usize, usize)]) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    for &(pos, ci) in edits {
        let c = UNI_CHARS[ci % UNI_CHARS.len()];
        if chars.is_empty() {
            chars.push(c);
            continue;
        }
        let len = chars.len();
        match pos % 3 {
            0 => chars[pos % len] = c,
            1 => chars.insert(pos % (len + 1), c),
            _ => {
                chars.remove(pos % len);
            }
        }
    }
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tentpole equivalence: Myers (word + blocked paths, with stripping)
    /// computes exactly the DP edit distance on arbitrary Unicode input.
    #[test]
    fn myers_matches_dp(a in "[a-z0-9éüßñ日本語😀]{0,200}", b in "[a-z0-9éüßñ日本語😀]{0,200}") {
        prop_assert_eq!(myers(&a, &b), levenshtein_dp(&a, &b));
    }

    /// Same, on correlated near-duplicates (small true distance, long
    /// common prefixes/suffixes — the stripping fast path).
    #[test]
    fn myers_matches_dp_on_near_duplicates(
        a in "[a-z0-9éüßñ日本語😀]{0,200}",
        edits in prop::collection::vec((0usize..1000, 0usize..64), 0..6),
    ) {
        let b = near_duplicate(&a, &edits);
        prop_assert_eq!(myers(&a, &b), levenshtein_dp(&a, &b));
    }

    /// `levenshtein_bounded` (now Myers-backed) agrees with the banded-DP
    /// oracle on BOTH sides of the cutoff: identical `Some(d)` when the
    /// distance is within the bound, identical `None` when it is not.
    #[test]
    fn bounded_matches_banded_oracle(
        a in "[a-z0-9éüßñ日本語😀]{0,120}",
        edits in prop::collection::vec((0usize..1000, 0usize..64), 0..9),
        bound in 0usize..12,
    ) {
        let b = near_duplicate(&a, &edits);
        prop_assert_eq!(levenshtein_bounded(&a, &b, bound), levenshtein_banded(&a, &b, bound));
    }

    /// Bounded semantics are exactly "distance if ≤ k": tie the bounded
    /// result straight back to the unbounded DP truth.
    #[test]
    fn bounded_is_filtered_exact_distance(
        a in "[a-z0-9éüßñ日本語😀]{0,100}",
        b in "[a-z0-9éüßñ日本語😀]{0,100}",
        bound in 0usize..220,
    ) {
        let d = levenshtein_dp(&a, &b);
        let expect = (d <= bound).then_some(d);
        prop_assert_eq!(levenshtein_bounded(&a, &b, bound), expect);
    }

    /// Metric sanity carried over from the DP era: symmetry and the
    /// identity axiom hold for the Myers kernel too.
    #[test]
    fn myers_is_symmetric_and_zero_on_equal(
        a in "[a-z0-9éüßñ日本語😀]{0,150}",
        b in "[a-z0-9éüßñ日本語😀]{0,150}",
    ) {
        prop_assert_eq!(myers(&a, &b), myers(&b, &a));
        prop_assert_eq!(myers(&a, &a), 0);
    }
}

// Silence "unused const" if a refactor drops a use — UNI documents the
// pattern the literals above repeat (the shim needs `'static` literals).
const _: &str = UNI;

/// Deterministic spot checks at the word-size boundary with multibyte
/// chars — the exact seams the property tests rely on randomness to hit.
#[test]
fn word_boundary_with_multibyte_chars() {
    for m in [63usize, 64, 65, 127, 128, 129] {
        let a: String = "é".repeat(m);
        let mut b = a.clone();
        b.push('語');
        assert_eq!(myers(&a, &b), 1, "append at m={m}");
        assert_eq!(levenshtein_bounded(&a, &b, 1), Some(1), "bounded at m={m}");
        assert_eq!(levenshtein_bounded(&a, &b, 0), None, "cutoff at m={m}");
        // Substitution in the middle defeats prefix AND suffix stripping.
        let mut c: Vec<char> = a.chars().collect();
        c[m / 2] = '😀';
        let c: String = c.into_iter().collect();
        assert_eq!(myers(&a, &c), levenshtein_dp(&a, &c), "substitution at m={m}");
    }
}
