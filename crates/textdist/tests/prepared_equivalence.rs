//! Property tests pinning the prepared-query layer to the unprepared
//! [`Distance`] API it accelerates (DESIGN.md §7.5).
//!
//! For every built-in distance, compiling the query once via
//! [`Distance::prepare`] and evaluating candidates through
//! `Prepared::distance_bounded` must agree *bit-exactly* with the
//! per-call [`Distance::distance_bounded`] — and both must equal the
//! plain [`Distance::distance`] filtered at the cutoff. Cutoffs are
//! sampled on both sides of the true distance (including the exact
//! boundary), candidates include Unicode/multibyte text, and the edit
//! distance is driven across the 64-char word boundary so the blocked
//! Myers path and the prepare-time affix stripping are both exercised.

use fuzzydedup_textdist::{
    CosineDistance, Distance, EditDistance, FuzzyMatchDistance, IdfModel, JaccardDistance,
    JaroWinklerDistance, MongeElkanDistance, UnfilteredDistance,
};
use proptest::prelude::*;

/// Cutoffs straddling the true distance `d`: fixed grid points plus the
/// exact boundary and points just inside/outside it.
fn cutoffs(d: f64) -> Vec<f64> {
    vec![
        0.0,
        0.2,
        0.5,
        0.8,
        1.0,
        d,
        (d - 1e-9).max(0.0),
        (d + 1e-9).min(1.0),
        (d * 0.5).max(0.0),
        (d * 1.5).min(1.0),
    ]
}

/// Core equivalence check: one query prepared once, every candidate
/// evaluated at every cutoff through both paths.
fn assert_equivalent(dist: &dyn Distance, query: &[&str], candidates: &[Vec<&str>]) {
    let mut prepared = dist.prepare(query);
    for cand in candidates {
        let plain = dist.distance(query, cand);
        for cutoff in cutoffs(plain) {
            let bounded = dist.distance_bounded(query, cand, cutoff);
            let via_prepared = prepared.distance_bounded(cand, cutoff);
            assert_eq!(
                bounded,
                via_prepared,
                "{}: prepared != bounded at cutoff {cutoff} for {query:?} vs {cand:?}",
                dist.name()
            );
            let expect = (plain <= cutoff).then_some(plain);
            assert_eq!(
                bounded,
                expect,
                "{}: bounded != filtered distance at cutoff {cutoff} for {query:?} vs {cand:?}",
                dist.name()
            );
        }
    }
}

fn idf() -> IdfModel {
    IdfModel::fit_strings(&[
        "microsoft corp",
        "boeing corporation",
        "microsft corporation",
        "intel corp",
        "mic corporation",
        "golden dragon palace",
        "日本語 café",
    ])
}

/// Every built-in distance, boxed so one loop covers them all (and the
/// `Box<dyn Distance>` prepare forwarding with it).
fn all_distances() -> Vec<Box<dyn Distance>> {
    vec![
        Box::new(EditDistance),
        Box::new(CosineDistance::new(idf())),
        Box::new(FuzzyMatchDistance::new(idf())),
        Box::new(JaccardDistance::default()),
        Box::new(JaccardDistance::qgrams(3)),
        Box::new(JaroWinklerDistance),
        Box::new(MongeElkanDistance),
        Box::new(UnfilteredDistance(EditDistance)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole property: prepared ≡ bounded ≡ filtered-plain for every
    /// distance on arbitrary Unicode records.
    #[test]
    fn prepared_equals_unprepared(
        query in "[a-f0-9éüß日語 ]{0,40}",
        cands in prop::collection::vec("[a-f0-9éüß日語 ]{0,40}", 1..4),
    ) {
        let candidates: Vec<Vec<&str>> = cands.iter().map(|c| vec![c.as_str()]).collect();
        for dist in all_distances() {
            assert_equivalent(&dist, &[query.as_str()], &candidates);
        }
    }

    /// Long strings push edit distance onto the blocked (>64 char) Myers
    /// path; shared prefixes/suffixes of varying length exercise the
    /// prepare-time affix handling against per-call stripping.
    #[test]
    fn blocked_myers_prepared_equivalence(
        prefix in "[a-céü]{0,80}",
        qmid in "[a-f日語]{0,30}",
        cmid in "[a-f日語]{0,30}",
        suffix in "[a-céü]{0,80}",
    ) {
        let query = format!("{prefix}{qmid}{suffix}");
        let cand = format!("{prefix}{cmid}{suffix}");
        let dist = EditDistance;
        let candidates = vec![vec![cand.as_str()]];
        assert_equivalent(&dist, &[query.as_str()], &candidates);
    }

    /// Multi-field records must behave identically through both paths
    /// (field joining happens at prepare time for string distances).
    #[test]
    fn multi_field_prepared_equivalence(
        f1 in "[a-d é]{0,20}",
        f2 in "[a-d é]{0,20}",
        g1 in "[a-d é]{0,20}",
        g2 in "[a-d é]{0,20}",
    ) {
        let candidates = vec![vec![g1.as_str(), g2.as_str()]];
        for dist in all_distances() {
            assert_equivalent(&dist, &[f1.as_str(), f2.as_str()], &candidates);
        }
    }
}

/// Deterministic seams: empty records, identical records, and the exact
/// 63/64/65-char word boundary with multibyte chars and shared affixes.
#[test]
fn deterministic_boundary_cases() {
    let long_a = "é".repeat(70) + "golden dragon" + &"語".repeat(10);
    let long_b = "é".repeat(70) + "goldn dargon" + &"語".repeat(10);
    let b64 = "x".repeat(64);
    let b65 = "x".repeat(63) + "yz";
    let cases: Vec<(&str, &str)> = vec![
        ("", ""),
        ("", "abc"),
        ("abc", ""),
        ("golden dragon palace", "golden dragon palace"),
        ("microsoft corp", "microsft corporation"),
        (&long_a, &long_b),
        (&b64, &b65),
        ("日本語 café", "cafe 日本語"),
    ];
    for dist in all_distances() {
        for (q, c) in &cases {
            assert_equivalent(&dist, &[q], &[vec![*c]]);
        }
    }
}

/// One prepared query evaluated against many candidates in sequence —
/// internal scratch buffers must not leak state between candidates.
#[test]
fn prepared_reuse_across_candidates() {
    let cands = [
        "golden dragon palace",
        "",
        "golden dragon",
        "a much longer candidate string that exceeds sixty four characters in total length",
        "golden dragon palace",
        "日本語",
    ];
    for dist in all_distances() {
        let query = ["golden dragon palace"];
        let mut prepared = dist.prepare(&query);
        for c in cands {
            let expect = dist.distance_bounded(&query, &[c], 0.75);
            let got = prepared.distance_bounded(&[c], 0.75);
            assert_eq!(expect, got, "{}: reuse mismatch on {c:?}", dist.name());
        }
    }
}
