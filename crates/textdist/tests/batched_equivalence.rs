//! Property tests pinning the lock-step batched prepared path to the
//! scalar prepared path it accelerates (DESIGN.md §7.6).
//!
//! For every built-in distance, `Prepared::distance_bounded_batch` over a
//! candidate list must agree *bit-exactly*, slot for slot, with calling
//! `Prepared::distance_bounded` per candidate at the same cutoff — across
//! Unicode (including 4-byte supplementary-plane chars), >64-char blocked
//! patterns, cutoffs on both sides of the true distance, ragged final
//! batches, and batch size 1.

use fuzzydedup_textdist::{
    CosineDistance, Distance, EditDistance, FuzzyMatchDistance, IdfModel, JaccardDistance,
    JaroWinklerDistance, MongeElkanDistance, UnfilteredDistance,
};
use proptest::prelude::*;

fn idf() -> IdfModel {
    IdfModel::fit_strings(&[
        "microsoft corp",
        "boeing corporation",
        "microsft corporation",
        "intel corp",
        "mic corporation",
        "golden dragon palace",
        "日本語 café 🜁𝄞",
    ])
}

fn all_distances() -> Vec<Box<dyn Distance>> {
    vec![
        Box::new(EditDistance),
        Box::new(CosineDistance::new(idf())),
        Box::new(FuzzyMatchDistance::new(idf())),
        Box::new(JaccardDistance::default()),
        Box::new(JaccardDistance::qgrams(3)),
        Box::new(JaroWinklerDistance),
        Box::new(MongeElkanDistance),
        Box::new(UnfilteredDistance(EditDistance)),
    ]
}

/// Cutoff grid straddling every candidate's true distance, plus fixed
/// points — one shared cutoff per batch call, as the verification driver
/// issues them.
fn batch_cutoffs(dist: &dyn Distance, query: &[&str], candidates: &[Vec<&str>]) -> Vec<f64> {
    let mut cuts = vec![0.0, 0.2, 0.5, 0.8, 1.0];
    for cand in candidates {
        let fields: Vec<&str> = cand.to_vec();
        let d = dist.distance(query, &fields);
        cuts.extend([d, (d - 1e-9).max(0.0), (d + 1e-9).min(1.0)]);
    }
    cuts
}

/// Core check: batched results equal per-candidate scalar results — for
/// the whole list in one call and re-chunked at sizes 1 and 3 (ragged
/// final chunks included whenever `len % 3 != 0`).
fn assert_batch_equals_scalar(dist: &dyn Distance, query: &[&str], candidates: &[Vec<&str>]) {
    let cand_slices: Vec<&[&str]> = candidates.iter().map(Vec::as_slice).collect();
    let mut prepared = dist.prepare(query);
    let mut out = Vec::new();
    for cutoff in batch_cutoffs(dist, query, candidates) {
        let expected: Vec<Option<f64>> =
            cand_slices.iter().map(|c| prepared.distance_bounded(c, cutoff)).collect();
        for chunk_size in [candidates.len().max(1), 1, 3] {
            let mut got: Vec<Option<f64>> = Vec::new();
            for chunk in cand_slices.chunks(chunk_size) {
                prepared.distance_bounded_batch(chunk, cutoff, &mut out);
                got.extend_from_slice(&out);
            }
            assert_eq!(
                got,
                expected,
                "{}: batch(chunk={chunk_size}) != scalar at cutoff {cutoff} for {query:?} vs {candidates:?}",
                dist.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched ≡ scalar for every distance on arbitrary Unicode records,
    /// 4-byte supplementary-plane chars included.
    #[test]
    fn batched_equals_scalar(
        query in "[a-f0-9éüß日語🜁𝄞 ]{0,40}",
        cands in prop::collection::vec("[a-f0-9éüß日語🜁𝄞 ]{0,40}", 1..8),
    ) {
        let candidates: Vec<Vec<&str>> = cands.iter().map(|c| vec![c.as_str()]).collect();
        for dist in all_distances() {
            assert_batch_equals_scalar(&dist, &[query.as_str()], &candidates);
        }
    }

    /// Long strings push edit distance onto the blocked (>64 char) Myers
    /// path inside a batch whose other members may stay on the word path.
    #[test]
    fn batched_blocked_myers_equivalence(
        prefix in "[a-céü]{0,80}",
        mids in prop::collection::vec("[a-f日語𝄞]{0,30}", 1..6),
        suffix in "[a-céü]{0,80}",
    ) {
        let query = format!("{prefix}golden dragon{suffix}");
        let cands: Vec<String> =
            mids.iter().map(|m| format!("{prefix}{m}{suffix}")).collect();
        let candidates: Vec<Vec<&str>> = cands.iter().map(|c| vec![c.as_str()]).collect();
        assert_batch_equals_scalar(&EditDistance, &[query.as_str()], &candidates);
    }

    /// Multi-field candidates through the batch gather.
    #[test]
    fn batched_multi_field_equivalence(
        f1 in "[a-d é]{0,20}",
        f2 in "[a-d é]{0,20}",
        pairs in prop::collection::vec(("[a-d é]{0,20}", "[a-d é]{0,20}"), 1..5),
    ) {
        let candidates: Vec<Vec<&str>> =
            pairs.iter().map(|(g1, g2)| vec![g1.as_str(), g2.as_str()]).collect();
        for dist in all_distances() {
            assert_batch_equals_scalar(&dist, &[f1.as_str(), f2.as_str()], &candidates);
        }
    }
}

/// Deterministic seams: empty strings, identical records, the 63/64/65
/// word boundary, 4-byte chars, and a mixed batch that straddles the
/// word/blocked split so lane bucketing retires lanes at different
/// columns.
#[test]
fn deterministic_batch_boundary_cases() {
    let b63 = "x".repeat(63);
    let b64 = "x".repeat(64);
    let b65 = "x".repeat(63) + "yz";
    let long_uni = "é".repeat(70) + "golden dragon" + &"𝄞".repeat(10);
    let cands: Vec<Vec<&str>> = vec![
        vec![""],
        vec!["golden dragon palace"],
        vec!["golden dragon"],
        vec![&b63],
        vec![&b64],
        vec![&b65],
        vec![&long_uni],
        vec!["日本語 café 🜁"],
        vec!["microsft corporation"],
    ];
    for query in ["golden dragon palace", "", &b64, &long_uni] {
        for dist in all_distances() {
            assert_batch_equals_scalar(&dist, &[query], &cands);
        }
    }
}

/// An empty batch is a no-op that clears the output buffer.
#[test]
fn empty_batch_clears_output() {
    for dist in all_distances() {
        let mut prepared = dist.prepare(&["golden dragon"]);
        let mut out = vec![Some(0.5)];
        prepared.distance_bounded_batch(&[], 0.5, &mut out);
        assert!(out.is_empty(), "{}", dist.name());
    }
}
