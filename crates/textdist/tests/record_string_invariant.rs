//! Property backing the index-side normalized-record cache: every distance
//! reporting [`Distance::record_string_invariant`] must satisfy
//! `d(a, b) == d([record_string(a)], [record_string(b)])` — i.e. collapsing
//! a record's fields to its joined normalized string does not change the
//! distance. Verification paths exploit this to join + normalize each record
//! once at build time instead of once per candidate pair.

use fuzzydedup_textdist::{
    record_string, CompositeDistance, CosineDistance, Distance, EditDistance, FuzzyMatchDistance,
    IdfModel, JaccardDistance, JaroWinklerDistance, MongeElkanDistance,
};

fn corpus() -> Vec<Vec<String>> {
    [
        vec!["Acme Widgets Inc", "12 Main St", "Springfield", "IL", "62704"],
        vec!["ACME widgets, inc.", "12 Main Street", "Springfield", "IL", "62704"],
        vec!["Global Trans-Shipping", "Pier 9", "Oakland", "CA", "94607"],
        vec!["globel  transshipping", "pier 9", "oakland", "CA", "94607"],
        vec!["Müller & Söhne GmbH", "Hauptstraße 1", "Köln", "", "50667"],
        vec!["", "", "", "", ""],
        vec!["single"],
        vec!["a", "b", "c"],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(str::to_owned).collect())
    .collect()
}

fn check_invariant(d: &dyn Distance) {
    assert!(d.record_string_invariant(), "{} should be invariant", d.name());
    let records = corpus();
    for a in &records {
        for b in &records {
            let fa: Vec<&str> = a.iter().map(String::as_str).collect();
            let fb: Vec<&str> = b.iter().map(String::as_str).collect();
            let direct = d.distance(&fa, &fb);
            let ja = record_string(&fa);
            let jb = record_string(&fb);
            let joined = d.distance(&[ja.as_str()], &[jb.as_str()]);
            assert!(
                (direct - joined).abs() < 1e-12,
                "{}: d({a:?}, {b:?}) = {direct} but joined form gives {joined}",
                d.name()
            );
        }
    }
}

#[test]
fn whole_record_distances_are_record_string_invariant() {
    let idf = IdfModel::fit_records(&corpus());
    check_invariant(&EditDistance);
    check_invariant(&JaccardDistance::default());
    check_invariant(&JaccardDistance::qgrams(3));
    check_invariant(&JaroWinklerDistance);
    check_invariant(&MongeElkanDistance);
    check_invariant(&CosineDistance::new(idf.clone()));
    check_invariant(&FuzzyMatchDistance::new(idf));
}

#[test]
fn composite_distance_is_not_invariant() {
    // Field boundaries carry the weighting, so the joined form is a
    // different function — the flag must opt it out of the cache.
    assert!(!CompositeDistance::uniform(EditDistance).record_string_invariant());
}

#[test]
fn invariant_flag_survives_trait_object_and_reference() {
    let composite: Box<dyn Distance> = Box::new(CompositeDistance::uniform(EditDistance));
    assert!(!composite.record_string_invariant());
    assert!(!Distance::record_string_invariant(&&*composite));
    let edit: Box<dyn Distance> = Box::new(EditDistance);
    assert!(edit.record_string_invariant());
}
