//! Tokenization and string normalization.
//!
//! All distance functions in this crate operate on a shared normalized view
//! of the input: lowercase, punctuation mapped to spaces, whitespace
//! collapsed. This mirrors the preprocessing commonly applied before edit
//! distance / cosine similarity in data cleaning pipelines, and makes e.g.
//! `"AC DC"` and `"ac-dc"` tokenize identically.

/// A token: a maximal run of alphanumeric characters in the normalized
/// string, with its position (order matters for fms token alignment).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Normalized token text (lowercase).
    pub text: String,
    /// 0-based position of the token within its field.
    pub position: usize,
}

impl Token {
    /// Construct a token at a position.
    pub fn new(text: impl Into<String>, position: usize) -> Self {
        Self { text: text.into(), position }
    }
}

/// Normalize a string: lowercase, replace any non-alphanumeric character with
/// a space, and collapse runs of whitespace into a single space. Leading and
/// trailing whitespace is removed.
///
/// ```
/// use fuzzydedup_textdist::normalize;
/// assert_eq!(normalize("  The  Doors! "), "the doors");
/// assert_eq!(normalize("I'm Holdin' On"), "i m holdin on");
/// assert_eq!(normalize("AC/DC"), "ac dc");
/// ```
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lower in ch.to_lowercase() {
                out.push(lower);
            }
        } else {
            pending_space = true;
        }
    }
    out
}

/// Tokenize a string into normalized word tokens.
///
/// ```
/// use fuzzydedup_textdist::tokenize;
/// let toks = tokenize("Twian, Shania");
/// assert_eq!(toks.len(), 2);
/// assert_eq!(toks[0].text, "twian");
/// assert_eq!(toks[1].text, "shania");
/// ```
pub fn tokenize(s: &str) -> Vec<Token> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .enumerate()
        .map(|(i, t)| Token::new(t, i))
        .collect()
}

/// Tokenize a multi-attribute record into a flat token list. Token positions
/// restart per field but fields are kept in order; a `field` marker is not
/// needed by any consumer, so tokens are simply concatenated.
pub fn tokenize_record(fields: &[&str]) -> Vec<Token> {
    let mut out = Vec::new();
    for field in fields {
        let base = out.len();
        for (i, t) in tokenize(field).into_iter().enumerate() {
            out.push(Token::new(t.text, base + i));
        }
    }
    out
}

/// Join a record's fields into one normalized string, separating fields with
/// a single space. This is the string view used by whole-string distances
/// (edit distance, Jaro-Winkler).
pub fn record_string(fields: &[&str]) -> String {
    let mut out = String::new();
    record_string_into(fields, &mut out);
    out
}

/// [`record_string`] written into a caller-provided buffer (cleared
/// first), so the prepared-distance layer can reuse one allocation across
/// a whole candidate list.
pub fn record_string_into(fields: &[&str], out: &mut String) {
    out.clear();
    for field in fields {
        let n = normalize(field);
        if n.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize("Hello, World!"), "hello world");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
        assert_eq!(normalize("a"), "a");
        assert_eq!(normalize("4 th Elemynt"), "4 th elemynt");
        assert_eq!(normalize("4th Elemynt"), "4th elemynt");
    }

    #[test]
    fn normalize_unicode_lowercase() {
        assert_eq!(normalize("Ärger"), "ärger");
        assert_eq!(normalize("ÉCOLE"), "école");
    }

    #[test]
    fn tokenize_positions_are_sequential() {
        let toks = tokenize("With A Little Help From My Friend");
        let positions: Vec<usize> = toks.iter().map(|t| t.position).collect();
        assert_eq!(positions, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn tokenize_empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! ///").is_empty());
    }

    #[test]
    fn tokenize_record_concatenates_fields() {
        let toks = tokenize_record(&["The Doors", "LA Woman"]);
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["the", "doors", "la", "woman"]);
        assert_eq!(toks.last().unwrap().position, 3);
    }

    #[test]
    fn record_string_joins_fields() {
        assert_eq!(record_string(&["The Doors", "LA Woman"]), "the doors la woman");
        assert_eq!(record_string(&["", "LA Woman"]), "la woman");
        assert_eq!(record_string(&[]), "");
    }

    proptest! {
        #[test]
        fn normalize_is_idempotent(s in ".{0,64}") {
            let once = normalize(&s);
            prop_assert_eq!(normalize(&once), once);
        }

        #[test]
        fn normalized_has_no_double_spaces(s in ".{0,64}") {
            let n = normalize(&s);
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }

        #[test]
        fn tokens_are_nonempty_and_normalized(s in ".{0,64}") {
            for t in tokenize(&s) {
                prop_assert!(!t.text.is_empty());
                prop_assert_eq!(normalize(&t.text), t.text.clone());
            }
        }
    }
}
