//! Composite multi-attribute record distances.
//!
//! The paper's relations are multi-attribute (`Media[artistName, trackName]`,
//! `Org[name, address, city, state, zipcode]`, `Census[...]`). Its distance
//! functions treat the record as a whole; in practice data-cleaning
//! deployments often weight attributes differently (a zip-code mismatch
//! matters less than an organization-name mismatch). [`CompositeDistance`]
//! combines per-field distances with normalized weights, with a fallback to
//! whole-record distance when field counts differ.

use crate::Distance;

/// Weight assigned to one field of a record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldWeight {
    /// 0-based field index.
    pub field: usize,
    /// Non-negative relative weight.
    pub weight: f64,
}

impl FieldWeight {
    /// Construct a field weight.
    pub fn new(field: usize, weight: f64) -> Self {
        Self { field, weight: weight.max(0.0) }
    }
}

/// Weighted combination of an inner distance applied per field.
///
/// `d(a, b) = Σ_i w_i · inner(a_i, b_i) / Σ_i w_i` over the configured
/// fields. Fields absent from either record contribute distance `1`
/// (maximally dissimilar) for their weight. If no weights are configured,
/// all fields present in either record are weighted equally.
pub struct CompositeDistance<D> {
    inner: D,
    weights: Vec<FieldWeight>,
    name: String,
}

impl<D: Distance> CompositeDistance<D> {
    /// Equal weighting across fields.
    pub fn uniform(inner: D) -> Self {
        let name = format!("composite({})", inner.name());
        Self { inner, weights: Vec::new(), name }
    }

    /// Explicit per-field weights; fields not listed are ignored.
    pub fn weighted(inner: D, weights: Vec<FieldWeight>) -> Self {
        let name = format!("composite({})", inner.name());
        Self { inner, weights, name }
    }
}

impl<D: Distance> Distance for CompositeDistance<D> {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        // Per-field inner evaluations additionally count under their own
        // kind; this counter tracks record-level composite evaluations.
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistComposite, 1);
        let n_fields = a.len().max(b.len());
        if n_fields == 0 {
            return 0.0;
        }
        let field_dist = |i: usize| -> f64 {
            match (a.get(i), b.get(i)) {
                (Some(fa), Some(fb)) => self.inner.distance(&[fa], &[fb]),
                (None, None) => 0.0,
                _ => 1.0,
            }
        };
        if self.weights.is_empty() {
            let total: f64 = (0..n_fields).map(field_dist).sum();
            total / n_fields as f64
        } else {
            let wsum: f64 = self.weights.iter().map(|w| w.weight).sum();
            if wsum == 0.0 {
                return 0.0;
            }
            let total: f64 = self.weights.iter().map(|w| w.weight * field_dist(w.field)).sum();
            (total / wsum).clamp(0.0, 1.0)
        }
    }

    /// Field boundaries are load-bearing here: collapsing a record to its
    /// joined record string would erase the per-field weighting.
    fn record_string_invariant(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::EditDistance;

    #[test]
    fn uniform_averages_fields() {
        let d = CompositeDistance::uniform(EditDistance);
        // One identical field, one fully different single-char field.
        let x = d.distance(&["abc", "x"], &["abc", "y"]);
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_respects_weights() {
        let d = CompositeDistance::weighted(
            EditDistance,
            vec![FieldWeight::new(0, 3.0), FieldWeight::new(1, 1.0)],
        );
        // field 0 identical, field 1 different → 1/4 of the weight mismatched.
        let x = d.distance(&["abc", "x"], &["abc", "y"]);
        assert!((x - 0.25).abs() < 1e-12);
    }

    #[test]
    fn missing_fields_cost_full_weight() {
        let d = CompositeDistance::uniform(EditDistance);
        let x = d.distance(&["abc", "x"], &["abc"]);
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn both_empty_records() {
        let d = CompositeDistance::uniform(EditDistance);
        assert_eq!(d.distance(&[], &[]), 0.0);
    }

    #[test]
    fn zero_weight_sum_is_zero_distance() {
        let d = CompositeDistance::weighted(EditDistance, vec![FieldWeight::new(0, 0.0)]);
        assert_eq!(d.distance(&["a"], &["b"]), 0.0);
    }

    #[test]
    fn name_reflects_inner() {
        let d = CompositeDistance::uniform(EditDistance);
        assert_eq!(d.name(), "composite(ed)");
    }

    #[test]
    fn symmetric() {
        let d = CompositeDistance::weighted(
            EditDistance,
            vec![FieldWeight::new(0, 2.0), FieldWeight::new(1, 1.0)],
        );
        let ab = d.distance(&["lisa simpson", "seattle"], &["simson lisa", "seattle"]);
        let ba = d.distance(&["simson lisa", "seattle"], &["lisa simpson", "seattle"]);
        assert_eq!(ab, ba);
    }
}
