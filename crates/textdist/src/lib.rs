#![warn(missing_docs)]

//! String and record distance functions for fuzzy duplicate detection.
//!
//! This crate provides the distance-function substrate used by the ICDE 2005
//! paper *Robust Identification of Fuzzy Duplicates* (Chaudhuri, Ganti,
//! Motwani). The paper's duplicate-elimination framework is deliberately
//! orthogonal to the choice of distance function; its experiments use two:
//!
//! * **edit distance** (`ed`) — classic Levenshtein distance, normalized to
//!   `[0, 1]`, see [`edit`];
//! * **fuzzy match similarity** (`fms`) — a token-level function combining
//!   edit distance with IDF weights, following Chaudhuri et al.'s "Robust and
//!   efficient fuzzy match for online data cleaning" (SIGMOD 2003). We
//!   implement the *symmetric* variant the paper evaluates, see [`fms`].
//!
//! In addition we provide TF-IDF [`cosine`] similarity, token/q-gram
//! [`jaccard`], [`mod@jaro`]-Winkler, and [`mod@soundex`] as building blocks and
//! extensions, plus [`composite`] record-level distances that combine
//! per-attribute distances with weights.
//!
//! All distances implement the [`Distance`] trait and are **symmetric** and
//! bounded in `[0, 1]`, as required by the duplicate-elimination framework
//! (the paper assumes `d : R × R → [0, 1]` symmetric). Property tests in
//! each module check symmetry, range, and identity-of-indiscernibles on the
//! string representation.

pub mod composite;
pub mod cosine;
pub mod edit;
pub mod fms;
pub mod idf;
pub mod jaccard;
pub mod jaro;
pub mod monge_elkan;
pub mod myers;
pub mod qgram;
pub mod soundex;
pub mod tokenize;

pub use composite::{CompositeDistance, FieldWeight};
pub use cosine::CosineDistance;
pub use edit::{
    levenshtein, levenshtein_banded, levenshtein_bounded, levenshtein_dp, normalized_levenshtein,
    EditDistance,
};
pub use fms::FuzzyMatchDistance;
pub use idf::IdfModel;
pub use jaccard::{qgram_jaccard, token_jaccard, JaccardDistance};
pub use jaro::{jaro, jaro_winkler, JaroWinklerDistance};
pub use monge_elkan::MongeElkanDistance;
pub use myers::{myers, myers_bounded, myers_bounded_chars, myers_chars, PreparedPattern};
pub use qgram::{merge_overlap_bound, qgrams, record_term_set, QgramProfile, TermSet};
pub use soundex::soundex;
pub use tokenize::{normalize, tokenize, Token};

pub use tokenize::{record_string, record_string_into};

/// A symmetric distance function over string records, bounded in `[0, 1]`.
///
/// `0.0` means "identical for the purposes of matching"; `1.0` means
/// "completely dissimilar". Implementations must guarantee:
///
/// * **symmetry**: `d(a, b) == d(b, a)`;
/// * **range**: `0.0 <= d(a, b) <= 1.0`;
/// * **reflexivity**: `d(a, a) == 0.0`.
///
/// The triangle inequality is *not* required — neither edit distance after
/// normalization nor fuzzy match similarity satisfies it, and the
/// duplicate-elimination framework does not rely on it.
pub trait Distance: Send + Sync {
    /// Distance between two records, each given as a slice of attribute
    /// strings. Single-attribute records pass a one-element slice.
    fn distance(&self, a: &[&str], b: &[&str]) -> f64;

    /// Convenience wrapper for single-attribute records.
    fn distance_str(&self, a: &str, b: &str) -> f64 {
        self.distance(&[a], &[b])
    }

    /// Distance with a cutoff: `Some(d)` iff `d <= cutoff`, else `None`.
    ///
    /// Candidate-verification loops (the nearest-neighbor indexes in
    /// `fuzzydedup-nnindex`) call this with their current best-so-far as the
    /// cutoff, letting implementations abandon hopeless pairs early.
    /// Implementations must agree exactly with [`Distance::distance`] on
    /// pairs within the cutoff — the default simply computes the full
    /// distance and filters. [`EditDistance`] overrides this with the
    /// k-bounded Myers kernel.
    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        let d = self.distance(a, b);
        (d <= cutoff).then_some(d)
    }

    /// Whether the q-gram length/count filters are *sound* for this
    /// distance: `true` promises that the distance equals Levenshtein over
    /// [`tokenize::record_string`] normalized by the longer side's char
    /// count, so `d(a, b) <= t` implies `lev(a, b) <= floor(t · max_chars)`
    /// and the q-gram count bound of [`QgramProfile::required_overlap`]
    /// applies. Candidate generation uses this to decide whether pruning
    /// filters may run; for every other distance the filters degrade to
    /// no-ops (never silently dropping candidates).
    fn admits_qgram_filter(&self) -> bool {
        false
    }

    /// Whether pivot-anchored metric pruning is *sound* for this
    /// distance: `true` promises that the distance equals raw Levenshtein
    /// over [`tokenize::record_string`] divided by the longer side's char
    /// count, and raw Levenshtein is a true metric, so for any pivot `p`
    /// the triangle inequality gives
    /// `|lev(q, p) − lev(c, p)| <= lev(q, c) <= lev(q, p) + lev(c, p)`.
    /// The nearest-neighbor indexes use this to decide whether the
    /// LAESA-style pivot table (lower-bound rejection + upper-bound
    /// cutoff warm-start) may run; for every other distance the pivot
    /// layer degrades to a no-op. Note the *normalized* distance is not a
    /// metric — the bounds are applied to raw edit counts and only the
    /// final comparison is normalized, which is why this capability is
    /// separate from (though currently coextensive with)
    /// [`Distance::admits_qgram_filter`].
    fn admits_metric_pruning(&self) -> bool {
        false
    }

    /// Whether this distance sees a record's fields only through the
    /// joined normalized view ([`record_string`] / [`tokenize_record`]):
    /// `true` promises
    /// `d(a, b) == d([record_string(a)], [record_string(b)])` for every
    /// pair, so callers that verify the same records against many queries
    /// (the nearest-neighbor indexes) may pre-join each record once and
    /// pass the single-field view instead of re-normalizing every field
    /// per verification. Every whole-record distance in this crate
    /// qualifies; per-field combinators ([`CompositeDistance`]) must
    /// return `false`.
    fn record_string_invariant(&self) -> bool {
        true
    }

    /// Compile a query record once for repeated bounded evaluation
    /// against many candidates (the verification loops of
    /// `fuzzydedup-nnindex` prepare each query once and reuse it across
    /// the whole candidate list).
    ///
    /// The returned [`Prepared`] must agree *exactly* with
    /// [`Distance::distance_bounded`] on every `(candidate, cutoff)` pair
    /// — preparation is a pure performance lever, property-tested in
    /// `tests/prepared_equivalence.rs`. The default recompiles per call
    /// through the unprepared path, so every existing implementation
    /// keeps working; distances with expensive per-query state (Peq
    /// tables, token vectors, IDF weights) override it.
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        Prepared::new(Box::new(FallbackPrepared {
            distance: self,
            query: query.iter().map(|s| s.to_string()).collect(),
        }))
    }

    /// A short human-readable name ("ed", "fms", "cosine", ...).
    fn name(&self) -> &str;
}

/// The compiled form of one query record, produced by
/// [`Distance::prepare`]: query-side preprocessing (equality bitmasks,
/// token vectors, IDF weights) done once, candidate-side work per call.
///
/// `&mut self` lets implementations keep internal scratch buffers — a
/// prepared query is owned by one lookup on one thread (`Send`, not
/// `Sync`).
pub trait PreparedDistance: Send {
    /// Bounded distance from the compiled query to a candidate record:
    /// `Some(d)` iff `d <= cutoff`, else `None`, exactly as
    /// [`Distance::distance_bounded`] on the original query.
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64>;

    /// Bounded distance to a whole batch of candidates at one shared
    /// cutoff: `out[i]` must equal
    /// `distance_bounded_prepared(candidates[i], cutoff)` bit-exactly.
    ///
    /// The default is the scalar loop, so every implementation is correct
    /// by construction; implementations with a lock-step kernel (the
    /// prepared edit distance) override it to verify the batch in one
    /// pass over their compiled tables.
    fn distance_bounded_batch(
        &mut self,
        candidates: &[&[&str]],
        cutoff: f64,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        for cand in candidates {
            let d = self.distance_bounded_prepared(cand, cutoff);
            out.push(d);
        }
    }
}

/// A query compiled by [`Distance::prepare`], borrowing the distance it
/// came from. Records prepared-layer metrics (`prepared` section of
/// `RunMetrics`): one `PreparedQueries` per compilation, one
/// `PreparedReuses` per evaluation served.
pub struct Prepared<'a>(Box<dyn PreparedDistance + 'a>);

impl<'a> Prepared<'a> {
    /// Wrap a compiled query (implementation hook for `prepare`
    /// overrides).
    pub fn new(inner: Box<dyn PreparedDistance + 'a>) -> Self {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::PreparedQueries, 1);
        Prepared(inner)
    }

    /// Bounded distance to a candidate through the compiled query;
    /// equivalent to `distance_bounded(query, candidate, cutoff)`.
    pub fn distance_bounded(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::PreparedReuses, 1);
        self.0.distance_bounded_prepared(candidate, cutoff)
    }

    /// Bounded distances to a batch of candidates at one shared cutoff;
    /// `out[i]` equals `distance_bounded(candidates[i], cutoff)`
    /// bit-exactly, with lock-step kernels where the distance provides
    /// them (see [`PreparedDistance::distance_bounded_batch`]).
    pub fn distance_bounded_batch(
        &mut self,
        candidates: &[&[&str]],
        cutoff: f64,
        out: &mut Vec<Option<f64>>,
    ) {
        fuzzydedup_metrics::incr(
            fuzzydedup_metrics::Counter::PreparedReuses,
            candidates.len() as u64,
        );
        self.0.distance_bounded_batch(candidates, cutoff, out);
    }
}

/// Default compiled form: owns a copy of the query and routes every call
/// through the unprepared [`Distance::distance_bounded`] — correctness
/// for free, speed only where `prepare` is overridden.
struct FallbackPrepared<'a, D: ?Sized> {
    distance: &'a D,
    query: Vec<String>,
}

impl<D: Distance + ?Sized> PreparedDistance for FallbackPrepared<'_, D> {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        let query: Vec<&str> = self.query.iter().map(String::as_str).collect();
        self.distance.distance_bounded(&query, candidate, cutoff)
    }
}

impl<D: Distance + ?Sized> Distance for &D {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        (**self).distance(a, b)
    }
    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        // Forward explicitly: the default body would bypass the inner
        // type's override.
        (**self).distance_bounded(a, b, cutoff)
    }
    fn admits_qgram_filter(&self) -> bool {
        // Same vtable gotcha as distance_bounded: forward explicitly or
        // the default `false` silently disables pruning through `&D`.
        (**self).admits_qgram_filter()
    }
    fn admits_metric_pruning(&self) -> bool {
        // Same vtable gotcha: without this, pivot pruning would silently
        // switch off for any distance seen through `&D`.
        (**self).admits_metric_pruning()
    }
    fn record_string_invariant(&self) -> bool {
        // Same vtable gotcha, opposite polarity: the default `true` would
        // wrongly bless a per-field inner distance seen through `&D`.
        (**self).record_string_invariant()
    }
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        // Same vtable gotcha: without this the default fallback would
        // recompile per call even when the inner type compiles queries.
        (**self).prepare(query)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl Distance for Box<dyn Distance> {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        (**self).distance(a, b)
    }
    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        (**self).distance_bounded(a, b, cutoff)
    }
    fn admits_qgram_filter(&self) -> bool {
        (**self).admits_qgram_filter()
    }
    fn admits_metric_pruning(&self) -> bool {
        (**self).admits_metric_pruning()
    }
    fn record_string_invariant(&self) -> bool {
        (**self).record_string_invariant()
    }
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        (**self).prepare(query)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Adapter that hides the inner distance's pruning admissibility:
/// identical distances, but [`Distance::admits_qgram_filter`] and
/// [`Distance::admits_metric_pruning`] both report `false` (neither is
/// forwarded, so the trait defaults apply), so candidate generation and
/// verification run unpruned. Used to A/B the pruning filters and the
/// pivot layer (recall-losslessness tests, `exp_index_recall`).
pub struct UnfilteredDistance<D>(pub D);

impl<D: Distance> Distance for UnfilteredDistance<D> {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        self.0.distance(a, b)
    }
    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        self.0.distance_bounded(a, b, cutoff)
    }
    fn record_string_invariant(&self) -> bool {
        self.0.record_string_invariant()
    }
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        // Filter admissibility is hidden, but prepared kernels stay live:
        // distances are identical either way.
        self.0.prepare(query)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Enumeration of the built-in distance functions, convenient for
/// command-line experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// Normalized Levenshtein edit distance over the concatenated record.
    EditDistance,
    /// Symmetric fuzzy match similarity (token-level edit distance + IDF).
    FuzzyMatch,
    /// TF-IDF weighted cosine distance over tokens.
    Cosine,
    /// Token-set Jaccard distance.
    Jaccard,
    /// Jaro-Winkler distance.
    JaroWinkler,
    /// Symmetrized Monge-Elkan (average best-match token similarity).
    MongeElkan,
}

impl DistanceKind {
    /// Parse from the names used by the experiment drivers.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ed" | "edit" | "levenshtein" => Some(Self::EditDistance),
            "fms" | "fuzzy" | "fuzzymatch" => Some(Self::FuzzyMatch),
            "cos" | "cosine" => Some(Self::Cosine),
            "jaccard" => Some(Self::Jaccard),
            "jw" | "jaro" | "jarowinkler" => Some(Self::JaroWinkler),
            "me" | "monge-elkan" | "mongeelkan" => Some(Self::MongeElkan),
            _ => None,
        }
    }

    /// Short name as used in `EXPERIMENTS.md` and driver output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::EditDistance => "ed",
            Self::FuzzyMatch => "fms",
            Self::Cosine => "cosine",
            Self::Jaccard => "jaccard",
            Self::JaroWinkler => "jw",
            Self::MongeElkan => "monge-elkan",
        }
    }

    /// Build a boxed distance for a corpus of records. Corpus statistics
    /// (IDF weights) are only consumed by the kinds that need them.
    pub fn build(&self, corpus: &[Vec<String>]) -> Box<dyn Distance> {
        match self {
            Self::EditDistance => Box::new(EditDistance),
            Self::FuzzyMatch => {
                let idf = IdfModel::fit_records(corpus);
                Box::new(FuzzyMatchDistance::new(idf))
            }
            Self::Cosine => {
                let idf = IdfModel::fit_records(corpus);
                Box::new(CosineDistance::new(idf))
            }
            Self::Jaccard => Box::new(JaccardDistance::default()),
            Self::JaroWinkler => Box::new(JaroWinklerDistance),
            Self::MongeElkan => Box::new(MongeElkanDistance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing_round_trips() {
        for kind in [
            DistanceKind::EditDistance,
            DistanceKind::FuzzyMatch,
            DistanceKind::Cosine,
            DistanceKind::Jaccard,
            DistanceKind::JaroWinkler,
            DistanceKind::MongeElkan,
        ] {
            assert_eq!(DistanceKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(DistanceKind::parse("nope"), None);
    }

    #[test]
    fn build_produces_named_distances() {
        let corpus =
            vec![vec!["microsoft corp".to_string()], vec!["boeing corporation".to_string()]];
        for kind in [
            DistanceKind::EditDistance,
            DistanceKind::FuzzyMatch,
            DistanceKind::Cosine,
            DistanceKind::Jaccard,
            DistanceKind::JaroWinkler,
            DistanceKind::MongeElkan,
        ] {
            let d = kind.build(&corpus);
            assert_eq!(d.name(), kind.name());
            assert_eq!(d.distance_str("abc", "abc"), 0.0);
        }
    }

    #[test]
    fn boxed_distance_delegates() {
        let d: Box<dyn Distance> = Box::new(EditDistance);
        assert_eq!(d.name(), "ed");
        assert!(d.distance_str("kitten", "sitting") > 0.0);
    }

    #[test]
    fn boxed_distance_forwards_bounded_override() {
        // The Box impl must forward distance_bounded to the inner type's
        // override, not fall back to the full-compute default.
        let _serial = fuzzydedup_metrics::serial_guard();
        fuzzydedup_metrics::enable();
        let d: Box<dyn Distance> = Box::new(EditDistance);
        let exact = d.distance(&["microsoft corp"], &["microsft corporation"]);
        assert_eq!(
            d.distance_bounded(&["microsoft corp"], &["microsft corporation"], 1.0),
            Some(exact)
        );
        let before = fuzzydedup_metrics::snapshot();
        assert_eq!(d.distance_bounded(&["completely unrelated text"], &["zzzz"], 0.05), None);
        let delta = fuzzydedup_metrics::snapshot().delta(&before);
        // Reaching the bounded kernel proves the override was dispatched.
        assert_eq!(delta.get(fuzzydedup_metrics::Counter::EdKernelBounded), 1);
    }

    #[test]
    fn default_distance_bounded_filters_by_cutoff() {
        let d = JaccardDistance::default();
        let exact = d.distance_str("alpha beta", "alpha gamma");
        assert_eq!(d.distance_bounded(&["alpha beta"], &["alpha gamma"], 1.0), Some(exact));
        assert_eq!(d.distance_bounded(&["alpha beta"], &["alpha gamma"], exact / 2.0), None);
    }
}
