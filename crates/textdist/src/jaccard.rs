//! Jaccard distances over token sets and q-gram multisets.
//!
//! Jaccard similarity is the cheapest useful set-overlap measure; the
//! nearest-neighbor index uses q-gram Jaccard as a pre-filter, and the
//! token variant is exposed as a standalone [`Distance`] for comparison
//! experiments.

use std::collections::HashSet;

use crate::qgram::QgramProfile;
use crate::tokenize::{record_string, tokenize_record};
use crate::{Distance, Prepared, PreparedDistance};

fn token_set(fields: &[&str]) -> HashSet<String> {
    tokenize_record(fields).into_iter().map(|t| t.text).collect()
}

/// Jaccard similarity between two token *sets* (duplicates ignored).
/// Both-empty pairs are similarity `1`.
pub fn token_jaccard(a: &[&str], b: &[&str]) -> f64 {
    set_jaccard(&token_set(a), &token_set(b))
}

fn set_jaccard(sa: &HashSet<String>, sb: &HashSet<String>) -> f64 {
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard similarity between q-gram *multisets* (generalized Jaccard:
/// `Σ min / Σ max`). Both-empty pairs are similarity `1`.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    profile_jaccard(&QgramProfile::build(a, q), &QgramProfile::build(b, q))
}

fn profile_jaccard(pa: &QgramProfile, pb: &QgramProfile) -> f64 {
    if pa.total() == 0 && pb.total() == 0 {
        return 1.0;
    }
    let inter = pa.overlap(pb);
    let union = pa.total() + pb.total() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Token-set Jaccard distance (`1 - similarity`).
#[derive(Debug, Clone, Copy, Default)]
pub struct JaccardDistance {
    /// If `Some(q)`, use q-gram multiset Jaccard over the joined record
    /// string instead of token-set Jaccard.
    pub qgram: Option<usize>,
}

impl JaccardDistance {
    /// q-gram variant.
    pub fn qgrams(q: usize) -> Self {
        Self { qgram: Some(q) }
    }
}

impl Distance for JaccardDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistJaccard, 1);
        match self.qgram {
            None => 1.0 - token_jaccard(a, b),
            Some(q) => {
                let sa = record_string(a);
                let sb = record_string(b);
                1.0 - qgram_jaccard(&sa, &sb, q)
            }
        }
    }

    /// Build the query's token set or q-gram profile once.
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        let kind = match self.qgram {
            None => PreparedJaccardKind::Tokens(token_set(query)),
            Some(q) => PreparedJaccardKind::Qgrams {
                profile: QgramProfile::build(&record_string(query), q),
                q,
            },
        };
        Prepared::new(Box::new(PreparedJaccard { kind }))
    }

    fn name(&self) -> &str {
        "jaccard"
    }
}

/// Compiled Jaccard query, mirroring the two [`JaccardDistance`] variants.
enum PreparedJaccardKind {
    Tokens(HashSet<String>),
    Qgrams { profile: QgramProfile, q: usize },
}

struct PreparedJaccard {
    kind: PreparedJaccardKind,
}

impl PreparedDistance for PreparedJaccard {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistJaccard, 1);
        let d = match &self.kind {
            PreparedJaccardKind::Tokens(sa) => 1.0 - set_jaccard(sa, &token_set(candidate)),
            PreparedJaccardKind::Qgrams { profile, q } => {
                let pb = QgramProfile::build(&record_string(candidate), *q);
                1.0 - profile_jaccard(profile, &pb)
            }
        };
        (d <= cutoff).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn token_jaccard_basics() {
        assert_eq!(token_jaccard(&["a b"], &["a b"]), 1.0);
        assert_eq!(token_jaccard(&["a b"], &["b a"]), 1.0);
        assert_eq!(token_jaccard(&["a b"], &["c d"]), 0.0);
        assert_eq!(token_jaccard(&["a b"], &["b c"]), 1.0 / 3.0);
        assert_eq!(token_jaccard(&[""], &[""]), 1.0);
        assert_eq!(token_jaccard(&[""], &["a"]), 0.0);
    }

    #[test]
    fn qgram_jaccard_close_strings_are_similar() {
        let near = qgram_jaccard("microsoft", "microsft", 3);
        let far = qgram_jaccard("microsoft", "boeing", 3);
        assert!(near > 0.5);
        assert!(far < 0.1);
        assert!(near > far);
    }

    #[test]
    fn qgram_multiset_counts_matter() {
        // "aaaa" vs "aa" share 'aa' grams but with different counts.
        let s = qgram_jaccard("aaaa", "aa", 2);
        assert!(s > 0.0 && s < 1.0, "{s}");
    }

    #[test]
    fn distance_wrapper_variants() {
        let tok = JaccardDistance::default();
        let qg = JaccardDistance::qgrams(3);
        assert_eq!(tok.name(), "jaccard");
        assert_eq!(tok.distance_str("a b", "b a"), 0.0);
        assert!(qg.distance_str("microsoft", "microsft") < 0.5);
    }

    proptest! {
        #[test]
        fn token_jaccard_symmetric_unit(a in "[a-d ]{0,16}", b in "[a-d ]{0,16}") {
            let ab = token_jaccard(&[&a], &[&b]);
            let ba = token_jaccard(&[&b], &[&a]);
            prop_assert_eq!(ab, ba);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn qgram_jaccard_symmetric_unit(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            let ab = qgram_jaccard(&a, &b, 2);
            let ba = qgram_jaccard(&b, &a, 2);
            prop_assert_eq!(ab, ba);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn self_similarity_is_one(a in "[a-d ]{0,16}") {
            prop_assert_eq!(token_jaccard(&[&a], &[&a]), 1.0);
            prop_assert_eq!(qgram_jaccard(&a, &a, 3), 1.0);
        }
    }
}
