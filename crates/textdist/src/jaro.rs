//! Jaro and Jaro-Winkler string similarity.
//!
//! Standard record-linkage similarities (Winkler's refinement of Jaro's
//! matcher), included as an extension: the record-linkage literature the
//! paper cites ([3, 17, 19]) builds on them, and they serve as an extra
//! distance function for quality comparisons.

use crate::tokenize::{record_string, record_string_into};
use crate::{Distance, Prepared, PreparedDistance};

/// Jaro similarity in `[0, 1]`. Both-empty pairs are `1`.
///
/// ```
/// use fuzzydedup_textdist::jaro;
/// assert!((jaro("martha", "marhta") - 0.944).abs() < 1e-3);
/// assert_eq!(jaro("abc", "abc"), 1.0);
/// assert_eq!(jaro("abc", "xyz"), 0.0);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched sequences in order.
    let b_matches: Vec<char> =
        b.iter().zip(&b_matched).filter(|(_, &mt)| mt).map(|(&c, _)| c).collect();
    let t = a_matches.iter().zip(&b_matches).filter(|(x, y)| x != y).count() as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by shared prefix (up to 4 chars)
/// with scaling factor `p` (standard `0.1`).
///
/// ```
/// use fuzzydedup_textdist::jaro_winkler;
/// assert!(jaro_winkler("martha", "marhta") > 0.95);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const P: f64 = 0.1;
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    (j + prefix * P * (1.0 - j)).clamp(0.0, 1.0)
}

/// Jaro-Winkler distance over the normalized joined record string.
#[derive(Debug, Clone, Copy, Default)]
pub struct JaroWinklerDistance;

impl Distance for JaroWinklerDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistJaroWinkler, 1);
        1.0 - jaro_winkler(&record_string(a), &record_string(b))
    }

    /// Normalize the query string once; candidates reuse one buffer.
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        Prepared::new(Box::new(PreparedJaroWinkler {
            query: record_string(query),
            text: String::new(),
        }))
    }

    fn name(&self) -> &str {
        "jw"
    }
}

/// Compiled Jaro-Winkler query: the normalized record string.
struct PreparedJaroWinkler {
    query: String,
    text: String,
}

impl PreparedDistance for PreparedJaroWinkler {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistJaroWinkler, 1);
        record_string_into(candidate, &mut self.text);
        let d = 1.0 - jaro_winkler(&self.query, &self.text);
        (d <= cutoff).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert!((jaro("dwayne", "duane") - 0.822).abs() < 1e-3);
        assert!((jaro("dixon", "dicksonx") - 0.767).abs() < 1e-3);
        assert!((jaro_winkler("dixon", "dicksonx") - 0.813).abs() < 1e-3);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn prefix_boost_helps() {
        // Same Jaro-level difference, but shared prefix wins under Winkler.
        let with_prefix = jaro_winkler("prefixab", "prefixba");
        let without = jaro_winkler("abprefix", "baprefix");
        assert!(with_prefix > without);
    }

    #[test]
    fn distance_trait_impl() {
        let d = JaroWinklerDistance;
        assert_eq!(d.name(), "jw");
        assert_eq!(d.distance_str("abc", "abc"), 0.0);
        assert_eq!(d.distance_str("abc", "xyz"), 1.0);
    }

    proptest! {
        #[test]
        fn jaro_symmetric_unit(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            let ab = jaro(&a, &b);
            prop_assert!((ab - jaro(&b, &a)).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn winkler_at_least_jaro(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
        }

        #[test]
        fn self_similarity(a in "[a-e]{1,12}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
