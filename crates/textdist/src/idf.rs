//! Inverse-document-frequency model over tokens.
//!
//! Both the cosine metric and the fuzzy match similarity weight tokens by
//! IDF so that frequent, uninformative tokens ("corp", "inc", "the") carry
//! little weight while rare, discriminating tokens ("microsoft") dominate.
//! The model is fit once over the relation being deduplicated — the paper
//! treats the relation itself as the corpus.

use std::collections::HashMap;

use crate::tokenize::tokenize;

/// IDF statistics for a token corpus.
///
/// `idf(t) = ln(1 + N / df(t))` where `N` is the number of documents
/// (records) and `df(t)` the number of documents containing `t`. Unknown
/// tokens receive the maximum observed specificity, `ln(1 + N)`, so that a
/// rare typo'd token still carries high weight (important: a misspelled rare
/// token must not become cheap to drop in fms).
#[derive(Debug, Clone, Default)]
pub struct IdfModel {
    doc_freq: HashMap<String, u32>,
    n_docs: u32,
}

impl IdfModel {
    /// Fit over a corpus of documents, each already tokenized into strings.
    pub fn fit_token_docs<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let mut doc_freq: HashMap<String, u32> = HashMap::new();
        let mut seen: Vec<&str> = Vec::new();
        for doc in docs {
            seen.clear();
            for tok in doc {
                let t = tok.as_ref();
                if !seen.contains(&t) {
                    seen.push(t);
                }
            }
            for t in &seen {
                *doc_freq.entry((*t).to_string()).or_insert(0) += 1;
            }
        }
        Self { doc_freq, n_docs: docs.len() as u32 }
    }

    /// Fit over raw strings, tokenizing each with [`tokenize`].
    pub fn fit_strings<S: AsRef<str>>(docs: &[S]) -> Self {
        let token_docs: Vec<Vec<String>> = docs
            .iter()
            .map(|d| tokenize(d.as_ref()).into_iter().map(|t| t.text).collect())
            .collect();
        Self::fit_token_docs(&token_docs)
    }

    /// Fit over multi-attribute records; every record is one document whose
    /// tokens are the union of its fields' tokens.
    pub fn fit_records(records: &[Vec<String>]) -> Self {
        let token_docs: Vec<Vec<String>> = records
            .iter()
            .map(|r| r.iter().flat_map(|f| tokenize(f).into_iter().map(|t| t.text)).collect())
            .collect();
        Self::fit_token_docs(&token_docs)
    }

    /// Number of documents the model was fit on.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Number of distinct tokens observed.
    pub fn vocabulary_size(&self) -> usize {
        self.doc_freq.len()
    }

    /// Document frequency of a token (0 if unseen).
    pub fn doc_freq(&self, token: &str) -> u32 {
        self.doc_freq.get(token).copied().unwrap_or(0)
    }

    /// IDF weight of a token. Unknown tokens get the maximum weight
    /// `ln(1 + N)`; with an empty model every token weighs `ln(2)`.
    pub fn idf(&self, token: &str) -> f64 {
        let n = self.n_docs.max(1) as f64;
        match self.doc_freq.get(token) {
            Some(&df) if df > 0 => (1.0 + n / df as f64).ln(),
            _ => (1.0 + n).ln(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> IdfModel {
        IdfModel::fit_strings(&[
            "microsoft corp",
            "boeing corp",
            "intel corp",
            "microsft corporation",
        ])
    }

    #[test]
    fn frequent_tokens_weigh_less() {
        let m = corpus();
        assert!(m.idf("corp") < m.idf("microsoft"));
        assert!(m.idf("corp") < m.idf("boeing"));
    }

    #[test]
    fn unknown_tokens_get_max_weight() {
        let m = corpus();
        let unknown = m.idf("zzzz");
        assert!(unknown >= m.idf("microsoft"));
        assert_eq!(unknown, (1.0 + 4.0f64).ln());
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let m = IdfModel::fit_strings(&["a a a", "a b"]);
        assert_eq!(m.doc_freq("a"), 2);
        assert_eq!(m.doc_freq("b"), 1);
        assert_eq!(m.n_docs(), 2);
        assert_eq!(m.vocabulary_size(), 2);
    }

    #[test]
    fn empty_model_is_usable() {
        let m = IdfModel::default();
        assert!(m.idf("anything") > 0.0);
        assert_eq!(m.n_docs(), 0);
    }

    #[test]
    fn idf_is_positive_and_monotone_in_rarity() {
        let m = corpus();
        for t in ["corp", "microsoft", "corporation", "boeing"] {
            assert!(m.idf(t) > 0.0);
        }
        // df(corp)=3 > df(corporation)=1 so idf(corp) < idf(corporation)
        assert!(m.idf("corp") < m.idf("corporation"));
    }

    #[test]
    fn fit_records_unions_fields() {
        let m = IdfModel::fit_records(&[
            vec!["The Doors".into(), "LA Woman".into()],
            vec!["Doors".into(), "LA Woman".into()],
        ]);
        assert_eq!(m.doc_freq("doors"), 2);
        assert_eq!(m.doc_freq("la"), 2);
        assert_eq!(m.doc_freq("the"), 1);
    }
}
