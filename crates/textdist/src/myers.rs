//! Myers' 1999 bit-parallel Levenshtein kernel.
//!
//! Computes the unit-cost edit distance by encoding a whole column of the
//! DP matrix in the bits of machine words: the vertical deltas
//! `D[i][j] − D[i−1][j] ∈ {−1, 0, +1}` are held as a positive mask `Pv`
//! and a negative mask `Mv`, and one column transition is ~15 word
//! operations regardless of the pattern length — `O(⌈m/64⌉·n)` total
//! versus the classic DP's `O(m·n)` cell updates (G. Myers, *A fast
//! bit-vector algorithm for approximate string matching based on dynamic
//! programming*, JACM 1999; block formulation after Hyyrö 2003).
//!
//! All entry points first strip the common prefix and suffix (equal
//! flanks cannot change the distance, and near-duplicate pairs — the
//! dominant verification workload — share most of both), then dispatch on
//! the *stripped* pattern length.
//!
//! Three entry points form the kernel-selection ladder (`DESIGN.md`):
//!
//! * [`myers_chars`] — dispatches to the **single-word** path when the
//!   shorter string fits 64 chars, else the **blocked** multi-word path;
//! * [`myers_bounded_chars`] — the **k-bounded** variant used by
//!   nearest-neighbor candidate verification: abandons the computation as
//!   soon as the distance provably exceeds the cutoff (length gap, or the
//!   running bottom-row score can no longer descend below `k`);
//! * [`crate::edit::levenshtein`] / [`crate::edit::levenshtein_bounded`]
//!   — the public edit-distance API, which routes here.
//!
//! Every invocation records which rung fired into the process-global
//! metrics counters (`edit_kernel` section of `RunMetrics`), so pipeline
//! runs show which path verification actually took.

use fuzzydedup_metrics::{incr, Counter};

/// Pattern-equality bitmasks for a ≤ 64-char pattern: `get(c)` has bit
/// `i` set iff `pattern[i] == c`. ASCII is direct-indexed; other scalars
/// go to a (tiny, usually empty) spill list.
struct PeqWord {
    ascii: [u64; 128],
    spill: Vec<(char, u64)>,
}

impl PeqWord {
    fn build(pattern: &[char]) -> Self {
        debug_assert!(pattern.len() <= 64);
        let mut ascii = [0u64; 128];
        let mut spill: Vec<(char, u64)> = Vec::new();
        for (i, &c) in pattern.iter().enumerate() {
            let bit = 1u64 << i;
            if (c as u32) < 128 {
                ascii[c as usize] |= bit;
            } else if let Some(entry) = spill.iter_mut().find(|(s, _)| *s == c) {
                entry.1 |= bit;
            } else {
                spill.push((c, bit));
            }
        }
        Self { ascii, spill }
    }

    #[inline]
    fn get(&self, c: char) -> u64 {
        if (c as u32) < 128 {
            self.ascii[c as usize]
        } else {
            self.spill.iter().find(|(s, _)| *s == c).map_or(0, |(_, bits)| *bits)
        }
    }
}

/// Pattern-equality bitmasks for a blocked (> 64-char) pattern: one word
/// per 64-row block, `w` words per character.
struct PeqBlocks {
    w: usize,
    /// `128 × w` words, ASCII direct-indexed: `ascii[c*w + k]`.
    ascii: Vec<u64>,
    spill: Vec<(char, Vec<u64>)>,
    zero: Vec<u64>,
}

impl PeqBlocks {
    fn build(pattern: &[char]) -> Self {
        let w = pattern.len().div_ceil(64);
        let mut ascii = vec![0u64; 128 * w];
        let mut spill: Vec<(char, Vec<u64>)> = Vec::new();
        for (i, &c) in pattern.iter().enumerate() {
            let (block, bit) = (i / 64, 1u64 << (i % 64));
            if (c as u32) < 128 {
                ascii[c as usize * w + block] |= bit;
            } else if let Some(entry) = spill.iter_mut().find(|(s, _)| *s == c) {
                entry.1[block] |= bit;
            } else {
                let mut masks = vec![0u64; w];
                masks[block] |= bit;
                spill.push((c, masks));
            }
        }
        Self { w, ascii, spill, zero: vec![0u64; w] }
    }

    /// The `w` equality words of `c` (all-zero slice for absent chars).
    #[inline]
    fn get(&self, c: char) -> &[u64] {
        if (c as u32) < 128 {
            &self.ascii[c as usize * self.w..(c as usize + 1) * self.w]
        } else {
            self.spill.iter().find(|(s, _)| *s == c).map_or(&self.zero[..], |(_, m)| m)
        }
    }

    /// 64 consecutive equality bits of `c` starting at pattern position
    /// `pre` — the single-word view of a ≤ 64-char window into a blocked
    /// table. Bits past the end of the pattern are garbage exactly as the
    /// word kernel's bits above `m − 1` are; callers mask to the window
    /// width.
    #[inline]
    fn window(&self, c: char, pre: usize) -> u64 {
        let words = self.get(c);
        let (blk, off) = (pre / 64, pre % 64);
        let lo = words[blk] >> off;
        if off == 0 || blk + 1 == self.w {
            lo
        } else {
            lo | (words[blk + 1] << (64 - off))
        }
    }
}

/// One column transition of one 64-row block (Hyyrö's formulation of the
/// Myers recurrence, with explicit horizontal carries between blocks).
///
/// `hin`/`hout` are the horizontal deltas entering the block's top row
/// and leaving its bottom row (`high` selects the bottom row's bit; for a
/// partial last block that is bit `m%64 − 1`, and garbage above it never
/// propagates downward — carries in the embedded addition only travel
/// toward higher bits).
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, mut eq: u64, hin: i32, high: u64) -> i32 {
    let xv = eq | *mv;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let mut hout = 0i32;
    if ph & high != 0 {
        hout += 1;
    }
    if mh & high != 0 {
        hout -= 1;
    }
    ph <<= 1;
    mh <<= 1;
    match hin.cmp(&0) {
        std::cmp::Ordering::Less => mh |= 1,
        std::cmp::Ordering::Greater => ph |= 1,
        std::cmp::Ordering::Equal => {}
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Strip the common prefix and suffix of two strings: equal flanks never
/// change the Levenshtein distance, and near-duplicates (the dominant
/// verification workload) share most of both.
fn strip_common<'s>(mut a: &'s [char], mut b: &'s [char]) -> (&'s [char], &'s [char]) {
    let pre = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    a = &a[pre..];
    b = &b[pre..];
    let suf = a.iter().rev().zip(b.iter().rev()).take_while(|(x, y)| x == y).count();
    (&a[..a.len() - suf], &b[..b.len() - suf])
}

/// Single-word Myers: pattern ≤ 64 chars, any text length. Returns the
/// exact Levenshtein distance. The column transition is [`advance_block`]
/// specialized to `hin = +1` (the top boundary row `D[0][j] = j`), which
/// keeps the state in registers with no carry branches.
fn word_distance(pattern: &[char], text: &[char]) -> usize {
    debug_assert!(!pattern.is_empty() && pattern.len() <= 64);
    let m = pattern.len();
    let peq = PeqWord::build(pattern);
    let high = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m as isize;
    for &c in text {
        let eq = peq.get(c);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score as usize
}

/// Blocked Myers: pattern of any length, `⌈m/64⌉` words per column.
fn blocked_distance(pattern: &[char], text: &[char]) -> usize {
    let m = pattern.len();
    let w = m.div_ceil(64);
    debug_assert!(w >= 2);
    let peq = PeqBlocks::build(pattern);
    // Bottom row of the last (possibly partial) block.
    let last_high = 1u64 << ((m - 1) % 64);
    let mut pv = vec![!0u64; w];
    let mut mv = vec![0u64; w];
    let mut score = m as isize;
    for &c in text {
        let eqs = peq.get(c);
        let mut hin = 1i32;
        for k in 0..w {
            let high = if k + 1 == w { last_high } else { 1u64 << 63 };
            hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
        }
        score += hin as isize;
    }
    score as usize
}

/// Bit-parallel Levenshtein distance over pre-collected char slices.
/// Dispatches to the single-word path when the shorter string fits one
/// machine word, else the blocked multi-word path. Exact for all inputs
/// (equivalence with the reference DP is property-tested).
pub fn myers_chars(a: &[char], b: &[char]) -> usize {
    let (a, b) = strip_common(a, b);
    // Shorter side as the pattern: fewer blocks, and the single-word path
    // applies whenever min(|a|, |b|) ≤ 64 after affix stripping.
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pattern.is_empty() {
        return text.len();
    }
    if pattern.len() <= 64 {
        incr(Counter::EdKernelWord, 1);
        word_distance(pattern, text)
    } else {
        incr(Counter::EdKernelBlocked, 1);
        blocked_distance(pattern, text)
    }
}

/// [`myers_chars`] over `&str` inputs (chars collected internally).
///
/// ```
/// use fuzzydedup_textdist::myers;
/// assert_eq!(myers("kitten", "sitting"), 3);
/// assert_eq!(myers("", "abc"), 3);
/// ```
pub fn myers(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    myers_chars(&a, &b)
}

/// k-bounded Myers over pre-collected char slices: `Some(d)` iff the
/// distance `d` is `≤ bound`, `None` as soon as it provably exceeds it.
///
/// The early exit watches the bottom-row score: column `j`'s score can
/// decrease by at most 1 per remaining column, so once
/// `score − (n − j) > bound` no suffix can recover. Verification loops in
/// the nearest-neighbor indexes call this with their current best-so-far
/// distance as the cutoff, which abandons most losing candidates after a
/// prefix of the text.
pub fn myers_bounded_chars(a: &[char], b: &[char], bound: usize) -> Option<usize> {
    incr(Counter::EdKernelBounded, 1);
    let (a, b) = strip_common(a, b);
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // The length gap is a lower bound on the distance.
    if text.len() - pattern.len() > bound {
        incr(Counter::EdKernelEarlyExit, 1);
        return None;
    }
    if pattern.is_empty() {
        return (text.len() <= bound).then_some(text.len());
    }
    let n = text.len();
    let m = pattern.len();
    if m <= 64 {
        let peq = PeqWord::build(pattern);
        let high = 1u64 << (m - 1);
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = m as isize;
        for (j, &c) in text.iter().enumerate() {
            let eq = peq.get(c);
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            score += isize::from(ph & high != 0);
            score -= isize::from(mh & high != 0);
            ph = (ph << 1) | 1;
            mh <<= 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
            // Each remaining column can lower the score by at most 1.
            if score - (n - j - 1) as isize > bound as isize {
                incr(Counter::EdKernelEarlyExit, 1);
                return None;
            }
        }
        (score as usize <= bound).then_some(score as usize)
    } else {
        let w = m.div_ceil(64);
        let peq = PeqBlocks::build(pattern);
        let last_high = 1u64 << ((m - 1) % 64);
        let mut pv = vec![!0u64; w];
        let mut mv = vec![0u64; w];
        let mut score = m as isize;
        for (j, &c) in text.iter().enumerate() {
            let eqs = peq.get(c);
            let mut hin = 1i32;
            for k in 0..w {
                let high = if k + 1 == w { last_high } else { 1u64 << 63 };
                hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
            }
            score += hin as isize;
            if score - (n - j - 1) as isize > bound as isize {
                incr(Counter::EdKernelEarlyExit, 1);
                return None;
            }
        }
        (score as usize <= bound).then_some(score as usize)
    }
}

/// [`myers_bounded_chars`] over `&str` inputs.
///
/// ```
/// use fuzzydedup_textdist::myers_bounded;
/// assert_eq!(myers_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(myers_bounded("kitten", "sitting", 2), None);
/// ```
pub fn myers_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    myers_bounded_chars(&a, &b, bound)
}

/// A query compiled once for repeated edit-distance evaluation against
/// many candidate texts (the prepared-distance layer, DESIGN.md §7.5).
///
/// The pattern-equality table is built over the *unstripped* query at
/// prepare time. Per candidate only the common-affix lengths are counted;
/// the single-word path then reuses the table by shifting each mask right
/// by the prefix length and truncating to the stripped width — the affix
/// strip without any per-candidate table rebuild (the standalone bounded
/// kernel re-strips and rebuilds `Peq` from scratch for every candidate).
/// Blocked (> 64-char) queries reuse their table whenever no affix is
/// shared; with shared affixes they fall back to the stock kernel, where
/// stripping shrinks the scan enough to dwarf the rebuild.
///
/// Public because the pivot-table builder in `fuzzydedup-nnindex`
/// compiles each pivot once and streams the whole corpus through
/// [`PreparedPattern::bounded_batch`].
pub struct PreparedPattern {
    query: Vec<char>,
    kind: PreparedKind,
    /// Blocked-path column state, reused across candidates.
    pv: Vec<u64>,
    mv: Vec<u64>,
}

// The word-path table dwarfs the blocked variant, but a pattern is
// prepared once per lookup and held by value — boxing would buy bytes
// at the cost of a pointer chase on every candidate.
#[allow(clippy::large_enum_variant)]
enum PreparedKind {
    /// Query ≤ 64 chars (the empty query short-circuits before use).
    Word(PeqWord),
    /// Query > 64 chars.
    Blocked(PeqBlocks),
}

impl PreparedPattern {
    /// Compile a query's equality table once.
    pub fn new(query: Vec<char>) -> Self {
        let kind = if query.len() <= 64 {
            PreparedKind::Word(PeqWord::build(&query))
        } else {
            PreparedKind::Blocked(PeqBlocks::build(&query))
        };
        Self { query, kind, pv: Vec::new(), mv: Vec::new() }
    }

    /// The compiled query.
    pub fn query(&self) -> &[char] {
        &self.query
    }

    /// Common prefix/suffix lengths of the query and a candidate text
    /// (prefix first, then suffix over the remainders — the exact
    /// convention of [`strip_common`], so stripped views agree).
    fn affixes(&self, text: &[char]) -> (usize, usize) {
        let q: &[char] = &self.query;
        let pre = q.iter().zip(text.iter()).take_while(|(x, y)| x == y).count();
        let (qr, tr) = (&q[pre..], &text[pre..]);
        let suf = qr.iter().rev().zip(tr.iter().rev()).take_while(|(x, y)| x == y).count();
        (pre, suf)
    }

    /// Exact distance to a candidate (equivalent to
    /// [`myers_chars`]`(query, text)`).
    pub fn distance(&mut self, text: &[char]) -> usize {
        let (pre, suf) = self.affixes(text);
        let sp_len = self.query.len() - pre - suf;
        let st_len = text.len() - pre - suf;
        if sp_len == 0 {
            return st_len;
        }
        let st = &text[pre..text.len() - suf];
        match &self.kind {
            PreparedKind::Word(peq) => {
                incr(Counter::EdKernelWord, 1);
                word_distance_shifted(peq, pre, sp_len, st)
            }
            PreparedKind::Blocked(peq) if pre == 0 && suf == 0 => {
                incr(Counter::EdKernelBlocked, 1);
                blocked_distance_prepared(peq, self.query.len(), st, &mut self.pv, &mut self.mv)
            }
            PreparedKind::Blocked(_) => myers_chars(&self.query, text),
        }
    }

    /// Batched k-bounded distances: `out[i]` ends up exactly what
    /// [`PreparedPattern::bounded`]`(texts[i], bounds[i])` returns — same
    /// results, same metrics totals — but single-word candidates are
    /// verified in *lock-step*: their per-candidate column states are laid
    /// out struct-of-arrays style and advanced one text column at a time
    /// across several candidates, so the serial dependency chain of one
    /// Myers recurrence overlaps with its neighbors'. Candidates are
    /// sorted into length buckets first so the lanes of a chunk retire
    /// together. Blocked, affix-fallback, and degenerate requests take
    /// the scalar rungs unchanged.
    pub fn bounded_batch(&mut self, requests: &[(&[char], usize)], out: &mut Vec<Option<usize>>) {
        out.clear();
        out.resize(requests.len(), None);
        let mut lanes: Vec<BatchLane> = Vec::with_capacity(requests.len());
        let mut blocked_lanes: Vec<BlockedLane> = Vec::new();
        let mut bounded_calls = 0u64;
        let mut early_exits = 0u64;
        for (i, &(text, bound)) in requests.iter().enumerate() {
            let (pre, suf) = self.affixes(text);
            let sp_len = self.query.len() - pre - suf;
            if let PreparedKind::Blocked(_) = &self.kind {
                // Mirrors the scalar rung: a multi-word window after affix
                // stripping falls back to the stock kernel, a ≤ 64-char
                // window joins the single-word lanes below.
                if (pre != 0 || suf != 0) && sp_len > 64 {
                    out[i] = myers_bounded_chars(&self.query, text, bound);
                    continue;
                }
            }
            bounded_calls += 1;
            let st_len = text.len() - pre - suf;
            if st_len.abs_diff(sp_len) > bound {
                early_exits += 1;
                continue;
            }
            if sp_len == 0 {
                out[i] = (st_len <= bound).then_some(st_len);
                continue;
            }
            let st = &text[pre..text.len() - suf];
            match &self.kind {
                PreparedKind::Word(_) | PreparedKind::Blocked(_) if sp_len <= 64 => {
                    let mask = if sp_len == 64 { !0u64 } else { (1u64 << sp_len) - 1 };
                    lanes.push(BatchLane {
                        text: st,
                        pre: pre as u32,
                        out_idx: i as u32,
                        mask,
                        high: 1u64 << (sp_len - 1),
                        pv: !0u64,
                        mv: 0,
                        score: sp_len as isize,
                        bound: bound as isize,
                    });
                }
                PreparedKind::Word(_) => unreachable!("word queries are ≤ 64 chars"),
                PreparedKind::Blocked(peq) if (2..=BLOCKED_MAX_W).contains(&peq.w) => {
                    blocked_lanes.push(BlockedLane {
                        text: st,
                        out_idx: i as u32,
                        pv: [!0u64; BLOCKED_MAX_W],
                        mv: [0u64; BLOCKED_MAX_W],
                        score: sp_len as isize,
                        bound: bound as isize,
                    });
                }
                PreparedKind::Blocked(peq) => {
                    out[i] = blocked_bounded_prepared(
                        peq,
                        self.query.len(),
                        st,
                        bound,
                        &mut self.pv,
                        &mut self.mv,
                    );
                }
            }
        }
        if bounded_calls > 0 {
            incr(Counter::EdKernelBounded, bounded_calls);
        }
        match &self.kind {
            PreparedKind::Word(peq) => {
                early_exits += word_bounded_lockstep(|c, pre| peq.get(c) >> pre, &mut lanes, out);
            }
            PreparedKind::Blocked(peq) => {
                early_exits +=
                    word_bounded_lockstep(|c, pre| peq.window(c, pre as usize), &mut lanes, out);
                early_exits +=
                    blocked_bounded_lockstep(peq, self.query.len(), &mut blocked_lanes, out);
            }
        }
        if early_exits > 0 {
            incr(Counter::EdKernelEarlyExit, early_exits);
        }
    }

    /// k-bounded distance to a candidate (equivalent to
    /// [`myers_bounded_chars`]`(query, text, bound)`).
    pub fn bounded(&mut self, text: &[char], bound: usize) -> Option<usize> {
        let (pre, suf) = self.affixes(text);
        let sp_len = self.query.len() - pre - suf;
        if let PreparedKind::Blocked(_) = &self.kind {
            // A shared affix leaves a shifted window of the blocked table.
            // When the window still spans multiple words, stripping shrinks
            // the scan enough to dwarf a table rebuild; fall back. A ≤ 64
            // window reuses the table via [`PeqBlocks::window`] below.
            if (pre != 0 || suf != 0) && sp_len > 64 {
                return myers_bounded_chars(&self.query, text, bound);
            }
        }
        incr(Counter::EdKernelBounded, 1);
        let st_len = text.len() - pre - suf;
        // The length gap bounds the distance from below; the query may sit
        // on either side of the candidate's length.
        if st_len.abs_diff(sp_len) > bound {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
        if sp_len == 0 {
            return (st_len <= bound).then_some(st_len);
        }
        let st = &text[pre..text.len() - suf];
        match &self.kind {
            PreparedKind::Word(peq) => word_bounded_shifted(peq, pre, sp_len, st, bound),
            PreparedKind::Blocked(peq) if sp_len <= 64 => {
                blocked_window_bounded(peq, pre, sp_len, st, bound)
            }
            PreparedKind::Blocked(peq) => blocked_bounded_prepared(
                peq,
                self.query.len(),
                st,
                bound,
                &mut self.pv,
                &mut self.mv,
            ),
        }
    }
}

/// Bottom-row bit and significant-width mask for a shifted stripped
/// pattern of `sp_len` chars starting `pre` chars into the compiled query.
#[inline]
fn shifted_masks(pre: usize, sp_len: usize) -> (u64, u64) {
    debug_assert!(sp_len >= 1 && pre + sp_len <= 64);
    let mask = if sp_len == 64 { !0u64 } else { (1u64 << sp_len) - 1 };
    (mask, 1u64 << (sp_len - 1))
}

/// [`word_distance`] driven by shifted prepared masks instead of a
/// freshly built table. Bits above `sp_len − 1` carry garbage exactly as
/// the stock kernel's do above `m − 1`: carries only travel upward, so
/// they never reach the watched bottom-row bit.
fn word_distance_shifted(peq: &PeqWord, pre: usize, sp_len: usize, text: &[char]) -> usize {
    let (mask, high) = shifted_masks(pre, sp_len);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = sp_len as isize;
    for &c in text {
        let eq = (peq.get(c) >> pre) & mask;
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score as usize
}

/// k-bounded [`word_distance_shifted`] with the per-column early exit of
/// [`myers_bounded_chars`].
fn word_bounded_shifted(
    peq: &PeqWord,
    pre: usize,
    sp_len: usize,
    text: &[char],
    bound: usize,
) -> Option<usize> {
    let (mask, high) = shifted_masks(pre, sp_len);
    let n = text.len();
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = sp_len as isize;
    for (j, &c) in text.iter().enumerate() {
        let eq = (peq.get(c) >> pre) & mask;
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        if score - (n - j - 1) as isize > bound as isize {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
    }
    (score as usize <= bound).then_some(score as usize)
}

/// k-bounded single-word kernel over a ≤ 64-char window of a blocked
/// table ([`PeqBlocks::window`]); the affix-stripped fast path for > 64
/// char queries whose candidates share most of both flanks.
fn blocked_window_bounded(
    peq: &PeqBlocks,
    pre: usize,
    sp_len: usize,
    text: &[char],
    bound: usize,
) -> Option<usize> {
    let mask = if sp_len == 64 { !0u64 } else { (1u64 << sp_len) - 1 };
    let high = 1u64 << (sp_len - 1);
    let n = text.len();
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = sp_len as isize;
    for (j, &c) in text.iter().enumerate() {
        let eq = peq.window(c, pre) & mask;
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        if score - (n - j - 1) as isize > bound as isize {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
    }
    (score as usize <= bound).then_some(score as usize)
}

/// One candidate's column state in the lock-step word path: everything
/// [`word_bounded_shifted`] keeps in locals, owned per lane so a chunk of
/// lanes can advance together.
struct BatchLane<'t> {
    text: &'t [char],
    pre: u32,
    out_idx: u32,
    mask: u64,
    high: u64,
    pv: u64,
    mv: u64,
    score: isize,
    bound: isize,
}

/// Lanes advanced together per chunk. Wide enough to overlap the Myers
/// recurrence's serial dependency chain across candidates, small enough
/// that a chunk's state stays in L1.
const BATCH_LANES: usize = 8;

/// Lock-step driver for the shifted single-word path: lanes are sorted
/// into length buckets, then each chunk advances one text column at a
/// time across all its live lanes. Per lane the transition and the
/// early-exit check are bit-identical to [`word_bounded_shifted`];
/// returns the number of early exits (callers aggregate the counter).
///
/// `eq_at(c, pre)` supplies the (unmasked) equality word of `c` for the
/// lane's window: `PeqWord::get >> pre` for word queries,
/// [`PeqBlocks::window`] for ≤ 64-char windows of blocked queries.
fn word_bounded_lockstep(
    eq_at: impl Fn(char, u32) -> u64,
    lanes: &mut [BatchLane],
    out: &mut [Option<usize>],
) -> u64 {
    lanes.sort_unstable_by_key(|l| l.text.len());
    let mut early_exits = 0u64;
    for chunk in lanes.chunks_mut(BATCH_LANES) {
        let mut active = chunk.len();
        let mut j = 0usize;
        while active > 0 {
            let mut i = 0;
            while i < active {
                let lane = &mut chunk[i];
                let n = lane.text.len();
                if j == n {
                    // Same final check as the scalar kernel's fallthrough.
                    out[lane.out_idx as usize] =
                        (lane.score as usize <= lane.bound as usize).then_some(lane.score as usize);
                    active -= 1;
                    chunk.swap(i, active);
                    continue;
                }
                let eq = eq_at(lane.text[j], lane.pre) & lane.mask;
                let xv = eq | lane.mv;
                let xh = (((eq & lane.pv).wrapping_add(lane.pv)) ^ lane.pv) | eq;
                let mut ph = lane.mv | !(xh | lane.pv);
                let mut mh = lane.pv & xh;
                lane.score += isize::from(ph & lane.high != 0);
                lane.score -= isize::from(mh & lane.high != 0);
                ph = (ph << 1) | 1;
                mh <<= 1;
                lane.pv = mh | !(xv | ph);
                lane.mv = ph & xv;
                if lane.score - (n - j - 1) as isize > lane.bound {
                    early_exits += 1;
                    out[lane.out_idx as usize] = None;
                    active -= 1;
                    chunk.swap(i, active);
                    continue;
                }
                i += 1;
            }
            j += 1;
        }
    }
    early_exits
}

/// One candidate's column state in the lock-step blocked path: the
/// `w`-word `Pv`/`Mv` columns [`blocked_bounded_prepared`] keeps in its
/// scratch vectors, inlined into fixed arrays so a chunk of lanes lives
/// in a handful of cache lines.
struct BlockedLane<'t> {
    text: &'t [char],
    out_idx: u32,
    pv: [u64; BLOCKED_MAX_W],
    mv: [u64; BLOCKED_MAX_W],
    score: isize,
    bound: isize,
}

/// Widest blocked query (in 64-row blocks) eligible for lock-step; wider
/// queries take the scalar blocked rung. 4 blocks = 256 pattern chars,
/// comfortably past record-string lengths in the evaluation datasets.
const BLOCKED_MAX_W: usize = 4;

/// Lanes advanced together in the blocked lock-step. Half the word
/// path's width: each lane carries `w ≥ 2` words of column state, so 4
/// lanes already expose enough independent chains to fill the ALUs.
const BLOCKED_BATCH_LANES: usize = 4;

/// Lock-step driver for the blocked (no shared affix) path, the
/// multi-word sibling of [`word_bounded_lockstep`]: per lane the
/// transition and early-exit check are bit-identical to
/// [`blocked_bounded_prepared`]; returns the number of early exits.
fn blocked_bounded_lockstep(
    peq: &PeqBlocks,
    m: usize,
    lanes: &mut [BlockedLane],
    out: &mut [Option<usize>],
) -> u64 {
    if lanes.is_empty() {
        return 0;
    }
    let w = peq.w;
    debug_assert!((2..=BLOCKED_MAX_W).contains(&w));
    let last_high = 1u64 << ((m - 1) % 64);
    lanes.sort_unstable_by_key(|l| l.text.len());
    let mut early_exits = 0u64;
    for chunk in lanes.chunks_mut(BLOCKED_BATCH_LANES) {
        let mut active = chunk.len();
        let mut j = 0usize;
        while active > 0 {
            let mut i = 0;
            while i < active {
                let lane = &mut chunk[i];
                let n = lane.text.len();
                if j == n {
                    out[lane.out_idx as usize] =
                        (lane.score as usize <= lane.bound as usize).then_some(lane.score as usize);
                    active -= 1;
                    chunk.swap(i, active);
                    continue;
                }
                let eqs = peq.get(lane.text[j]);
                let mut hin = 1i32;
                for (k, &eq) in eqs.iter().enumerate().take(w) {
                    let high = if k + 1 == w { last_high } else { 1u64 << 63 };
                    hin = advance_block(&mut lane.pv[k], &mut lane.mv[k], eq, hin, high);
                }
                lane.score += hin as isize;
                if lane.score - (n - j - 1) as isize > lane.bound {
                    early_exits += 1;
                    out[lane.out_idx as usize] = None;
                    active -= 1;
                    chunk.swap(i, active);
                    continue;
                }
                i += 1;
            }
            j += 1;
        }
    }
    early_exits
}

/// [`blocked_distance`] over a prepared table, with the column state
/// borrowed from the prepared query so repeated candidates allocate
/// nothing.
fn blocked_distance_prepared(
    peq: &PeqBlocks,
    m: usize,
    text: &[char],
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
) -> usize {
    let w = peq.w;
    debug_assert!(w >= 2);
    let last_high = 1u64 << ((m - 1) % 64);
    pv.clear();
    pv.resize(w, !0u64);
    mv.clear();
    mv.resize(w, 0);
    let mut score = m as isize;
    for &c in text {
        let eqs = peq.get(c);
        let mut hin = 1i32;
        for k in 0..w {
            let high = if k + 1 == w { last_high } else { 1u64 << 63 };
            hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
        }
        score += hin as isize;
    }
    score as usize
}

/// k-bounded [`blocked_distance_prepared`].
fn blocked_bounded_prepared(
    peq: &PeqBlocks,
    m: usize,
    text: &[char],
    bound: usize,
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
) -> Option<usize> {
    let w = peq.w;
    debug_assert!(w >= 2);
    let last_high = 1u64 << ((m - 1) % 64);
    pv.clear();
    pv.resize(w, !0u64);
    mv.clear();
    mv.resize(w, 0);
    let n = text.len();
    let mut score = m as isize;
    for (j, &c) in text.iter().enumerate() {
        let eqs = peq.get(c);
        let mut hin = 1i32;
        for k in 0..w {
            let high = if k + 1 == w { last_high } else { 1u64 << 63 };
            hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
        }
        score += hin as isize;
        if score - (n - j - 1) as isize > bound as isize {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
    }
    (score as usize <= bound).then_some(score as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::{levenshtein_banded, levenshtein_dp};

    #[test]
    fn classic_examples() {
        let _serial = fuzzydedup_metrics::serial_guard();
        assert_eq!(myers("kitten", "sitting"), 3);
        assert_eq!(myers("flaw", "lawn"), 2);
        assert_eq!(myers("gumbo", "gambol"), 2);
        assert_eq!(myers("", ""), 0);
        assert_eq!(myers("a", ""), 1);
        assert_eq!(myers("", "a"), 1);
        assert_eq!(myers("same", "same"), 0);
    }

    #[test]
    fn unicode_chars_count_once() {
        let _serial = fuzzydedup_metrics::serial_guard();
        assert_eq!(myers("café", "cafe"), 1);
        assert_eq!(myers("日本語", "日本"), 1);
        assert_eq!(myers("αβγδ", "αβxδ"), 1);
    }

    #[test]
    fn exact_word_boundary_lengths() {
        let _serial = fuzzydedup_metrics::serial_guard();
        // Pattern lengths 63, 64, 65 straddle the word/blocked dispatch.
        for m in [1usize, 2, 63, 64, 65, 128, 129, 200] {
            let a: String = (0..m).map(|i| (b'a' + (i % 23) as u8) as char).collect();
            let mut b = a.clone();
            b.push('!');
            let b = b.replace('c', "k");
            assert_eq!(myers(&a, &b), levenshtein_dp(&a, &b), "m={m}");
            assert_eq!(myers(&a, &a), 0, "m={m}");
        }
    }

    #[test]
    fn blocked_path_matches_dp_on_long_strings() {
        let _serial = fuzzydedup_metrics::serial_guard();
        let a = "the quick brown fox jumps over the lazy dog, then naps in the warm afternoon sun";
        let b = "the quick brown cat jumps over the lazy dog, then naps in a warm afternoon sun!";
        assert!(a.chars().count() > 64);
        assert_eq!(myers(a, b), levenshtein_dp(a, b));
    }

    #[test]
    fn bounded_agrees_with_banded_dp_both_sides() {
        let _serial = fuzzydedup_metrics::serial_guard();
        let pairs = [
            ("kitten", "sitting"),
            ("the doors la woman", "doors la woman"),
            ("abc", "xyz"),
            ("", "abc"),
            ("same", "same"),
            ("microsoft corp", "microsft corporation"),
        ];
        for (a, b) in pairs {
            let exact = levenshtein_dp(a, b);
            for bound in 0..=exact + 2 {
                assert_eq!(
                    myers_bounded(a, b, bound),
                    levenshtein_banded(a, b, bound),
                    "{a:?} vs {b:?} bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap() {
        let _serial = fuzzydedup_metrics::serial_guard();
        assert_eq!(myers_bounded("ab", "abcdefgh", 3), None);
        assert_eq!(myers_bounded("abcdefgh", "ab", 3), None);
    }

    #[test]
    fn bounded_long_strings() {
        let _serial = fuzzydedup_metrics::serial_guard();
        let a: String = (0..150).map(|i| (b'a' + (i % 17) as u8) as char).collect();
        let mut b: Vec<char> = a.chars().collect();
        b[10] = 'z';
        b[90] = 'z';
        let b: String = b.into_iter().collect();
        assert_eq!(myers_bounded(&a, &b, 2), Some(2));
        assert_eq!(myers_bounded(&a, &b, 1), None);
    }

    #[test]
    fn prepared_pattern_matches_stock_kernels() {
        let _serial = fuzzydedup_metrics::serial_guard();
        let queries = [
            "",
            "a",
            "the doors",
            "microsoft corporation",
            // Exactly 64 chars (mask edge), then > 64 (blocked kind).
            &"x".repeat(64),
            &format!("a{}b", "y".repeat(78)),
            &"prefix shared middle differs suffix shared tail tail tail tail tail!".repeat(2),
        ];
        let texts = [
            "",
            "a",
            "doors",
            "the doors la woman",
            "microsft corp",
            &"x".repeat(64),
            &"x".repeat(90),
            &format!("a{}b", "y".repeat(78)),
            &format!("c{}d", "y".repeat(78)),
            &"prefix shared middle DIFFERS suffix shared tail tail tail tail tail!".repeat(2),
        ];
        for q in queries {
            let qc: Vec<char> = q.chars().collect();
            let mut prepared = PreparedPattern::new(qc.clone());
            for t in texts {
                let tc: Vec<char> = t.chars().collect();
                let exact = myers_chars(&qc, &tc);
                assert_eq!(prepared.distance(&tc), exact, "{q:?} vs {t:?}");
                for bound in [0, 1, exact.saturating_sub(1), exact, exact + 1, exact + 10] {
                    assert_eq!(
                        prepared.bounded(&tc, bound),
                        myers_bounded_chars(&qc, &tc, bound),
                        "{q:?} vs {t:?} bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_batch_matches_scalar_bounded() {
        // Emits enough kernel counters to pollute concurrently-running
        // exact-counter assertions; serialize with them.
        let _serial = fuzzydedup_metrics::serial_guard();
        let queries = [
            "",
            "a",
            "the doors",
            "microsoft corporation",
            &"x".repeat(64),
            &format!("a{}b", "y".repeat(78)),
            // Blocked query whose candidates share long affixes: the
            // stripped window fits one word and joins the word lanes.
            &"prefix shared middle differs suffix shared tail tail tail tail tail!".repeat(2),
        ];
        let texts: Vec<String> = vec![
            String::new(),
            "a".into(),
            "doors".into(),
            "the doors la woman".into(),
            "microsft corp".into(),
            "日本語 café".into(),
            "x".repeat(64),
            "x".repeat(90),
            format!("a{}b", "y".repeat(78)),
            format!("c{}d", "y".repeat(78)),
            "completely unrelated".into(),
            "prefix shared middle DIFFERS suffix shared tail tail tail tail tail!".repeat(2),
            "prefix shared middle differs suffix shared tail tail tail tail tail?".repeat(2),
        ];
        let text_chars: Vec<Vec<char>> = texts.iter().map(|t| t.chars().collect()).collect();
        for q in queries {
            let qc: Vec<char> = q.chars().collect();
            let mut scalar = PreparedPattern::new(qc.clone());
            let mut batched = PreparedPattern::new(qc.clone());
            for bound in [0usize, 1, 2, 5, 30, 100] {
                let requests: Vec<(&[char], usize)> =
                    text_chars.iter().map(|t| (t.as_slice(), bound)).collect();
                let expect: Vec<Option<usize>> =
                    text_chars.iter().map(|t| scalar.bounded(t, bound)).collect();
                let mut out = Vec::new();
                batched.bounded_batch(&requests, &mut out);
                assert_eq!(out, expect, "{q:?} bound {bound}");
                // Ragged tails and batch size 1 reuse the same lanes.
                for chunk in requests.chunks(1).chain(requests.chunks(3)) {
                    let mut small = Vec::new();
                    batched.bounded_batch(chunk, &mut small);
                    for (req, got) in chunk.iter().zip(&small) {
                        assert_eq!(*got, scalar.bounded(req.0, req.1), "{q:?} bound {bound}");
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_batch_counters_match_scalar() {
        let _serial = fuzzydedup_metrics::serial_guard();
        fuzzydedup_metrics::enable();
        let query: Vec<char> = "golden dragon palace".chars().collect();
        let texts: Vec<Vec<char>> =
            ["golden dragon palce", "golden dragon", "palace dragon golden", "zzz"]
                .iter()
                .map(|t| t.chars().collect())
                .collect();
        let mut scalar = PreparedPattern::new(query.clone());
        let before = fuzzydedup_metrics::snapshot();
        for t in &texts {
            scalar.bounded(t, 6);
        }
        let scalar_delta = fuzzydedup_metrics::snapshot().delta(&before);
        let mut batched = PreparedPattern::new(query);
        let requests: Vec<(&[char], usize)> = texts.iter().map(|t| (t.as_slice(), 6)).collect();
        let before = fuzzydedup_metrics::snapshot();
        let mut out = Vec::new();
        batched.bounded_batch(&requests, &mut out);
        let batch_delta = fuzzydedup_metrics::snapshot().delta(&before);
        for c in [Counter::EdKernelBounded, Counter::EdKernelEarlyExit, Counter::EdKernelWord] {
            assert_eq!(batch_delta.get(c), scalar_delta.get(c), "{c:?}");
        }
    }

    #[test]
    fn prepared_word_path_does_not_rebuild_tables() {
        // The shifted single-word path must take the bounded rung exactly
        // once per candidate and never the unbounded word rung.
        let _serial = fuzzydedup_metrics::serial_guard();
        fuzzydedup_metrics::enable();
        let query: Vec<char> = "golden dragon palace".chars().collect();
        let mut prepared = PreparedPattern::new(query);
        let before = fuzzydedup_metrics::snapshot();
        for t in ["golden dragon palce", "golden dragon", "palace dragon golden"] {
            let tc: Vec<char> = t.chars().collect();
            prepared.bounded(&tc, 30);
        }
        let delta = fuzzydedup_metrics::snapshot().delta(&before);
        assert_eq!(delta.get(Counter::EdKernelBounded), 3);
        assert_eq!(delta.get(Counter::EdKernelWord), 0);
    }

    #[test]
    fn records_kernel_path_counters() {
        let _serial = fuzzydedup_metrics::serial_guard();
        fuzzydedup_metrics::enable();
        let before = fuzzydedup_metrics::snapshot();
        myers("short", "strings");
        // Differences at both ends keep the pattern > 64 chars after
        // affix stripping, forcing the blocked path.
        let long_a: String = format!("a{}b", "x".repeat(78));
        let long_b: String = format!("c{}d", "x".repeat(78));
        myers(&long_a, &long_b);
        myers_bounded("completely", "different!", 1);
        let delta = fuzzydedup_metrics::snapshot().delta(&before);
        assert_eq!(delta.get(Counter::EdKernelWord), 1);
        assert_eq!(delta.get(Counter::EdKernelBlocked), 1);
        assert_eq!(delta.get(Counter::EdKernelBounded), 1);
        assert!(delta.get(Counter::EdKernelEarlyExit) >= 1);
    }
}
