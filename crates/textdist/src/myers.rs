//! Myers' 1999 bit-parallel Levenshtein kernel.
//!
//! Computes the unit-cost edit distance by encoding a whole column of the
//! DP matrix in the bits of machine words: the vertical deltas
//! `D[i][j] − D[i−1][j] ∈ {−1, 0, +1}` are held as a positive mask `Pv`
//! and a negative mask `Mv`, and one column transition is ~15 word
//! operations regardless of the pattern length — `O(⌈m/64⌉·n)` total
//! versus the classic DP's `O(m·n)` cell updates (G. Myers, *A fast
//! bit-vector algorithm for approximate string matching based on dynamic
//! programming*, JACM 1999; block formulation after Hyyrö 2003).
//!
//! All entry points first strip the common prefix and suffix (equal
//! flanks cannot change the distance, and near-duplicate pairs — the
//! dominant verification workload — share most of both), then dispatch on
//! the *stripped* pattern length.
//!
//! Three entry points form the kernel-selection ladder (`DESIGN.md`):
//!
//! * [`myers_chars`] — dispatches to the **single-word** path when the
//!   shorter string fits 64 chars, else the **blocked** multi-word path;
//! * [`myers_bounded_chars`] — the **k-bounded** variant used by
//!   nearest-neighbor candidate verification: abandons the computation as
//!   soon as the distance provably exceeds the cutoff (length gap, or the
//!   running bottom-row score can no longer descend below `k`);
//! * [`crate::edit::levenshtein`] / [`crate::edit::levenshtein_bounded`]
//!   — the public edit-distance API, which routes here.
//!
//! Every invocation records which rung fired into the process-global
//! metrics counters (`edit_kernel` section of `RunMetrics`), so pipeline
//! runs show which path verification actually took.

use fuzzydedup_metrics::{incr, Counter};

/// Pattern-equality bitmasks for a ≤ 64-char pattern: `get(c)` has bit
/// `i` set iff `pattern[i] == c`. ASCII is direct-indexed; other scalars
/// go to a (tiny, usually empty) spill list.
struct PeqWord {
    ascii: [u64; 128],
    spill: Vec<(char, u64)>,
}

impl PeqWord {
    fn build(pattern: &[char]) -> Self {
        debug_assert!(pattern.len() <= 64);
        let mut ascii = [0u64; 128];
        let mut spill: Vec<(char, u64)> = Vec::new();
        for (i, &c) in pattern.iter().enumerate() {
            let bit = 1u64 << i;
            if (c as u32) < 128 {
                ascii[c as usize] |= bit;
            } else if let Some(entry) = spill.iter_mut().find(|(s, _)| *s == c) {
                entry.1 |= bit;
            } else {
                spill.push((c, bit));
            }
        }
        Self { ascii, spill }
    }

    #[inline]
    fn get(&self, c: char) -> u64 {
        if (c as u32) < 128 {
            self.ascii[c as usize]
        } else {
            self.spill.iter().find(|(s, _)| *s == c).map_or(0, |(_, bits)| *bits)
        }
    }
}

/// Pattern-equality bitmasks for a blocked (> 64-char) pattern: one word
/// per 64-row block, `w` words per character.
struct PeqBlocks {
    w: usize,
    /// `128 × w` words, ASCII direct-indexed: `ascii[c*w + k]`.
    ascii: Vec<u64>,
    spill: Vec<(char, Vec<u64>)>,
    zero: Vec<u64>,
}

impl PeqBlocks {
    fn build(pattern: &[char]) -> Self {
        let w = pattern.len().div_ceil(64);
        let mut ascii = vec![0u64; 128 * w];
        let mut spill: Vec<(char, Vec<u64>)> = Vec::new();
        for (i, &c) in pattern.iter().enumerate() {
            let (block, bit) = (i / 64, 1u64 << (i % 64));
            if (c as u32) < 128 {
                ascii[c as usize * w + block] |= bit;
            } else if let Some(entry) = spill.iter_mut().find(|(s, _)| *s == c) {
                entry.1[block] |= bit;
            } else {
                let mut masks = vec![0u64; w];
                masks[block] |= bit;
                spill.push((c, masks));
            }
        }
        Self { w, ascii, spill, zero: vec![0u64; w] }
    }

    /// The `w` equality words of `c` (all-zero slice for absent chars).
    #[inline]
    fn get(&self, c: char) -> &[u64] {
        if (c as u32) < 128 {
            &self.ascii[c as usize * self.w..(c as usize + 1) * self.w]
        } else {
            self.spill.iter().find(|(s, _)| *s == c).map_or(&self.zero[..], |(_, m)| m)
        }
    }
}

/// One column transition of one 64-row block (Hyyrö's formulation of the
/// Myers recurrence, with explicit horizontal carries between blocks).
///
/// `hin`/`hout` are the horizontal deltas entering the block's top row
/// and leaving its bottom row (`high` selects the bottom row's bit; for a
/// partial last block that is bit `m%64 − 1`, and garbage above it never
/// propagates downward — carries in the embedded addition only travel
/// toward higher bits).
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, mut eq: u64, hin: i32, high: u64) -> i32 {
    let xv = eq | *mv;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let mut hout = 0i32;
    if ph & high != 0 {
        hout += 1;
    }
    if mh & high != 0 {
        hout -= 1;
    }
    ph <<= 1;
    mh <<= 1;
    match hin.cmp(&0) {
        std::cmp::Ordering::Less => mh |= 1,
        std::cmp::Ordering::Greater => ph |= 1,
        std::cmp::Ordering::Equal => {}
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Strip the common prefix and suffix of two strings: equal flanks never
/// change the Levenshtein distance, and near-duplicates (the dominant
/// verification workload) share most of both.
fn strip_common<'s>(mut a: &'s [char], mut b: &'s [char]) -> (&'s [char], &'s [char]) {
    let pre = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    a = &a[pre..];
    b = &b[pre..];
    let suf = a.iter().rev().zip(b.iter().rev()).take_while(|(x, y)| x == y).count();
    (&a[..a.len() - suf], &b[..b.len() - suf])
}

/// Single-word Myers: pattern ≤ 64 chars, any text length. Returns the
/// exact Levenshtein distance. The column transition is [`advance_block`]
/// specialized to `hin = +1` (the top boundary row `D[0][j] = j`), which
/// keeps the state in registers with no carry branches.
fn word_distance(pattern: &[char], text: &[char]) -> usize {
    debug_assert!(!pattern.is_empty() && pattern.len() <= 64);
    let m = pattern.len();
    let peq = PeqWord::build(pattern);
    let high = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m as isize;
    for &c in text {
        let eq = peq.get(c);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score as usize
}

/// Blocked Myers: pattern of any length, `⌈m/64⌉` words per column.
fn blocked_distance(pattern: &[char], text: &[char]) -> usize {
    let m = pattern.len();
    let w = m.div_ceil(64);
    debug_assert!(w >= 2);
    let peq = PeqBlocks::build(pattern);
    // Bottom row of the last (possibly partial) block.
    let last_high = 1u64 << ((m - 1) % 64);
    let mut pv = vec![!0u64; w];
    let mut mv = vec![0u64; w];
    let mut score = m as isize;
    for &c in text {
        let eqs = peq.get(c);
        let mut hin = 1i32;
        for k in 0..w {
            let high = if k + 1 == w { last_high } else { 1u64 << 63 };
            hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
        }
        score += hin as isize;
    }
    score as usize
}

/// Bit-parallel Levenshtein distance over pre-collected char slices.
/// Dispatches to the single-word path when the shorter string fits one
/// machine word, else the blocked multi-word path. Exact for all inputs
/// (equivalence with the reference DP is property-tested).
pub fn myers_chars(a: &[char], b: &[char]) -> usize {
    let (a, b) = strip_common(a, b);
    // Shorter side as the pattern: fewer blocks, and the single-word path
    // applies whenever min(|a|, |b|) ≤ 64 after affix stripping.
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pattern.is_empty() {
        return text.len();
    }
    if pattern.len() <= 64 {
        incr(Counter::EdKernelWord, 1);
        word_distance(pattern, text)
    } else {
        incr(Counter::EdKernelBlocked, 1);
        blocked_distance(pattern, text)
    }
}

/// [`myers_chars`] over `&str` inputs (chars collected internally).
///
/// ```
/// use fuzzydedup_textdist::myers;
/// assert_eq!(myers("kitten", "sitting"), 3);
/// assert_eq!(myers("", "abc"), 3);
/// ```
pub fn myers(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    myers_chars(&a, &b)
}

/// k-bounded Myers over pre-collected char slices: `Some(d)` iff the
/// distance `d` is `≤ bound`, `None` as soon as it provably exceeds it.
///
/// The early exit watches the bottom-row score: column `j`'s score can
/// decrease by at most 1 per remaining column, so once
/// `score − (n − j) > bound` no suffix can recover. Verification loops in
/// the nearest-neighbor indexes call this with their current best-so-far
/// distance as the cutoff, which abandons most losing candidates after a
/// prefix of the text.
pub fn myers_bounded_chars(a: &[char], b: &[char], bound: usize) -> Option<usize> {
    incr(Counter::EdKernelBounded, 1);
    let (a, b) = strip_common(a, b);
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // The length gap is a lower bound on the distance.
    if text.len() - pattern.len() > bound {
        incr(Counter::EdKernelEarlyExit, 1);
        return None;
    }
    if pattern.is_empty() {
        return (text.len() <= bound).then_some(text.len());
    }
    let n = text.len();
    let m = pattern.len();
    if m <= 64 {
        let peq = PeqWord::build(pattern);
        let high = 1u64 << (m - 1);
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = m as isize;
        for (j, &c) in text.iter().enumerate() {
            let eq = peq.get(c);
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            score += isize::from(ph & high != 0);
            score -= isize::from(mh & high != 0);
            ph = (ph << 1) | 1;
            mh <<= 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
            // Each remaining column can lower the score by at most 1.
            if score - (n - j - 1) as isize > bound as isize {
                incr(Counter::EdKernelEarlyExit, 1);
                return None;
            }
        }
        (score as usize <= bound).then_some(score as usize)
    } else {
        let w = m.div_ceil(64);
        let peq = PeqBlocks::build(pattern);
        let last_high = 1u64 << ((m - 1) % 64);
        let mut pv = vec![!0u64; w];
        let mut mv = vec![0u64; w];
        let mut score = m as isize;
        for (j, &c) in text.iter().enumerate() {
            let eqs = peq.get(c);
            let mut hin = 1i32;
            for k in 0..w {
                let high = if k + 1 == w { last_high } else { 1u64 << 63 };
                hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
            }
            score += hin as isize;
            if score - (n - j - 1) as isize > bound as isize {
                incr(Counter::EdKernelEarlyExit, 1);
                return None;
            }
        }
        (score as usize <= bound).then_some(score as usize)
    }
}

/// [`myers_bounded_chars`] over `&str` inputs.
///
/// ```
/// use fuzzydedup_textdist::myers_bounded;
/// assert_eq!(myers_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(myers_bounded("kitten", "sitting", 2), None);
/// ```
pub fn myers_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    myers_bounded_chars(&a, &b, bound)
}

/// A query compiled once for repeated edit-distance evaluation against
/// many candidate texts (the prepared-distance layer, DESIGN.md §7.5).
///
/// The pattern-equality table is built over the *unstripped* query at
/// prepare time. Per candidate only the common-affix lengths are counted;
/// the single-word path then reuses the table by shifting each mask right
/// by the prefix length and truncating to the stripped width — the affix
/// strip without any per-candidate table rebuild (the standalone bounded
/// kernel re-strips and rebuilds `Peq` from scratch for every candidate).
/// Blocked (> 64-char) queries reuse their table whenever no affix is
/// shared; with shared affixes they fall back to the stock kernel, where
/// stripping shrinks the scan enough to dwarf the rebuild.
pub(crate) struct PreparedPattern {
    query: Vec<char>,
    kind: PreparedKind,
    /// Blocked-path column state, reused across candidates.
    pv: Vec<u64>,
    mv: Vec<u64>,
}

// The word-path table dwarfs the blocked variant, but a pattern is
// prepared once per lookup and held by value — boxing would buy bytes
// at the cost of a pointer chase on every candidate.
#[allow(clippy::large_enum_variant)]
enum PreparedKind {
    /// Query ≤ 64 chars (the empty query short-circuits before use).
    Word(PeqWord),
    /// Query > 64 chars.
    Blocked(PeqBlocks),
}

impl PreparedPattern {
    /// Compile a query's equality table once.
    pub fn new(query: Vec<char>) -> Self {
        let kind = if query.len() <= 64 {
            PreparedKind::Word(PeqWord::build(&query))
        } else {
            PreparedKind::Blocked(PeqBlocks::build(&query))
        };
        Self { query, kind, pv: Vec::new(), mv: Vec::new() }
    }

    /// The compiled query.
    pub fn query(&self) -> &[char] {
        &self.query
    }

    /// Common prefix/suffix lengths of the query and a candidate text
    /// (prefix first, then suffix over the remainders — the exact
    /// convention of [`strip_common`], so stripped views agree).
    fn affixes(&self, text: &[char]) -> (usize, usize) {
        let q: &[char] = &self.query;
        let pre = q.iter().zip(text.iter()).take_while(|(x, y)| x == y).count();
        let (qr, tr) = (&q[pre..], &text[pre..]);
        let suf = qr.iter().rev().zip(tr.iter().rev()).take_while(|(x, y)| x == y).count();
        (pre, suf)
    }

    /// Exact distance to a candidate (equivalent to
    /// [`myers_chars`]`(query, text)`).
    pub fn distance(&mut self, text: &[char]) -> usize {
        let (pre, suf) = self.affixes(text);
        let sp_len = self.query.len() - pre - suf;
        let st_len = text.len() - pre - suf;
        if sp_len == 0 {
            return st_len;
        }
        let st = &text[pre..text.len() - suf];
        match &self.kind {
            PreparedKind::Word(peq) => {
                incr(Counter::EdKernelWord, 1);
                word_distance_shifted(peq, pre, sp_len, st)
            }
            PreparedKind::Blocked(peq) if pre == 0 && suf == 0 => {
                incr(Counter::EdKernelBlocked, 1);
                blocked_distance_prepared(peq, self.query.len(), st, &mut self.pv, &mut self.mv)
            }
            PreparedKind::Blocked(_) => myers_chars(&self.query, text),
        }
    }

    /// k-bounded distance to a candidate (equivalent to
    /// [`myers_bounded_chars`]`(query, text, bound)`).
    pub fn bounded(&mut self, text: &[char], bound: usize) -> Option<usize> {
        let (pre, suf) = self.affixes(text);
        if let PreparedKind::Blocked(_) = &self.kind {
            if pre != 0 || suf != 0 {
                return myers_bounded_chars(&self.query, text, bound);
            }
        }
        incr(Counter::EdKernelBounded, 1);
        let sp_len = self.query.len() - pre - suf;
        let st_len = text.len() - pre - suf;
        // The length gap bounds the distance from below; the query may sit
        // on either side of the candidate's length.
        if st_len.abs_diff(sp_len) > bound {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
        if sp_len == 0 {
            return (st_len <= bound).then_some(st_len);
        }
        let st = &text[pre..text.len() - suf];
        match &self.kind {
            PreparedKind::Word(peq) => word_bounded_shifted(peq, pre, sp_len, st, bound),
            PreparedKind::Blocked(peq) => blocked_bounded_prepared(
                peq,
                self.query.len(),
                st,
                bound,
                &mut self.pv,
                &mut self.mv,
            ),
        }
    }
}

/// Bottom-row bit and significant-width mask for a shifted stripped
/// pattern of `sp_len` chars starting `pre` chars into the compiled query.
#[inline]
fn shifted_masks(pre: usize, sp_len: usize) -> (u64, u64) {
    debug_assert!(sp_len >= 1 && pre + sp_len <= 64);
    let mask = if sp_len == 64 { !0u64 } else { (1u64 << sp_len) - 1 };
    (mask, 1u64 << (sp_len - 1))
}

/// [`word_distance`] driven by shifted prepared masks instead of a
/// freshly built table. Bits above `sp_len − 1` carry garbage exactly as
/// the stock kernel's do above `m − 1`: carries only travel upward, so
/// they never reach the watched bottom-row bit.
fn word_distance_shifted(peq: &PeqWord, pre: usize, sp_len: usize, text: &[char]) -> usize {
    let (mask, high) = shifted_masks(pre, sp_len);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = sp_len as isize;
    for &c in text {
        let eq = (peq.get(c) >> pre) & mask;
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score as usize
}

/// k-bounded [`word_distance_shifted`] with the per-column early exit of
/// [`myers_bounded_chars`].
fn word_bounded_shifted(
    peq: &PeqWord,
    pre: usize,
    sp_len: usize,
    text: &[char],
    bound: usize,
) -> Option<usize> {
    let (mask, high) = shifted_masks(pre, sp_len);
    let n = text.len();
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = sp_len as isize;
    for (j, &c) in text.iter().enumerate() {
        let eq = (peq.get(c) >> pre) & mask;
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        score += isize::from(ph & high != 0);
        score -= isize::from(mh & high != 0);
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        if score - (n - j - 1) as isize > bound as isize {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
    }
    (score as usize <= bound).then_some(score as usize)
}

/// [`blocked_distance`] over a prepared table, with the column state
/// borrowed from the prepared query so repeated candidates allocate
/// nothing.
fn blocked_distance_prepared(
    peq: &PeqBlocks,
    m: usize,
    text: &[char],
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
) -> usize {
    let w = peq.w;
    debug_assert!(w >= 2);
    let last_high = 1u64 << ((m - 1) % 64);
    pv.clear();
    pv.resize(w, !0u64);
    mv.clear();
    mv.resize(w, 0);
    let mut score = m as isize;
    for &c in text {
        let eqs = peq.get(c);
        let mut hin = 1i32;
        for k in 0..w {
            let high = if k + 1 == w { last_high } else { 1u64 << 63 };
            hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
        }
        score += hin as isize;
    }
    score as usize
}

/// k-bounded [`blocked_distance_prepared`].
fn blocked_bounded_prepared(
    peq: &PeqBlocks,
    m: usize,
    text: &[char],
    bound: usize,
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
) -> Option<usize> {
    let w = peq.w;
    debug_assert!(w >= 2);
    let last_high = 1u64 << ((m - 1) % 64);
    pv.clear();
    pv.resize(w, !0u64);
    mv.clear();
    mv.resize(w, 0);
    let n = text.len();
    let mut score = m as isize;
    for (j, &c) in text.iter().enumerate() {
        let eqs = peq.get(c);
        let mut hin = 1i32;
        for k in 0..w {
            let high = if k + 1 == w { last_high } else { 1u64 << 63 };
            hin = advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, high);
        }
        score += hin as isize;
        if score - (n - j - 1) as isize > bound as isize {
            incr(Counter::EdKernelEarlyExit, 1);
            return None;
        }
    }
    (score as usize <= bound).then_some(score as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::{levenshtein_banded, levenshtein_dp};

    #[test]
    fn classic_examples() {
        assert_eq!(myers("kitten", "sitting"), 3);
        assert_eq!(myers("flaw", "lawn"), 2);
        assert_eq!(myers("gumbo", "gambol"), 2);
        assert_eq!(myers("", ""), 0);
        assert_eq!(myers("a", ""), 1);
        assert_eq!(myers("", "a"), 1);
        assert_eq!(myers("same", "same"), 0);
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(myers("café", "cafe"), 1);
        assert_eq!(myers("日本語", "日本"), 1);
        assert_eq!(myers("αβγδ", "αβxδ"), 1);
    }

    #[test]
    fn exact_word_boundary_lengths() {
        // Pattern lengths 63, 64, 65 straddle the word/blocked dispatch.
        for m in [1usize, 2, 63, 64, 65, 128, 129, 200] {
            let a: String = (0..m).map(|i| (b'a' + (i % 23) as u8) as char).collect();
            let mut b = a.clone();
            b.push('!');
            let b = b.replace('c', "k");
            assert_eq!(myers(&a, &b), levenshtein_dp(&a, &b), "m={m}");
            assert_eq!(myers(&a, &a), 0, "m={m}");
        }
    }

    #[test]
    fn blocked_path_matches_dp_on_long_strings() {
        let a = "the quick brown fox jumps over the lazy dog, then naps in the warm afternoon sun";
        let b = "the quick brown cat jumps over the lazy dog, then naps in a warm afternoon sun!";
        assert!(a.chars().count() > 64);
        assert_eq!(myers(a, b), levenshtein_dp(a, b));
    }

    #[test]
    fn bounded_agrees_with_banded_dp_both_sides() {
        let pairs = [
            ("kitten", "sitting"),
            ("the doors la woman", "doors la woman"),
            ("abc", "xyz"),
            ("", "abc"),
            ("same", "same"),
            ("microsoft corp", "microsft corporation"),
        ];
        for (a, b) in pairs {
            let exact = levenshtein_dp(a, b);
            for bound in 0..=exact + 2 {
                assert_eq!(
                    myers_bounded(a, b, bound),
                    levenshtein_banded(a, b, bound),
                    "{a:?} vs {b:?} bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap() {
        assert_eq!(myers_bounded("ab", "abcdefgh", 3), None);
        assert_eq!(myers_bounded("abcdefgh", "ab", 3), None);
    }

    #[test]
    fn bounded_long_strings() {
        let a: String = (0..150).map(|i| (b'a' + (i % 17) as u8) as char).collect();
        let mut b: Vec<char> = a.chars().collect();
        b[10] = 'z';
        b[90] = 'z';
        let b: String = b.into_iter().collect();
        assert_eq!(myers_bounded(&a, &b, 2), Some(2));
        assert_eq!(myers_bounded(&a, &b, 1), None);
    }

    #[test]
    fn prepared_pattern_matches_stock_kernels() {
        let queries = [
            "",
            "a",
            "the doors",
            "microsoft corporation",
            // Exactly 64 chars (mask edge), then > 64 (blocked kind).
            &"x".repeat(64),
            &format!("a{}b", "y".repeat(78)),
            &"prefix shared middle differs suffix shared tail tail tail tail tail!".repeat(2),
        ];
        let texts = [
            "",
            "a",
            "doors",
            "the doors la woman",
            "microsft corp",
            &"x".repeat(64),
            &"x".repeat(90),
            &format!("a{}b", "y".repeat(78)),
            &format!("c{}d", "y".repeat(78)),
            &"prefix shared middle DIFFERS suffix shared tail tail tail tail tail!".repeat(2),
        ];
        for q in queries {
            let qc: Vec<char> = q.chars().collect();
            let mut prepared = PreparedPattern::new(qc.clone());
            for t in texts {
                let tc: Vec<char> = t.chars().collect();
                let exact = myers_chars(&qc, &tc);
                assert_eq!(prepared.distance(&tc), exact, "{q:?} vs {t:?}");
                for bound in [0, 1, exact.saturating_sub(1), exact, exact + 1, exact + 10] {
                    assert_eq!(
                        prepared.bounded(&tc, bound),
                        myers_bounded_chars(&qc, &tc, bound),
                        "{q:?} vs {t:?} bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn prepared_word_path_does_not_rebuild_tables() {
        // The shifted single-word path must take the bounded rung exactly
        // once per candidate and never the unbounded word rung.
        let _serial = fuzzydedup_metrics::serial_guard();
        fuzzydedup_metrics::enable();
        let query: Vec<char> = "golden dragon palace".chars().collect();
        let mut prepared = PreparedPattern::new(query);
        let before = fuzzydedup_metrics::snapshot();
        for t in ["golden dragon palce", "golden dragon", "palace dragon golden"] {
            let tc: Vec<char> = t.chars().collect();
            prepared.bounded(&tc, 30);
        }
        let delta = fuzzydedup_metrics::snapshot().delta(&before);
        assert_eq!(delta.get(Counter::EdKernelBounded), 3);
        assert_eq!(delta.get(Counter::EdKernelWord), 0);
    }

    #[test]
    fn records_kernel_path_counters() {
        let _serial = fuzzydedup_metrics::serial_guard();
        fuzzydedup_metrics::enable();
        let before = fuzzydedup_metrics::snapshot();
        myers("short", "strings");
        // Differences at both ends keep the pattern > 64 chars after
        // affix stripping, forcing the blocked path.
        let long_a: String = format!("a{}b", "x".repeat(78));
        let long_b: String = format!("c{}d", "x".repeat(78));
        myers(&long_a, &long_b);
        myers_bounded("completely", "different!", 1);
        let delta = fuzzydedup_metrics::snapshot().delta(&before);
        assert_eq!(delta.get(Counter::EdKernelWord), 1);
        assert_eq!(delta.get(Counter::EdKernelBlocked), 1);
        assert_eq!(delta.get(Counter::EdKernelBounded), 1);
        assert!(delta.get(Counter::EdKernelEarlyExit) >= 1);
    }
}
