//! q-gram extraction and profiles.
//!
//! q-grams (overlapping substrings of length `q`) are the unit of indexing
//! for the edit-distance nearest-neighbor index: strings within small edit
//! distance share many q-grams, so an inverted index over q-grams yields a
//! small candidate set for exact verification. Following the standard
//! construction, strings are padded with `q - 1` copies of a sentinel on each
//! side so that prefixes/suffixes are represented.

use std::collections::HashMap;

use crate::tokenize::{record_string, tokenize_record};

/// Sentinel used for left/right padding. `'\u{1}'` cannot appear in
/// normalized text (normalization maps non-alphanumerics to spaces), so
/// padded q-grams never collide with interior ones.
pub const PAD: char = '\u{1}';

/// Extract padded q-grams from a string. For `q == 0` returns an empty list;
/// for an empty string returns an empty list.
///
/// ```
/// use fuzzydedup_textdist::qgrams;
/// let grams = qgrams("abc", 2);
/// // \u{1}a, ab, bc, c\u{1}
/// assert_eq!(grams.len(), 4);
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    if q == 0 || s.is_empty() {
        return Vec::new();
    }
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (q - 1));
    padded.extend(std::iter::repeat_n(PAD, q - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n(PAD, q - 1));
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// A multiset of q-grams with counts: the "profile" of a string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QgramProfile {
    counts: HashMap<String, u32>,
    total: u32,
}

impl QgramProfile {
    /// Build the profile of a string for a given `q`.
    pub fn build(s: &str, q: usize) -> Self {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for g in qgrams(s, q) {
            *counts.entry(g).or_insert(0) += 1;
        }
        let total = counts.values().sum();
        Self { counts, total }
    }

    /// Number of distinct q-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total q-gram occurrences (multiset cardinality).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Count of one q-gram.
    pub fn count(&self, gram: &str) -> u32 {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Iterate over `(gram, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(g, &c)| (g.as_str(), c))
    }

    /// Multiset-intersection size with another profile:
    /// `Σ_g min(count_a(g), count_b(g))`.
    pub fn overlap(&self, other: &Self) -> u32 {
        // Iterate the smaller profile.
        let (small, large) =
            if self.counts.len() <= other.counts.len() { (self, other) } else { (other, self) };
        small.counts.iter().map(|(g, &c)| c.min(large.count(g))).sum()
    }

    /// q-gram count filter lower bound: if `levenshtein(a, b) <= k` then the
    /// profiles overlap in at least `max(total_a, total_b) - k*q` grams
    /// (each edit destroys at most `q` grams). Returns the minimum overlap
    /// required to keep a candidate for bound `k`.
    pub fn required_overlap(&self, other: &Self, q: usize, k: usize) -> i64 {
        let m = self.total.max(other.total) as i64;
        m - (k * q) as i64
    }
}

/// MergeSkip / prefix-filter admission bound for a radius query: the
/// minimum padded q-gram mass a record within normalized edit distance
/// `theta` of a query with `chars` normalized characters must share with
/// it.
///
/// Derivation: `d = lev / max(cq, cc) <= theta` implies
/// `lev <= theta * max(cq, cc)`, and by the count filter
/// (each edit destroys at most `q` padded grams)
/// `overlap >= max(gq, gc) - lev*q >= (cq + q - 1) - theta*max(cq,cc)*q`.
/// The right side is smallest when the *candidate* is the longer record,
/// but the candidate's length is unknown at merge time; bounding
/// `max(cq, cc) <= cq / (1 - theta)` (the largest `cc` the length filter
/// admits) and simplifying conservatively to the standard SSJoin form
/// gives `B_min = cq * (1 - theta*q) + (q - 1)`, valid whenever
/// `theta * q < 1`. Returns `None` outside that regime (the bound is
/// vacuous or negative there, so callers must not skip anything).
pub fn merge_overlap_bound(chars: u32, q: usize, theta: f64) -> Option<f64> {
    let qf = q as f64;
    let tq = theta * qf;
    // NaN must land in the vacuous branch too, hence the explicit check
    // rather than `!(tq < 1.0)`.
    if tq >= 1.0 || tq.is_nan() || q == 0 {
        return None;
    }
    Some(f64::from(chars) * (1.0 - theta * qf) + (qf - 1.0))
}

/// The indexable terms of a record, as every inverted/signature index in
/// `fuzzydedup-nnindex` extracts them: padded q-grams of the normalized
/// record string, optionally plus whole tokens, deduplicated and sorted.
///
/// Alongside the term strings this carries the per-term q-gram *multiset
/// counts* and the record's normalized length statistics — the inputs of
/// the q-gram count/length filters ([`QgramProfile::required_overlap`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermSet {
    /// Distinct terms with their q-gram multiset count, sorted by term.
    /// A count of `0` marks a token-only term (whole tokens carry IDF
    /// weight but no q-gram overlap mass); a term that is both a q-gram
    /// and a token keeps its gram count.
    pub terms: Vec<(String, u32)>,
    /// Char count of the normalized record string.
    pub chars: u32,
    /// Total padded q-gram occurrences (`chars + q - 1`, or `0` for an
    /// empty record string).
    pub gram_total: u32,
}

/// Extract the [`TermSet`] of a multi-attribute record for gram length `q`.
pub fn record_term_set(fields: &[&str], q: usize, index_tokens: bool) -> TermSet {
    let joined = record_string(fields);
    let chars = joined.chars().count() as u32;
    let mut counts: HashMap<String, u32> = HashMap::new();
    let mut gram_total = 0u32;
    for gram in qgrams(&joined, q) {
        *counts.entry(gram).or_insert(0) += 1;
        gram_total += 1;
    }
    if index_tokens {
        for token in tokenize_record(fields) {
            counts.entry(token.text).or_insert(0);
        }
    }
    let mut terms: Vec<(String, u32)> = counts.into_iter().collect();
    terms.sort_by(|a, b| a.0.cmp(&b.0));
    TermSet { terms, chars, gram_total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::levenshtein;
    use proptest::prelude::*;

    #[test]
    fn qgram_counts() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
        assert_eq!(qgrams("abc", 2).len(), 4);
        assert_eq!(qgrams("abc", 3).len(), 5);
        assert!(qgrams("", 3).is_empty());
        assert!(qgrams("abc", 0).is_empty());
    }

    #[test]
    fn single_char_padded() {
        let g = qgrams("a", 3);
        // \u{1}\u{1}a, \u{1}a\u{1}, a\u{1}\u{1}
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|x| x.contains('a')));
    }

    #[test]
    fn profile_overlap_symmetric() {
        let a = QgramProfile::build("the doors", 3);
        let b = QgramProfile::build("doors", 3);
        assert_eq!(a.overlap(&b), b.overlap(&a));
        assert!(a.overlap(&b) > 0);
        assert_eq!(a.overlap(&a), a.total());
    }

    #[test]
    fn profile_counts_multiset() {
        let p = QgramProfile::build("aaaa", 2);
        // \u{1}a, aa, aa, aa, a\u{1}
        assert_eq!(p.total(), 5);
        assert_eq!(p.count("aa"), 3);
        assert_eq!(p.distinct(), 3);
    }

    #[test]
    fn term_set_matches_legacy_extraction() {
        // Same term *set* as the historical per-index extraction:
        // qgrams(record_string) ∪ tokens, sorted, deduplicated.
        let fields = ["The Doors", "LA Woman"];
        let ts = record_term_set(&fields, 3, true);
        let joined = record_string(&fields);
        let mut legacy = qgrams(&joined, 3);
        legacy.extend(tokenize_record(&fields).into_iter().map(|t| t.text));
        legacy.sort();
        legacy.dedup();
        let got: Vec<&str> = ts.terms.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(got, legacy.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(ts.chars, joined.chars().count() as u32);
        assert_eq!(ts.gram_total, ts.chars + 2);
        // Gram mass is conserved across the distinct terms.
        let mass: u32 = ts.terms.iter().map(|(_, c)| c).sum();
        assert_eq!(mass, ts.gram_total);
    }

    #[test]
    fn term_set_token_only_and_empty() {
        let ts = record_term_set(&["ab"], 3, true);
        // "ab" padded yields 4 grams of length 3; token "ab" is distinct
        // from every padded gram, so it appears with count 0.
        assert!(ts.terms.iter().any(|(t, c)| t == "ab" && *c == 0));
        let empty = record_term_set(&[""], 3, true);
        assert_eq!(empty, TermSet::default());
        let no_tokens = record_term_set(&["abc def"], 2, false);
        assert!(no_tokens.terms.iter().all(|(_, c)| *c > 0));
    }

    #[test]
    fn merge_overlap_bound_regimes() {
        // theta*q >= 1: no usable bound.
        assert_eq!(merge_overlap_bound(20, 3, 0.4), None);
        assert_eq!(merge_overlap_bound(20, 0, 0.1), None);
        assert_eq!(merge_overlap_bound(20, 3, f64::NAN), None);
        // theta = 0 requires the full query gram mass (chars + q - 1).
        assert_eq!(merge_overlap_bound(20, 3, 0.0), Some(22.0));
        // Monotone: a tighter radius demands more shared mass.
        let loose = merge_overlap_bound(20, 3, 0.3).unwrap();
        let tight = merge_overlap_bound(20, 3, 0.1).unwrap();
        assert!(tight > loose);
    }

    proptest! {
        #[test]
        fn merge_overlap_bound_is_sound(a in "[a-d]{4,12}", b in "[a-d]{4,12}") {
            // Any pair within normalized distance theta must share at
            // least B_min(query_chars, q, theta) grams — the admission
            // bound MergeSkip and the prefix filter freeze on.
            let q = 3usize;
            let ca = a.chars().count() as u32;
            let cb = b.chars().count() as u32;
            let lev = levenshtein(&a, &b);
            let d = lev as f64 / ca.max(cb) as f64;
            let pa = QgramProfile::build(&a, q);
            let pb = QgramProfile::build(&b, q);
            let overlap = f64::from(pa.overlap(&pb));
            for theta in [0.05, 0.15, 0.3] {
                if d <= theta {
                    if let Some(b_min) = merge_overlap_bound(ca, q, theta) {
                        prop_assert!(overlap + 1e-9 >= b_min,
                            "a={a:?} b={b:?} d={d} theta={theta} overlap={overlap} b_min={b_min}");
                    }
                }
            }
        }

        #[test]
        fn count_filter_is_sound(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            // If ed(a,b) = k, the q-gram overlap is at least
            // max(|A|,|B|) - k*q. This is the filter the NN index relies on.
            let q = 2usize;
            let k = levenshtein(&a, &b);
            let pa = QgramProfile::build(&a, q);
            let pb = QgramProfile::build(&b, q);
            let overlap = pa.overlap(&pb) as i64;
            let required = pa.required_overlap(&pb, q, k);
            prop_assert!(overlap >= required,
                "a={a:?} b={b:?} k={k} overlap={overlap} required={required}");
        }

        #[test]
        fn total_grams_formula(s in "[a-z]{1,20}", q in 1usize..5) {
            let n = s.chars().count();
            let p = QgramProfile::build(&s, q);
            prop_assert_eq!(p.total() as usize, n + q - 1);
        }
    }
}
