//! q-gram extraction and profiles.
//!
//! q-grams (overlapping substrings of length `q`) are the unit of indexing
//! for the edit-distance nearest-neighbor index: strings within small edit
//! distance share many q-grams, so an inverted index over q-grams yields a
//! small candidate set for exact verification. Following the standard
//! construction, strings are padded with `q - 1` copies of a sentinel on each
//! side so that prefixes/suffixes are represented.

use std::collections::HashMap;

/// Sentinel used for left/right padding. `'\u{1}'` cannot appear in
/// normalized text (normalization maps non-alphanumerics to spaces), so
/// padded q-grams never collide with interior ones.
pub const PAD: char = '\u{1}';

/// Extract padded q-grams from a string. For `q == 0` returns an empty list;
/// for an empty string returns an empty list.
///
/// ```
/// use fuzzydedup_textdist::qgrams;
/// let grams = qgrams("abc", 2);
/// // \u{1}a, ab, bc, c\u{1}
/// assert_eq!(grams.len(), 4);
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    if q == 0 || s.is_empty() {
        return Vec::new();
    }
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (q - 1));
    padded.extend(std::iter::repeat_n(PAD, q - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n(PAD, q - 1));
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// A multiset of q-grams with counts: the "profile" of a string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QgramProfile {
    counts: HashMap<String, u32>,
    total: u32,
}

impl QgramProfile {
    /// Build the profile of a string for a given `q`.
    pub fn build(s: &str, q: usize) -> Self {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for g in qgrams(s, q) {
            *counts.entry(g).or_insert(0) += 1;
        }
        let total = counts.values().sum();
        Self { counts, total }
    }

    /// Number of distinct q-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total q-gram occurrences (multiset cardinality).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Count of one q-gram.
    pub fn count(&self, gram: &str) -> u32 {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Iterate over `(gram, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(g, &c)| (g.as_str(), c))
    }

    /// Multiset-intersection size with another profile:
    /// `Σ_g min(count_a(g), count_b(g))`.
    pub fn overlap(&self, other: &Self) -> u32 {
        // Iterate the smaller profile.
        let (small, large) =
            if self.counts.len() <= other.counts.len() { (self, other) } else { (other, self) };
        small.counts.iter().map(|(g, &c)| c.min(large.count(g))).sum()
    }

    /// q-gram count filter lower bound: if `levenshtein(a, b) <= k` then the
    /// profiles overlap in at least `max(total_a, total_b) - k*q` grams
    /// (each edit destroys at most `q` grams). Returns the minimum overlap
    /// required to keep a candidate for bound `k`.
    pub fn required_overlap(&self, other: &Self, q: usize, k: usize) -> i64 {
        let m = self.total.max(other.total) as i64;
        m - (k * q) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::levenshtein;
    use proptest::prelude::*;

    #[test]
    fn qgram_counts() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
        assert_eq!(qgrams("abc", 2).len(), 4);
        assert_eq!(qgrams("abc", 3).len(), 5);
        assert!(qgrams("", 3).is_empty());
        assert!(qgrams("abc", 0).is_empty());
    }

    #[test]
    fn single_char_padded() {
        let g = qgrams("a", 3);
        // \u{1}\u{1}a, \u{1}a\u{1}, a\u{1}\u{1}
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|x| x.contains('a')));
    }

    #[test]
    fn profile_overlap_symmetric() {
        let a = QgramProfile::build("the doors", 3);
        let b = QgramProfile::build("doors", 3);
        assert_eq!(a.overlap(&b), b.overlap(&a));
        assert!(a.overlap(&b) > 0);
        assert_eq!(a.overlap(&a), a.total());
    }

    #[test]
    fn profile_counts_multiset() {
        let p = QgramProfile::build("aaaa", 2);
        // \u{1}a, aa, aa, aa, a\u{1}
        assert_eq!(p.total(), 5);
        assert_eq!(p.count("aa"), 3);
        assert_eq!(p.distinct(), 3);
    }

    proptest! {
        #[test]
        fn count_filter_is_sound(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            // If ed(a,b) = k, the q-gram overlap is at least
            // max(|A|,|B|) - k*q. This is the filter the NN index relies on.
            let q = 2usize;
            let k = levenshtein(&a, &b);
            let pa = QgramProfile::build(&a, q);
            let pb = QgramProfile::build(&b, q);
            let overlap = pa.overlap(&pb) as i64;
            let required = pa.required_overlap(&pb, q, k);
            prop_assert!(overlap >= required,
                "a={a:?} b={b:?} k={k} overlap={overlap} required={required}");
        }

        #[test]
        fn total_grams_formula(s in "[a-z]{1,20}", q in 1usize..5) {
            let n = s.chars().count();
            let p = QgramProfile::build(&s, q);
            prop_assert_eq!(p.total() as usize, n + q - 1);
        }
    }
}
