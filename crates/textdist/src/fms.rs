//! Fuzzy match similarity (fms): token-level edit distance + IDF weights.
//!
//! Implements the *symmetric* variant of the fuzzy match similarity of
//! Chaudhuri, Ganti, Ganjam, Motwani ("Robust and efficient fuzzy match for
//! online data cleaning", SIGMOD 2003) that the ICDE 2005 paper evaluates.
//!
//! The intuition (quoting the paper): `"microsoft corp"` and
//! `"microsft corporation"` are close because `microsoft` and `microsft`
//! are close under edit distance while the IDF weights of `corp` and
//! `corporation` are relatively small. Whole-string edit distance and
//! token-level cosine both misrank this example; fms gets it right.
//!
//! ## Definition used here
//!
//! Let `A`, `B` be the token multisets of the two records, with IDF weight
//! `w(t)` per token. Choose a partial one-to-one matching `M ⊆ A × B`
//! maximizing
//!
//! ```text
//! gain(M) = Σ_{(a,b) ∈ M} (w(a) + w(b)) · (1 − ned(a, b))
//! ```
//!
//! where `ned` is length-normalized Levenshtein. Then
//!
//! ```text
//! fms(A, B) = gain(M*) / (W(A) + W(B)),      d = 1 − fms
//! ```
//!
//! with `W(·)` the total token weight. The measure is symmetric by
//! construction, `0` distance iff the token multisets are identical, and `1`
//! iff no token pair has any character overlap worth matching. The optimal
//! matching is approximated greedily (largest gain first), which is exact
//! when gains are distinct across conflicting pairs and is the standard
//! practical choice for soft-TF-IDF-style measures.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::idf::IdfModel;
use crate::myers::myers_chars;
use crate::tokenize::tokenize_record;
use crate::{Distance, Prepared, PreparedDistance};

/// Cached per-record token decomposition: `(token chars, idf weight)` plus
/// the total weight.
type Decomposition = Arc<(Vec<(Vec<char>, f64)>, f64)>;

/// Symmetric fuzzy match distance; see module docs.
///
/// Internally memoizes record decompositions (tokenization + IDF lookups):
/// dedup pipelines evaluate each record against hundreds of candidates, so
/// the decomposition is reused across calls. The cache is bounded and
/// thread-safe.
#[derive(Debug)]
pub struct FuzzyMatchDistance {
    idf: IdfModel,
    /// Token pairs with normalized edit distance above this threshold are
    /// never matched (their gain would be tiny anyway; the cutoff prunes the
    /// greedy pass). Default `0.8`.
    max_token_ned: f64,
    /// Decomposition memo, keyed by the record's joined text. Cleared
    /// wholesale when it outgrows `CACHE_CAP` (simpler than LRU and fine
    /// for scan-shaped workloads).
    cache: Mutex<HashMap<String, Decomposition>>,
}

impl Clone for FuzzyMatchDistance {
    fn clone(&self) -> Self {
        Self {
            idf: self.idf.clone(),
            max_token_ned: self.max_token_ned,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

/// Decomposition cache bound (records, not bytes).
const CACHE_CAP: usize = 65_536;

impl FuzzyMatchDistance {
    /// Create with a fitted IDF model and the default token cutoff.
    pub fn new(idf: IdfModel) -> Self {
        Self { idf, max_token_ned: 0.8, cache: Mutex::new(HashMap::new()) }
    }

    fn decompose(&self, fields: &[&str]) -> Decomposition {
        let key = fields.join("\u{1f}");
        if let Some(hit) = self.cache.lock().get(&key) {
            return hit.clone();
        }
        let tokens: Vec<(Vec<char>, f64)> = tokenize_record(fields)
            .into_iter()
            .map(|t| {
                let w = self.idf.idf(&t.text);
                (t.text.chars().collect(), w)
            })
            .collect();
        let total: f64 = tokens.iter().map(|(_, w)| w).sum();
        let value: Decomposition = Arc::new((tokens, total));
        let mut cache = self.cache.lock();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, value.clone());
        value
    }

    /// Override the token-level normalized-edit-distance cutoff.
    pub fn with_max_token_ned(mut self, cutoff: f64) -> Self {
        self.max_token_ned = cutoff.clamp(0.0, 1.0);
        self
    }

    /// Access the IDF model.
    pub fn idf_model(&self) -> &IdfModel {
        &self.idf
    }

    /// Similarity in `[0, 1]`; `1` means identical token multisets.
    pub fn similarity(&self, a: &[&str], b: &[&str]) -> f64 {
        let da = self.decompose(a);
        let db = self.decompose(b);
        similarity_decomposed(&da, &db, self.max_token_ned)
    }
}

/// fms similarity over two cached decompositions. Shared by the per-call
/// path and the prepared layer so both produce bit-identical results.
fn similarity_decomposed(da: &Decomposition, db: &Decomposition, max_token_ned: f64) -> f64 {
    let (ta, wa) = (&da.0, da.1);
    let (tb, wb) = (&db.0, db.1);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }

    // All candidate token pairs with their gains, scored by the
    // bit-parallel kernel (tokens are short, so this is always the
    // single-word path).
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(ta.len() * tb.len());
    for (i, (ca, wia)) in ta.iter().enumerate() {
        for (j, (cb, wjb)) in tb.iter().enumerate() {
            let max_len = ca.len().max(cb.len());
            if max_len == 0 {
                continue;
            }
            let ned = myers_chars(ca, cb) as f64 / max_len as f64;
            if ned > max_token_ned {
                continue;
            }
            let gain = (wia + wjb) * (1.0 - ned);
            if gain > 0.0 {
                pairs.push((gain, i, j));
            }
        }
    }
    // Greedy maximum-gain matching. Ties broken by (i, j) for
    // determinism.
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then_with(|| (x.1, x.2).cmp(&(y.1, y.2))));
    let mut used_a = vec![false; ta.len()];
    let mut used_b = vec![false; tb.len()];
    let mut gain = 0.0;
    for (g, i, j) in pairs {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            gain += g;
        }
    }
    (gain / (wa + wb)).clamp(0.0, 1.0)
}

impl Distance for FuzzyMatchDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistFms, 1);
        1.0 - self.similarity(a, b)
    }

    /// Pin the query's decomposition once, bypassing the shared memo's
    /// key-join + lock on every candidate comparison.
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        Prepared::new(Box::new(PreparedFms { query: self.decompose(query), distance: self }))
    }

    fn name(&self) -> &str {
        "fms"
    }
}

/// Compiled fms query: the decomposition held directly (no memo lookup).
struct PreparedFms<'a> {
    distance: &'a FuzzyMatchDistance,
    query: Decomposition,
}

impl PreparedDistance for PreparedFms<'_> {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistFms, 1);
        let db = self.distance.decompose(candidate);
        let d = 1.0 - similarity_decomposed(&self.query, &db, self.distance.max_token_ned);
        (d <= cutoff).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine::CosineDistance;
    use crate::edit::EditDistance;
    use proptest::prelude::*;

    fn org_corpus() -> Vec<String> {
        vec![
            "microsoft corp".into(),
            "boeing corporation".into(),
            "microsft corporation".into(),
            "intel corp".into(),
            "mic corporation".into(),
            "oracle corp".into(),
            "apple inc".into(),
        ]
    }

    fn fms() -> FuzzyMatchDistance {
        FuzzyMatchDistance::new(IdfModel::fit_strings(&org_corpus()))
    }

    #[test]
    fn identical_records_zero_distance() {
        let d = fms();
        assert!(d.distance_str("microsoft corp", "microsoft corp") < 1e-12);
        assert!(d.distance_str("Microsoft CORP", "microsoft corp.") < 1e-12);
    }

    #[test]
    fn disjoint_records_max_distance() {
        let d = fms();
        assert_eq!(d.distance_str("aaaa bbbb", "xxxx yyyy"), 1.0);
    }

    #[test]
    fn paper_motivating_example_ranks_correctly() {
        // fms must rank (microsoft corp, microsft corporation) closer than
        // both (microsoft corp, mic corporation) and
        // (microsft corporation, boeing corporation) — the two misrankings
        // of plain edit distance and cosine respectively.
        let d = fms();
        let target = d.distance_str("microsoft corp", "microsft corporation");
        let ed_confusion = d.distance_str("microsoft corp", "mic corporation");
        let cos_confusion = d.distance_str("microsft corporation", "boeing corporation");
        assert!(target < ed_confusion, "fms: {target} !< {ed_confusion}");
        assert!(target < cos_confusion, "fms: {target} !< {cos_confusion}");

        // And confirm that cosine really does misrank, making the contrast
        // meaningful. (Plain Levenshtein happens to rank this particular
        // pair correctly — see `edit::tests::paper_example_strings` — so we
        // only assert the cosine misranking, plus that fms separates the
        // pairs by a wider margin than ed does.)
        let ed = EditDistance;
        let ed_gap = ed.distance_str("microsoft corp", "mic corporation")
            - ed.distance_str("microsoft corp", "microsft corporation");
        let fms_gap = ed_confusion - target;
        assert!(fms_gap > ed_gap, "fms margin {fms_gap} should beat ed margin {ed_gap}");
        let cos = CosineDistance::new(IdfModel::fit_strings(&org_corpus()));
        assert!(
            cos.distance_str("microsft corporation", "boeing corporation")
                < cos.distance_str("microsoft corp", "microsft corporation")
        );
    }

    #[test]
    fn token_order_is_irrelevant() {
        let d = fms();
        let a = d.distance_str("shania twain", "twain shania");
        assert!(a < 1e-12, "token swap should be free under fms: {a}");
    }

    #[test]
    fn typos_in_rare_tokens_stay_close() {
        let d = fms();
        let x = d.distance_str("shania twain", "shania twian");
        assert!(x < 0.25, "transposition in one token: {x}");
    }

    #[test]
    fn cutoff_blocks_weak_token_matches() {
        let strict = fms().with_max_token_ned(0.1);
        // corp vs corporation has ned ≈ 0.64 > 0.1 so they cannot match.
        let strict_d = strict.distance_str("microsoft corp", "microsoft corporation");
        let lax_d = fms().distance_str("microsoft corp", "microsoft corporation");
        assert!(strict_d > lax_d);
    }

    #[test]
    fn empty_record_cases() {
        let d = fms();
        assert_eq!(d.distance_str("", ""), 0.0);
        assert_eq!(d.distance_str("", "abc"), 1.0);
        assert_eq!(d.distance_str("abc", ""), 1.0);
    }

    #[test]
    fn multi_field_equals_joined() {
        let d = fms();
        let split = d.distance(&["The Doors", "LA Woman"], &["Doors", "LA Woman"]);
        let joined = d.distance(&["The Doors LA Woman"], &["Doors LA Woman"]);
        assert!((split - joined).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-e ]{0,20}", b in "[a-e ]{0,20}") {
            let d = fms();
            let ab = d.distance_str(&a, &b);
            let ba = d.distance_str(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn unit_interval(a in "[a-e ]{0,20}", b in "[a-e ]{0,20}") {
            let d = fms().distance_str(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn reflexive(a in "[a-z ]{0,24}") {
            let d = fms();
            prop_assert!(d.distance_str(&a, &a) < 1e-12);
        }
    }
}
