//! Soundex phonetic codes.
//!
//! Classic American Soundex, used by census-style record linkage (and by the
//! census dataset generator to produce phonetically plausible name
//! variants). A code is one letter followed by three digits.

/// Compute the Soundex code of a word. Non-ASCII-alphabetic characters are
/// ignored; an input with no alphabetic characters yields `"0000"`.
///
/// ```
/// use fuzzydedup_textdist::soundex;
/// assert_eq!(soundex("Robert"), "R163");
/// assert_eq!(soundex("Rupert"), "R163");
/// assert_eq!(soundex("Tymczak"), "T522");
/// assert_eq!(soundex("Honeyman"), "H555");
/// ```
pub fn soundex(word: &str) -> String {
    fn digit(c: char) -> u8 {
        match c.to_ascii_lowercase() {
            'b' | 'f' | 'p' | 'v' => b'1',
            'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => b'2',
            'd' | 't' => b'3',
            'l' => b'4',
            'm' | 'n' => b'5',
            'r' => b'6',
            // vowels and h/w/y act as separators of different kinds
            _ => b'0',
        }
    }

    let letters: Vec<char> = word.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    let Some(&first) = letters.first() else {
        return "0000".to_string();
    };
    let mut code = String::with_capacity(4);
    code.push(first.to_ascii_uppercase());
    let mut last_digit = digit(first);
    for &c in &letters[1..] {
        let d = digit(c);
        let cl = c.to_ascii_lowercase();
        if d != b'0' {
            // 'h' and 'w' are transparent: consonants separated only by h/w
            // coded the same are collapsed; vowels break the run.
            if d != last_digit {
                code.push(d as char);
                if code.len() == 4 {
                    break;
                }
            }
            last_digit = d;
        } else if cl != 'h' && cl != 'w' {
            // Vowel (or y): resets the repeat suppression.
            last_digit = 0;
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// Whether two words share a Soundex code (a cheap phonetic blocking key).
pub fn soundex_eq(a: &str, b: &str) -> bool {
    soundex(a) == soundex(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_codes() {
        // Canonical examples from the National Archives specification.
        assert_eq!(soundex("Washington"), "W252");
        assert_eq!(soundex("Lee"), "L000");
        assert_eq!(soundex("Gutierrez"), "G362");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Jackson"), "J250");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Ashcroft"), "A261");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("SMITH"), soundex("smith"));
        assert_eq!(soundex("Smith"), soundex("Smyth"));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("123"), "0000");
        assert_eq!(soundex("a"), "A000");
    }

    #[test]
    fn phonetic_pairs_match() {
        assert!(soundex_eq("Robert", "Rupert"));
        // Catherine/Kathryn do NOT match: Soundex keeps the first letter.
        assert!(!soundex_eq("Catherine", "Kathryn"));
        assert!(!soundex_eq("Smith", "Jones"));
    }

    proptest! {
        #[test]
        fn code_shape(s in "[a-zA-Z]{0,16}") {
            let c = soundex(&s);
            prop_assert_eq!(c.len(), 4);
            let bytes = c.as_bytes();
            prop_assert!(bytes[0].is_ascii_uppercase() || bytes[0] == b'0');
            for &b in &bytes[1..] {
                prop_assert!(b.is_ascii_digit());
            }
        }

        #[test]
        fn deterministic(s in "[a-zA-Z]{0,16}") {
            prop_assert_eq!(soundex(&s), soundex(&s));
        }
    }
}
