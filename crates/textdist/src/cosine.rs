//! TF-IDF weighted cosine distance over tokens.
//!
//! The classic IR similarity the paper contrasts with fms: each record is a
//! TF-IDF vector over its tokens, similarity is the cosine of the angle
//! between vectors, distance is `1 - similarity`. As the paper observes,
//! cosine with IDF weighting places `"microsft corporation"` and
//! `"boeing corporation"` closer than `"microsoft corp"` and
//! `"microsft corporation"`, because it cannot see that `microsoft` and
//! `microsft` are nearly the same token — motivating fms.

use std::collections::HashMap;

use crate::idf::IdfModel;
use crate::tokenize::tokenize_record;
use crate::Distance;

/// TF-IDF cosine distance.
#[derive(Debug, Clone)]
pub struct CosineDistance {
    idf: IdfModel,
}

impl CosineDistance {
    /// Create with a fitted IDF model.
    pub fn new(idf: IdfModel) -> Self {
        Self { idf }
    }

    /// Access the IDF model.
    pub fn idf_model(&self) -> &IdfModel {
        &self.idf
    }

    fn vector(&self, fields: &[&str]) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for tok in tokenize_record(fields) {
            *tf.entry(tok.text).or_insert(0.0) += 1.0;
        }
        for (t, w) in tf.iter_mut() {
            *w *= self.idf.idf(t);
        }
        tf
    }

    /// Cosine similarity in `[0, 1]` between two records.
    pub fn similarity(&self, a: &[&str], b: &[&str]) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        let (small, large) = if va.len() <= vb.len() { (&va, &vb) } else { (&vb, &va) };
        let dot: f64 = small.iter().filter_map(|(t, w)| large.get(t).map(|w2| w * w2)).sum();
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 && nb == 0.0 {
            return 1.0; // both empty: identical
        }
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

impl Distance for CosineDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistCosine, 1);
        1.0 - self.similarity(a, b)
    }

    fn name(&self) -> &str {
        "cosine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> CosineDistance {
        let idf = IdfModel::fit_strings(&[
            "microsoft corp",
            "boeing corporation",
            "microsft corporation",
            "intel corp",
            "mic corporation",
        ]);
        CosineDistance::new(idf)
    }

    #[test]
    fn identical_records_at_zero() {
        let d = dist();
        assert!(d.distance_str("microsoft corp", "microsoft corp") < 1e-12);
        assert!(d.distance_str("Microsoft Corp", "microsoft corp!") < 1e-12);
    }

    #[test]
    fn disjoint_records_at_one() {
        let d = dist();
        assert_eq!(d.distance_str("alpha beta", "gamma delta"), 1.0);
    }

    #[test]
    fn paper_misranking_example() {
        // Cosine (token-level) sees no similarity between "microsoft" and
        // "microsft", so the shared-token pair wins. The paper uses this to
        // motivate fms.
        let d = dist();
        let shared_corporation = d.distance_str("microsft corporation", "boeing corporation");
        let typo_pair = d.distance_str("microsoft corp", "microsft corporation");
        assert!(
            shared_corporation < typo_pair,
            "cosine should misrank: {shared_corporation} vs {typo_pair}"
        );
    }

    #[test]
    fn symmetry() {
        let d = dist();
        let ab = d.distance_str("microsoft corp", "boeing corporation");
        let ba = d.distance_str("boeing corporation", "microsoft corp");
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_vs_nonempty() {
        let d = dist();
        assert_eq!(d.distance_str("", ""), 0.0);
        assert_eq!(d.distance_str("", "abc"), 1.0);
    }

    #[test]
    fn idf_downweights_common_tokens() {
        let d = dist();
        // Sharing only the very common token "corp"/"corporation" is worth
        // less than sharing the rare token "microsoft".
        let rare_shared = d.distance_str("microsoft corp", "microsoft inc");
        let common_shared = d.distance_str("boeing corporation", "mic corporation");
        assert!(rare_shared < common_shared);
    }

    #[test]
    fn multi_field_records() {
        let d = dist();
        let x = d.distance(&["microsoft", "corp"], &["microsoft corp"]);
        assert!(x < 1e-12, "field split should not matter for cosine: {x}");
    }
}
