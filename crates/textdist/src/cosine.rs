//! TF-IDF weighted cosine distance over tokens.
//!
//! The classic IR similarity the paper contrasts with fms: each record is a
//! TF-IDF vector over its tokens, similarity is the cosine of the angle
//! between vectors, distance is `1 - similarity`. As the paper observes,
//! cosine with IDF weighting places `"microsft corporation"` and
//! `"boeing corporation"` closer than `"microsoft corp"` and
//! `"microsft corporation"`, because it cannot see that `microsoft` and
//! `microsft` are nearly the same token — motivating fms.

use std::collections::HashMap;

use crate::idf::IdfModel;
use crate::tokenize::tokenize_record;
use crate::{Distance, Prepared, PreparedDistance};

/// TF-IDF cosine distance.
#[derive(Debug, Clone)]
pub struct CosineDistance {
    idf: IdfModel,
}

/// A record's TF-IDF vector as a token-sorted list. Sorted form keeps
/// every dot product a merge join in one canonical summation order, so
/// results are bit-identical however the vector was produced (fresh per
/// call or compiled once by the prepared layer).
fn sorted_vector(idf: &IdfModel, fields: &[&str]) -> Vec<(String, f64)> {
    let mut tf: HashMap<String, f64> = HashMap::new();
    for tok in tokenize_record(fields) {
        *tf.entry(tok.text).or_insert(0.0) += 1.0;
    }
    let mut v: Vec<(String, f64)> = tf
        .into_iter()
        .map(|(t, c)| {
            let w = c * idf.idf(&t);
            (t, w)
        })
        .collect();
    v.sort_unstable_by(|x, y| x.0.cmp(&y.0));
    v
}

/// Merge-join dot product of two token-sorted vectors.
fn dot_sorted(a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut dot = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

fn norm(v: &[(String, f64)]) -> f64 {
    v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
}

/// Cosine of two token-sorted vectors with their precomputed norms.
fn similarity_sorted(a: &[(String, f64)], na: f64, b: &[(String, f64)], nb: f64) -> f64 {
    if na == 0.0 && nb == 0.0 {
        return 1.0; // both empty: identical
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot_sorted(a, b) / (na * nb)).clamp(0.0, 1.0)
}

impl CosineDistance {
    /// Create with a fitted IDF model.
    pub fn new(idf: IdfModel) -> Self {
        Self { idf }
    }

    /// Access the IDF model.
    pub fn idf_model(&self) -> &IdfModel {
        &self.idf
    }

    /// Cosine similarity in `[0, 1]` between two records.
    pub fn similarity(&self, a: &[&str], b: &[&str]) -> f64 {
        let va = sorted_vector(&self.idf, a);
        let vb = sorted_vector(&self.idf, b);
        similarity_sorted(&va, norm(&va), &vb, norm(&vb))
    }
}

impl Distance for CosineDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistCosine, 1);
        1.0 - self.similarity(a, b)
    }

    /// Compile the query's TF-IDF vector and norm once; per candidate
    /// only the candidate vector and one merge-join dot remain.
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        let vector = sorted_vector(&self.idf, query);
        let norm = norm(&vector);
        Prepared::new(Box::new(PreparedCosine { idf: &self.idf, vector, norm }))
    }

    fn name(&self) -> &str {
        "cosine"
    }
}

/// Compiled cosine query: token-sorted TF-IDF vector plus its norm.
struct PreparedCosine<'a> {
    idf: &'a IdfModel,
    vector: Vec<(String, f64)>,
    norm: f64,
}

impl PreparedDistance for PreparedCosine<'_> {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistCosine, 1);
        let vb = sorted_vector(self.idf, candidate);
        let d = 1.0 - similarity_sorted(&self.vector, self.norm, &vb, norm(&vb));
        (d <= cutoff).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> CosineDistance {
        let idf = IdfModel::fit_strings(&[
            "microsoft corp",
            "boeing corporation",
            "microsft corporation",
            "intel corp",
            "mic corporation",
        ]);
        CosineDistance::new(idf)
    }

    #[test]
    fn identical_records_at_zero() {
        let d = dist();
        assert!(d.distance_str("microsoft corp", "microsoft corp") < 1e-12);
        assert!(d.distance_str("Microsoft Corp", "microsoft corp!") < 1e-12);
    }

    #[test]
    fn disjoint_records_at_one() {
        let d = dist();
        assert_eq!(d.distance_str("alpha beta", "gamma delta"), 1.0);
    }

    #[test]
    fn paper_misranking_example() {
        // Cosine (token-level) sees no similarity between "microsoft" and
        // "microsft", so the shared-token pair wins. The paper uses this to
        // motivate fms.
        let d = dist();
        let shared_corporation = d.distance_str("microsft corporation", "boeing corporation");
        let typo_pair = d.distance_str("microsoft corp", "microsft corporation");
        assert!(
            shared_corporation < typo_pair,
            "cosine should misrank: {shared_corporation} vs {typo_pair}"
        );
    }

    #[test]
    fn symmetry() {
        let d = dist();
        let ab = d.distance_str("microsoft corp", "boeing corporation");
        let ba = d.distance_str("boeing corporation", "microsoft corp");
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_vs_nonempty() {
        let d = dist();
        assert_eq!(d.distance_str("", ""), 0.0);
        assert_eq!(d.distance_str("", "abc"), 1.0);
    }

    #[test]
    fn idf_downweights_common_tokens() {
        let d = dist();
        // Sharing only the very common token "corp"/"corporation" is worth
        // less than sharing the rare token "microsoft".
        let rare_shared = d.distance_str("microsoft corp", "microsoft inc");
        let common_shared = d.distance_str("boeing corporation", "mic corporation");
        assert!(rare_shared < common_shared);
    }

    #[test]
    fn multi_field_records() {
        let d = dist();
        let x = d.distance(&["microsoft", "corp"], &["microsoft corp"]);
        assert!(x < 1e-12, "field split should not matter for cosine: {x}");
    }
}
