//! Monge-Elkan distance: average best-match token similarity.
//!
//! The classic hybrid measure of the record-linkage literature the paper
//! builds on (Monge & Elkan, 1996): every token of one record is matched
//! to its *best* counterpart in the other, and the similarities are
//! averaged. Unlike [`crate::fms`], tokens are unweighted (no IDF) and a
//! token may serve as the best match for several counterparts — Monge-Elkan
//! is cheaper but blind to token specificity, which is exactly the gap fms
//! closes. Included for comparison experiments.
//!
//! The raw measure is asymmetric (`me(a, b) ≠ me(b, a)`); the [`Distance`]
//! implementation symmetrizes by averaging both directions, preserving the
//! framework's symmetry requirement.

use crate::myers::myers_chars;
use crate::tokenize::tokenize_record;
use crate::{Distance, Prepared, PreparedDistance};

/// One direction of Monge-Elkan: mean over `a`'s tokens of the best
/// similarity (1 − normalized Levenshtein) against `b`'s tokens.
/// Empty `a` yields 1 if `b` is empty too, else 0.
fn directed(a: &[Vec<char>], b: &[Vec<char>]) -> f64 {
    if a.is_empty() {
        return if b.is_empty() { 1.0 } else { 0.0 };
    }
    if b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ta in a {
        let mut best = 0.0f64;
        for tb in b {
            let max_len = ta.len().max(tb.len());
            let sim =
                if max_len == 0 { 1.0 } else { 1.0 - myers_chars(ta, tb) as f64 / max_len as f64 };
            best = best.max(sim);
        }
        total += best;
    }
    total / a.len() as f64
}

/// Tokenize a record into per-token char vectors (the working form of both
/// directed passes).
fn token_chars(fields: &[&str]) -> Vec<Vec<char>> {
    tokenize_record(fields).into_iter().map(|t| t.text.chars().collect()).collect()
}

/// Symmetrized Monge-Elkan distance; see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MongeElkanDistance;

impl MongeElkanDistance {
    /// Symmetric similarity in `[0, 1]` (mean of both directions).
    pub fn similarity(&self, a: &[&str], b: &[&str]) -> f64 {
        let ta = token_chars(a);
        let tb = token_chars(b);
        (directed(&ta, &tb) + directed(&tb, &ta)) / 2.0
    }
}

impl Distance for MongeElkanDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistMongeElkan, 1);
        (1.0 - self.similarity(a, b)).clamp(0.0, 1.0)
    }

    /// Tokenize the query once; both directed passes reuse the vectors.
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        Prepared::new(Box::new(PreparedMongeElkan { query: token_chars(query) }))
    }

    fn name(&self) -> &str {
        "monge-elkan"
    }
}

/// Compiled Monge-Elkan query: pre-tokenized char vectors.
struct PreparedMongeElkan {
    query: Vec<Vec<char>>,
}

impl PreparedDistance for PreparedMongeElkan {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistMongeElkan, 1);
        let tb = token_chars(candidate);
        let sim = (directed(&self.query, &tb) + directed(&tb, &self.query)) / 2.0;
        let d = (1.0 - sim).clamp(0.0, 1.0);
        (d <= cutoff).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d() -> MongeElkanDistance {
        MongeElkanDistance
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(d().distance_str("golden dragon", "golden dragon"), 0.0);
        assert_eq!(d().distance_str("aaaa bbbb", "xxxx yyyy"), 1.0);
        assert_eq!(d().distance_str("", ""), 0.0);
        assert_eq!(d().distance_str("", "abc"), 1.0);
    }

    #[test]
    fn token_order_is_free() {
        assert_eq!(d().distance_str("shania twain", "twain shania"), 0.0);
    }

    #[test]
    fn partial_overlap_is_between() {
        let x = d().distance_str("golden dragon palace", "golden dragon");
        assert!(x > 0.0 && x < 0.5, "{x}");
    }

    #[test]
    fn no_idf_weighting_unlike_fms() {
        use crate::fms::FuzzyMatchDistance;
        use crate::idf::IdfModel;
        // Under Monge-Elkan, sharing the common token "corporation" is
        // worth as much as sharing a rare one — the blindness fms fixes.
        let me = d();
        let common = me.distance_str("microsft corporation", "boeing corporation");
        let idf = IdfModel::fit_strings(&[
            "microsoft corp",
            "boeing corporation",
            "microsft corporation",
            "intel corp",
        ]);
        let fms = FuzzyMatchDistance::new(idf);
        let fms_common = fms.distance_str("microsft corporation", "boeing corporation");
        assert!(
            common < fms_common,
            "me treats the shared common token generously: me={common:.3} fms={fms_common:.3}"
        );
    }

    #[test]
    fn one_token_can_match_many() {
        // Both "doors" tokens of a match the single "doors" of b — the
        // multi-assignment behavior that distinguishes ME from fms's
        // one-to-one matching.
        let x = d().distance_str("doors doors", "doors");
        assert_eq!(x, 0.0);
    }

    proptest! {
        #[test]
        fn symmetric_unit_reflexive(a in "[a-e ]{0,20}", b in "[a-e ]{0,20}") {
            let me = d();
            let ab = me.distance_str(&a, &b);
            prop_assert!((ab - me.distance_str(&b, &a)).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!(me.distance_str(&a, &a) < 1e-12);
        }
    }
}
