//! Levenshtein edit distance: full, bounded, banded, and normalized.
//!
//! The paper evaluates its framework with "the edit distance (ed) \[27\]".
//! Because the duplicate-elimination framework expects distances in
//! `[0, 1]`, [`EditDistance`] normalizes the raw Levenshtein distance by the
//! length of the longer string. The raw distance is also exposed because the
//! nearest-neighbor index uses length-bounded early termination during
//! candidate verification.
//!
//! The public [`levenshtein`] / [`levenshtein_bounded`] entry points route
//! to the bit-parallel Myers kernel in [`crate::myers`]; the classic two-row
//! DP survives as [`levenshtein_dp`] (the reference implementation the
//! equivalence property tests and `bench_edit_kernel` compare against), and
//! the banded DP as [`levenshtein_banded`].

use crate::myers::{myers_bounded_chars, myers_chars, PreparedPattern};
use crate::tokenize::{record_string, record_string_into};
use crate::{Distance, Prepared, PreparedDistance};

/// Classic Levenshtein distance (unit costs for insert / delete / substitute)
/// between two strings, computed over Unicode scalar values.
///
/// Routes to the bit-parallel Myers kernel: `O(⌈m/64⌉·n)` time where `m` is
/// the shorter string's char count.
///
/// ```
/// use fuzzydedup_textdist::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("abc", "abc"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

/// Levenshtein distance over pre-collected char slices. Useful when the
/// caller caches the char decomposition (e.g. the nearest-neighbor index
/// verifying many candidates against one query).
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    myers_chars(a, b)
}

/// Reference two-row DP Levenshtein, `O(|a|·|b|)` time. Kept as the
/// independently-derived oracle for the Myers kernel (property tests) and
/// as the baseline side of `bench_edit_kernel`.
pub fn levenshtein_dp(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_dp_chars_with(&mut (Vec::new(), Vec::new()), &a, &b)
}

/// [`levenshtein_dp`] over char slices with caller-provided DP row buffers,
/// letting benchmark loops avoid two allocations per comparison. Buffers
/// are resized as needed and may be reused across calls.
pub fn levenshtein_dp_chars_with(
    bufs: &mut (Vec<usize>, Vec<usize>),
    a: &[char],
    b: &[char],
) -> usize {
    // Ensure `b` is the shorter side so the DP rows are minimal.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let (prev, cur) = (&mut bufs.0, &mut bufs.1);
    prev.clear();
    prev.extend(0..=b.len());
    cur.clear();
    cur.resize(b.len() + 1, 0);
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[b.len()]
}

/// Levenshtein distance with an upper bound: returns `None` as soon as the
/// distance provably exceeds `bound`, which lets candidate verification in
/// the nearest-neighbor index abandon hopeless candidates early.
///
/// Routes to the k-bounded Myers kernel ([`crate::myers::myers_bounded`]);
/// the banded-DP predecessor survives as [`levenshtein_banded`] and the two
/// are regression-tested against each other on both sides of the cutoff.
///
/// ```
/// use fuzzydedup_textdist::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a, &b, bound)
}

/// Bounded Levenshtein over pre-collected char slices; see
/// [`levenshtein_bounded`].
pub fn levenshtein_bounded_chars(a: &[char], b: &[char], bound: usize) -> Option<usize> {
    myers_bounded_chars(a, b, bound)
}

/// Banded-DP bounded Levenshtein: cells farther than `bound` off the
/// diagonal can never participate in a path of cost `<= bound`, so only a
/// `2·bound + 1` wide band is evaluated per row. Superseded on hot paths by
/// the k-bounded Myers kernel but kept as its regression oracle.
pub fn levenshtein_banded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_banded_chars(&a, &b, bound)
}

/// [`levenshtein_banded`] over pre-collected char slices.
pub fn levenshtein_banded_chars(a: &[char], b: &[char], bound: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    // Length difference is a lower bound on the distance.
    if a.len() - b.len() > bound {
        return None;
    }
    if b.is_empty() {
        return (a.len() <= bound).then_some(a.len());
    }
    const INF: usize = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=b.len()).map(|j| if j <= bound { j } else { INF }).collect();
    let mut cur: Vec<usize> = vec![INF; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        let row = i + 1;
        // Band: only columns with |row - col| <= bound can stay <= bound.
        let lo = row.saturating_sub(bound);
        let hi = (row + bound).min(b.len());
        cur[0] = if row <= bound { row } else { INF };
        if lo > 0 {
            cur[lo - 1] = INF;
        }
        let mut row_min = cur[0];
        for j in lo.max(1)..=hi {
            let cost = usize::from(ca != b[j - 1]);
            let diag = prev[j - 1] + cost;
            let up = prev[j] + 1;
            let left = cur[j - 1] + 1;
            cur[j] = diag.min(up).min(left);
            row_min = row_min.min(cur[j]);
        }
        if hi < b.len() {
            cur[hi + 1] = INF;
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[b.len()];
    (d <= bound).then_some(d)
}

/// Levenshtein distance normalized to `[0, 1]` by the longer string's length
/// (in chars). Two empty strings are at distance `0`.
///
/// ```
/// use fuzzydedup_textdist::normalized_levenshtein;
/// assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
/// assert_eq!(normalized_levenshtein("", ""), 0.0);
/// assert_eq!(normalized_levenshtein("abc", ""), 1.0);
/// ```
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max as f64
}

/// The `ed` distance of the paper: normalized Levenshtein over the
/// normalized concatenation of a record's fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistance;

impl Distance for EditDistance {
    fn distance(&self, a: &[&str], b: &[&str]) -> f64 {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistEdit, 1);
        let sa = record_string(a);
        let sb = record_string(b);
        normalized_levenshtein(&sa, &sb)
    }

    fn distance_bounded(&self, a: &[&str], b: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistEdit, 1);
        let sa = record_string(a);
        let sb = record_string(b);
        let ca: Vec<char> = sa.chars().collect();
        let cb: Vec<char> = sb.chars().collect();
        let max = ca.len().max(cb.len());
        if max == 0 {
            return (cutoff >= 0.0).then_some(0.0);
        }
        if cutoff < 0.0 {
            return None;
        }
        if cutoff >= 1.0 {
            // Every normalized distance qualifies; no point bounding.
            return Some(myers_chars(&ca, &cb) as f64 / max as f64);
        }
        // Over-inclusive raw bound: ceil guarantees every raw distance whose
        // normalized value is <= cutoff stays inside the bound, so the
        // bounded kernel never rejects a qualifying pair (extra survivors
        // are filtered by the exact comparison below).
        let raw_bound = (cutoff * max as f64).ceil() as usize;
        let raw = myers_bounded_chars(&ca, &cb, raw_bound)?;
        let d = raw as f64 / max as f64;
        (d <= cutoff).then_some(d)
    }

    /// `ed` is exactly Levenshtein over `record_string` normalized by the
    /// longer side's char count — the premise the q-gram length/count
    /// filters need.
    fn admits_qgram_filter(&self) -> bool {
        true
    }

    /// Raw Levenshtein is a true metric (property-tested below on
    /// arbitrary Unicode triples), so the pivot-table triangle bounds are
    /// sound for `ed` as long as they are applied to *raw* edit counts.
    fn admits_metric_pruning(&self) -> bool {
        true
    }

    /// Compile the query's record string and Peq bitmasks once; per
    /// candidate only the candidate-side normalization and the Myers scan
    /// remain (common affixes are stripped by mask shifting, not by
    /// rebuilding the table — see [`PreparedPattern`]).
    fn prepare<'a>(&'a self, query: &[&str]) -> Prepared<'a> {
        let sq = record_string(query);
        Prepared::new(Box::new(PreparedEdit {
            pattern: PreparedPattern::new(sq.chars().collect()),
            text: String::new(),
            chars: Vec::new(),
            arena: Vec::new(),
            spans: Vec::new(),
            raw_out: Vec::new(),
        }))
    }

    fn name(&self) -> &str {
        "ed"
    }
}

/// Compiled `ed` query: the query's [`PreparedPattern`] plus reusable
/// candidate-side buffers (zero allocation per candidate once warm).
struct PreparedEdit {
    pattern: PreparedPattern,
    text: String,
    chars: Vec<char>,
    /// Batch-path scratch: every candidate's normalized chars packed into
    /// one arena (`spans` indexes it), so a whole batch is live at once
    /// for the lock-step kernel without per-candidate allocation.
    arena: Vec<char>,
    spans: Vec<(usize, usize)>,
    raw_out: Vec<Option<usize>>,
}

impl PreparedDistance for PreparedEdit {
    fn distance_bounded_prepared(&mut self, candidate: &[&str], cutoff: f64) -> Option<f64> {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistEdit, 1);
        record_string_into(candidate, &mut self.text);
        self.chars.clear();
        self.chars.extend(self.text.chars());
        let max = self.pattern.query().len().max(self.chars.len());
        if max == 0 {
            return (cutoff >= 0.0).then_some(0.0);
        }
        if cutoff < 0.0 {
            return None;
        }
        if cutoff >= 1.0 {
            // Every normalized distance qualifies; no point bounding.
            return Some(self.pattern.distance(&self.chars) as f64 / max as f64);
        }
        // Same over-inclusive raw bound as the unprepared path.
        let raw_bound = (cutoff * max as f64).ceil() as usize;
        let raw = self.pattern.bounded(&self.chars, raw_bound)?;
        let d = raw as f64 / max as f64;
        (d <= cutoff).then_some(d)
    }

    /// The scalar ladder above, applied per candidate, with every request
    /// that reaches the bounded kernel routed through the lock-step
    /// [`PreparedPattern::bounded_batch`] instead of one scan at a time.
    fn distance_bounded_batch(
        &mut self,
        candidates: &[&[&str]],
        cutoff: f64,
        out: &mut Vec<Option<f64>>,
    ) {
        fuzzydedup_metrics::incr(fuzzydedup_metrics::Counter::DistEdit, candidates.len() as u64);
        out.clear();
        out.resize(candidates.len(), None);
        self.arena.clear();
        self.spans.clear();
        for cand in candidates {
            record_string_into(cand, &mut self.text);
            let start = self.arena.len();
            self.arena.extend(self.text.chars());
            self.spans.push((start, self.arena.len()));
        }
        let qlen = self.pattern.query().len();
        // Split borrows: the requests reference the arena while the
        // pattern advances its own mutable scratch.
        let PreparedEdit { pattern, arena, spans, raw_out, .. } = self;
        let mut requests: Vec<(&[char], usize)> = Vec::with_capacity(candidates.len());
        let mut slots: Vec<(usize, usize)> = Vec::with_capacity(candidates.len());
        for (i, &(start, end)) in spans.iter().enumerate() {
            let chars = &arena[start..end];
            let max = qlen.max(chars.len());
            if max == 0 {
                out[i] = (cutoff >= 0.0).then_some(0.0);
                continue;
            }
            if cutoff < 0.0 {
                continue;
            }
            if cutoff >= 1.0 {
                // Every normalized distance qualifies; no point bounding.
                out[i] = Some(pattern.distance(chars) as f64 / max as f64);
                continue;
            }
            // Same over-inclusive raw bound as the scalar path.
            let raw_bound = (cutoff * max as f64).ceil() as usize;
            requests.push((chars, raw_bound));
            slots.push((i, max));
        }
        pattern.bounded_batch(&requests, raw_out);
        for (&(i, max), raw) in slots.iter().zip(raw_out.iter()) {
            if let Some(raw) = raw {
                let d = *raw as f64 / max as f64;
                out[i] = (d <= cutoff).then_some(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("a", ""), 1);
        assert_eq!(levenshtein("", "a"), 1);
    }

    #[test]
    fn paper_example_strings() {
        // "microsoft corp" vs "microsft corporation": one deletion within
        // `microsoft`, plus the `oration` suffix — raw edit distance 8.
        let d1 = levenshtein("microsoft corp", "microsft corporation");
        assert_eq!(d1, 8);
        // "microsoft corp" vs "mic corporation": plain Levenshtein gives 10.
        // (The paper's prose claims ed misranks this pair; under standard
        // unit-cost Levenshtein it does not — the misranking it describes
        // only appears for normalized/ranked variants on longer records.
        // We record the true values here.)
        let d2 = levenshtein("microsoft corp", "mic corporation");
        assert_eq!(d2, 10);
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_when_within_bound() {
        let pairs = [
            ("kitten", "sitting"),
            ("the doors la woman", "doors la woman"),
            ("abc", "xyz"),
            ("", "abc"),
            ("same", "same"),
        ];
        for (a, b) in pairs {
            let exact = levenshtein(a, b);
            for bound in 0..=exact + 2 {
                let got = levenshtein_bounded(a, b, bound);
                if exact <= bound {
                    assert_eq!(got, Some(exact), "{a:?} vs {b:?} bound {bound}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn normalized_range_and_identity() {
        assert_eq!(normalized_levenshtein("x", "x"), 0.0);
        assert_eq!(normalized_levenshtein("x", "y"), 1.0);
        let d = normalized_levenshtein("beatles the", "the beatles");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn record_distance_uses_normalization() {
        let ed = EditDistance;
        // Case and punctuation differences vanish under normalization.
        assert_eq!(ed.distance(&["The Doors", "LA Woman"], &["the doors", "la woman!"]), 0.0);
        assert!(ed.distance(&["Doors", "LA Woman"], &["The Doors", "LA Woman"]) > 0.0);
    }

    #[test]
    fn distance_bounded_agrees_with_exact() {
        let ed = EditDistance;
        let pairs = [
            (vec!["microsoft corp"], vec!["microsft corporation"]),
            (vec!["the doors", "la woman"], vec!["doors", "la woman"]),
            (vec![""], vec![""]),
            (vec!["abc"], vec!["xyz"]),
        ];
        for (a, b) in &pairs {
            let exact = ed.distance(a, b);
            for cutoff in [0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
                let got = ed.distance_bounded(a, b, cutoff);
                if exact <= cutoff {
                    assert_eq!(got, Some(exact), "{a:?} vs {b:?} cutoff {cutoff}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} cutoff {cutoff}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn symmetric(a in ".{0,24}", b in ".{0,24}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn triangle_inequality_raw(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
            // Raw Levenshtein is a true metric.
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn triangle_inequality_raw_unicode(
            a in "[a-c丠-丣é-ë\u{1F600}-\u{1F603}]{0,10}",
            b in "[a-c丠-丣é-ë\u{1F600}-\u{1F603}]{0,10}",
            c in "[a-c丠-丣é-ë\u{1F600}-\u{1F603}]{0,10}",
        ) {
            // The soundness premise of the pivot lower/upper bounds
            // (admits_metric_pruning): the metric property must hold over
            // multi-byte scalars too — CJK, combining Latin, and astral
            // emoji all count as single chars.
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc, "d({a:?},{c:?})={ac} > {ab}+{bc}");
            prop_assert!(ac + bc >= ab, "reverse side: {ab} > {ac}+{bc}");
        }

        #[test]
        fn bounded_matches_exact(a in "[a-e]{0,12}", b in "[a-e]{0,12}", bound in 0usize..14) {
            let exact = levenshtein(&a, &b);
            let got = levenshtein_bounded(&a, &b, bound);
            if exact <= bound {
                prop_assert_eq!(got, Some(exact));
            } else {
                prop_assert_eq!(got, None);
            }
        }

        #[test]
        fn normalized_in_unit_interval(a in ".{0,24}", b in ".{0,24}") {
            let d = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn distance_to_self_is_zero(a in ".{0,24}") {
            prop_assert_eq!(normalized_levenshtein(&a, &a), 0.0);
        }
    }
}
