//! Symmetric pair-distance memoization for Phase 1.
//!
//! Phase 1 verifies each candidate pair from both sides: record `a` sees `b`
//! among its candidates and vice versa. Without memoization the exact
//! distance is computed twice. [`PairCache`] stores one entry per
//! *unordered* pair so the second verification is a table probe instead of
//! a distance call.
//!
//! The probe sits on the innermost verification loop, in competition with a
//! bit-parallel Myers call that costs a few hundred nanoseconds — a lock
//! round-trip per candidate would cancel the savings. The table is
//! therefore a **direct-mapped array of seqlock-validated slots**:
//!
//! - Each slot is three atomics: a sequence word, a packed pair key, and an
//!   `f64`-bits value. Readers take no lock: load the sequence (odd =
//!   writer in flight → miss), load key and value, re-check the sequence.
//!   A torn read fails validation and degrades to a miss, which is always
//!   sound. On x86 the whole probe is four plain loads and a fence.
//! - Writers claim a slot by a single CAS on the sequence word (even →
//!   odd). A failed CAS means another writer is mid-flight — the store is
//!   *dropped*, not retried: losing a memo entry never affects results.
//! - Direct mapping doubles as eviction: a colliding pair overwrites the
//!   slot, so memory stays exactly `capacity` slots and recency wins —
//!   which suits the breadth-first lookup order, whose whole point is that
//!   pair reuse clusters in time.
//!
//! One `u64` key packs the unordered pair `(min << 32) | max`; `u64::MAX`
//! is the empty sentinel (the pair `(u32::MAX, u32::MAX)` never occurs
//! because a record is not its own candidate). One `f64` value encodes both
//! entry kinds: an exact distance `d >= 0.0` is stored as-is (positive
//! sign); a rejection bound `b` ("true distance exceeds `b`") is stored
//! sign-flipped as `-b`, so bound `0.0` maps to `-0.0` and
//! `is_sign_positive` separates the kinds exactly (negation is exact in
//! IEEE 754; an additive offset would not round-trip).
//!
//! Soundness relies on the contract documented on
//! [`PairDistanceCache`](fuzzydedup_nnindex::PairDistanceCache): the
//! distance must be bit-symmetric, exact hits carry true distances, and
//! `KnownAbove` only fires when the stored bound already proves the
//! candidate would be rejected. Under that contract the surviving neighbor
//! sets are identical with the cache on or off, regardless of thread
//! interleaving.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use fuzzydedup_metrics::{incr, Counter};
use fuzzydedup_nnindex::{PairDistanceCache, PairProbe};

const EMPTY: u64 = u64::MAX;

/// Finalizer from SplitMix64; good avalanche for sequential-ish packed ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn pack(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Encode a rejection bound by flipping the sign bit (exact round-trip).
fn encode_bound(bound: f64) -> f64 {
    -bound
}

fn decode_bound(v: f64) -> f64 {
    -v
}

/// Bounded memo of exact distances and rejection bounds keyed on unordered
/// record-id pairs. Lock-free on both paths; safe to share across Phase 1
/// worker threads.
pub struct PairCache {
    /// Seqlock words: even = stable, odd = writer in flight.
    seqs: Vec<AtomicU64>,
    /// Packed pair keys ([`EMPTY`] = vacant).
    keys: Vec<AtomicU64>,
    /// Value encodings (`f64` bits; see module docs).
    values: Vec<AtomicU64>,
    mask: usize,
}

impl PairCache {
    /// A cache of `capacity` slots, rounded up to a power of two (min 64).
    /// `capacity == 0` is not meaningful — callers gate construction on a
    /// positive configured capacity.
    pub fn new(capacity: usize) -> Self {
        let slots = capacity.next_power_of_two().max(64);
        PairCache {
            seqs: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            keys: (0..slots).map(|_| AtomicU64::new(EMPTY)).collect(),
            values: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            mask: slots - 1,
        }
    }

    fn slot(&self, key: u64) -> usize {
        (splitmix64(key) as usize) & self.mask
    }

    /// Seqlock-validated read of one slot: `Some(value)` only when the slot
    /// holds `key` and both words were read from one stable version.
    fn read_slot(&self, i: usize, key: u64) -> Option<f64> {
        let s1 = self.seqs[i].load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let k = self.keys[i].load(Ordering::Relaxed);
        let v = self.values[i].load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seqs[i].load(Ordering::Relaxed) != s1 || k != key {
            return None;
        }
        Some(f64::from_bits(v))
    }

    /// Claim the slot, merge the new value in, and publish. `merge`
    /// receives the existing value when the slot already holds `key`. A
    /// lost claim drops the store (never blocks the verification loop).
    fn write_slot(&self, i: usize, key: u64, value: f64, merge: fn(f64, f64) -> f64) {
        let s = self.seqs[i].load(Ordering::Relaxed);
        if s & 1 == 1 {
            return;
        }
        if self.seqs[i].compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            return;
        }
        // Seqlock writer protocol: the odd sequence word must become
        // visible before any data store, or a reader on weakly-ordered
        // hardware can pair the new key with the stale value while both of
        // its sequence loads still see the old even count. The CAS's
        // success ordering only orders *prior* accesses, so an explicit
        // release fence is required here.
        fence(Ordering::Release);
        let prior = self.keys[i].load(Ordering::Relaxed);
        let new = if prior == key {
            merge(f64::from_bits(self.values[i].load(Ordering::Relaxed)), value)
        } else {
            if prior != EMPTY {
                incr(Counter::PairCacheEvictions, 1);
            }
            incr(Counter::PairCacheInserts, 1);
            self.keys[i].store(key, Ordering::Relaxed);
            value
        };
        self.values[i].store(new.to_bits(), Ordering::Relaxed);
        self.seqs[i].store(s + 2, Ordering::Release);
    }

    /// Number of occupied slots (test/diagnostic aid; scans the table).
    pub fn len(&self) -> usize {
        self.keys.iter().filter(|k| k.load(Ordering::Relaxed) != EMPTY).count()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PairDistanceCache for PairCache {
    fn probe(&self, a: u32, b: u32, cutoff: f64) -> PairProbe {
        let key = pack(a, b);
        let v = match self.read_slot(self.slot(key), key) {
            Some(v) => v,
            None => return PairProbe::Miss,
        };
        if v.is_sign_positive() {
            PairProbe::Exact(v)
        } else if cutoff <= decode_bound(v) {
            // Stored bound proves d > bound >= cutoff: the bounded distance
            // call would return None, so skipping it cannot change
            // survivors.
            PairProbe::KnownAbove
        } else {
            PairProbe::Miss
        }
    }

    fn store_exact(&self, a: u32, b: u32, d: f64) {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(d >= 0.0) {
            return; // NaN or negative would corrupt the encoding.
        }
        let key = pack(a, b);
        // Exact distances replace anything, including rejection bounds.
        // `d + 0.0` normalizes a `-0.0` input to the positive-sign
        // encoding.
        self.write_slot(self.slot(key), key, d + 0.0, |_old, new| new);
    }

    fn store_bound(&self, a: u32, b: u32, cutoff: f64) {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(cutoff >= 0.0) {
            return;
        }
        let key = pack(a, b);
        self.write_slot(self.slot(key), key, encode_bound(cutoff), |old, new| {
            // Keep exacts; otherwise keep the higher (more negative) bound.
            if old.is_sign_positive() {
                old
            } else {
                old.min(new)
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_on_empty() {
        let cache = PairCache::new(1024);
        assert!(matches!(cache.probe(1, 2, 0.5), PairProbe::Miss));
        assert!(cache.is_empty());
    }

    #[test]
    fn exact_roundtrip_is_order_insensitive() {
        let cache = PairCache::new(1024);
        cache.store_exact(7, 3, 0.25);
        assert!(matches!(cache.probe(7, 3, 1.0), PairProbe::Exact(d) if d == 0.25));
        assert!(matches!(cache.probe(3, 7, 1.0), PairProbe::Exact(d) if d == 0.25));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn exact_zero_is_distinct_from_bound_zero() {
        let cache = PairCache::new(1024);
        cache.store_bound(1, 2, 0.0);
        // d > 0.0 is known, so cutoff 0.0 is rejectable but cutoff 0.1 is
        // not.
        assert!(matches!(cache.probe(1, 2, 0.0), PairProbe::KnownAbove));
        assert!(matches!(cache.probe(1, 2, 0.1), PairProbe::Miss));
        cache.store_exact(3, 4, 0.0);
        assert!(matches!(cache.probe(3, 4, 0.0), PairProbe::Exact(d) if d == 0.0));
    }

    #[test]
    fn bound_semantics_respect_cutoff() {
        let cache = PairCache::new(1024);
        cache.store_bound(1, 2, 0.4);
        // Tighter or equal cutoffs are conclusively rejectable.
        assert!(matches!(cache.probe(1, 2, 0.4), PairProbe::KnownAbove));
        assert!(matches!(cache.probe(2, 1, 0.3), PairProbe::KnownAbove));
        // A looser cutoff could still admit the pair: must recompute.
        assert!(matches!(cache.probe(1, 2, 0.5), PairProbe::Miss));
    }

    #[test]
    fn bounds_only_raise() {
        let cache = PairCache::new(1024);
        cache.store_bound(1, 2, 0.4);
        cache.store_bound(1, 2, 0.2); // weaker: must not lower the bound
        assert!(matches!(cache.probe(1, 2, 0.4), PairProbe::KnownAbove));
        cache.store_bound(1, 2, 0.6); // stronger: raises
        assert!(matches!(cache.probe(1, 2, 0.6), PairProbe::KnownAbove));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn exact_overwrites_bound_and_is_never_downgraded() {
        let cache = PairCache::new(1024);
        cache.store_bound(1, 2, 0.4);
        cache.store_exact(1, 2, 0.7);
        assert!(matches!(cache.probe(1, 2, 1.0), PairProbe::Exact(d) if d == 0.7));
        cache.store_bound(1, 2, 0.9);
        assert!(matches!(cache.probe(1, 2, 1.0), PairProbe::Exact(d) if d == 0.7));
    }

    #[test]
    fn rejects_nan_and_negative() {
        let cache = PairCache::new(1024);
        cache.store_exact(1, 2, f64::NAN);
        cache.store_exact(1, 2, -1.0);
        cache.store_bound(1, 2, f64::NAN);
        assert!(cache.is_empty());
    }

    #[test]
    fn colliding_pairs_evict_in_place_and_memory_stays_bounded() {
        let cache = PairCache::new(64);
        for i in 0..10_000u32 {
            cache.store_exact(i, i + 1, 0.5);
        }
        // Direct mapping: occupancy never exceeds the slot count.
        assert!(cache.len() <= 64);
        cache.store_exact(42, 43, 0.125);
        assert!(matches!(cache.probe(42, 43, 1.0), PairProbe::Exact(d) if d == 0.125));
    }

    #[test]
    fn parallel_smoke_is_race_free() {
        let cache = PairCache::new(4096);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..2_000u32 {
                        let (a, b) = (i % 97, i % 89 + 100);
                        if t % 2 == 0 {
                            cache.store_exact(a, b, (i % 10) as f64 / 10.0);
                        } else {
                            cache.store_bound(a, b, (i % 10) as f64 / 10.0);
                        }
                        match cache.probe(a, b, 0.05) {
                            PairProbe::Exact(d) => assert!((0.0..=1.0).contains(&d)),
                            PairProbe::KnownAbove | PairProbe::Miss => {}
                        }
                    }
                });
            }
        });
    }
}
