//! Checkers for the axiomatic properties of §3.1 (Lemmas 1–4).
//!
//! The paper analyzes `DE_S(K)` / `DE_D(θ)` as *partitioning functions* in
//! the spirit of Kleinberg's axiomatic clustering framework and states four
//! properties: uniqueness of the solution, scale invariance (of `DE_S`),
//! split/merge consistency, and constrained `(α, β)`-richness. Proof
//! sketches are omitted in the paper; here each property gets an executable
//! checker used by the test suite and by the `exp_ablation` driver. The
//! checkers operate on [`MatrixIndex`] relations so arbitrary metric
//! structures can be exercised.

use crate::criteria::Aggregation;
use crate::matrix::MatrixIndex;
use crate::partition::Partition;
use crate::phase1::{compute_nn_reln, NeighborSpec};
use crate::phase2::partition_entries;
use crate::problem::CutSpec;
use fuzzydedup_nnindex::{LookupOrder, NnIndex};

/// Run the full DE pipeline over a distance matrix.
pub fn de_on_matrix(m: &MatrixIndex, cut: CutSpec, agg: Aggregation, c: f64) -> Partition {
    let spec = NeighborSpec::from_cut(&cut, m.len());
    let (reln, _) = compute_nn_reln(m, spec, LookupOrder::Sequential, 2.0);
    partition_entries(&reln, cut, agg, c)
}

/// **Lemma 1 (uniqueness / well-definedness).** The DE problems have unique
/// solutions; operationally, the computed partition must not depend on the
/// lookup order. Returns `true` if sequential, shuffled, and breadth-first
/// orders agree.
pub fn check_uniqueness(m: &MatrixIndex, cut: CutSpec, agg: Aggregation, c: f64) -> bool {
    let spec = NeighborSpec::from_cut(&cut, m.len());
    let orders = [
        LookupOrder::Sequential,
        LookupOrder::Random(0xDED0),
        LookupOrder::Random(0xDED1),
        LookupOrder::breadth_first(),
    ];
    let partitions: Vec<Partition> = orders
        .iter()
        .map(|&o| {
            let (reln, _) = compute_nn_reln(m, spec, o, 2.0);
            partition_entries(&reln, cut, agg, c)
        })
        .collect();
    partitions.windows(2).all(|w| w[0] == w[1])
}

/// **Lemma 2 (scale invariance).** `DE_S(K)` is scale-invariant:
/// `f(α·d) = f(d)` for every `α > 0`. Returns `true` if the partition is
/// unchanged under each provided scale factor.
///
/// Note this is *specific to the size cut*: `DE_D(θ)` compares distances
/// against the absolute θ and is deliberately not scale-invariant (a test
/// asserts the failure).
pub fn check_scale_invariance(
    m: &MatrixIndex,
    k: usize,
    agg: Aggregation,
    c: f64,
    alphas: &[f64],
) -> bool {
    let base = de_on_matrix(m, CutSpec::Size(k), agg, c);
    alphas.iter().all(|&alpha| de_on_matrix(&m.scaled(alpha), CutSpec::Size(k), agg, c) == base)
}

/// Build a P-conscious transformation of `m` with respect to partition `p`:
/// distances within a group are multiplied by `shrink ∈ (0, 1]`, distances
/// across groups by `expand ≥ 1`.
pub fn p_conscious_transform(
    m: &MatrixIndex,
    p: &Partition,
    shrink: f64,
    expand: f64,
) -> MatrixIndex {
    assert!(shrink > 0.0 && shrink <= 1.0, "shrink must be in (0, 1]");
    assert!(expand >= 1.0, "expand must be >= 1");
    m.transformed(|a, b, d| if p.are_together(a, b) { d * shrink } else { d * expand })
}

/// **Lemma 3 (split/merge consistency).** For `P = f(d)` and any
/// P-conscious transformation `d'`, each group of `f(d')` is either a
/// subset of a group of `P` or a union of groups of `P`. Returns `true` if
/// the property holds for the given transformation factors.
pub fn check_split_merge_consistency(
    m: &MatrixIndex,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    shrink: f64,
    expand: f64,
) -> bool {
    let p = de_on_matrix(m, cut, agg, c);
    let transformed = p_conscious_transform(m, &p, shrink, expand);
    let q = de_on_matrix(&transformed, cut, agg, c);
    q.groups().iter().all(|g| {
        let is_subset_of_one = {
            let host = p.group_index_of(g[0]);
            g.iter().all(|&id| p.group_index_of(id) == host)
        };
        let is_union_of_groups = {
            // Every P-group touched by g must be entirely inside g.
            g.iter().all(|&id| p.group_of(id).iter().all(|&other| g.contains(&other)))
        };
        is_subset_of_one || is_union_of_groups
    })
}

/// **Permutation equivariance** (implicit in the paper's functional view
/// of DE): relabeling the tuples must permute the partition accordingly —
/// the algorithm may not depend on tuple identifiers beyond deterministic
/// tie-breaking. Returns `true` if `f(π(d)) = π(f(d))` for the given
/// permutation (a slice where `perm[old_id] = new_id`).
///
/// Caveat: with *tied* distances the id-based tie-break genuinely depends
/// on labels, so callers should use relations with distinct pairwise
/// distances (as the paper assumes throughout).
pub fn check_permutation_equivariance(
    m: &MatrixIndex,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    perm: &[u32],
) -> bool {
    let n = m.len();
    assert_eq!(perm.len(), n, "permutation must cover the relation");
    let mut inverse = vec![0u32; n];
    for (old, &new) in perm.iter().enumerate() {
        inverse[new as usize] = old as u32;
    }
    let permuted = MatrixIndex::from_fn(n, |a, b| m.dist(inverse[a as usize], inverse[b as usize]));
    let p = de_on_matrix(m, cut, agg, c);
    let q = de_on_matrix(&permuted, cut, agg, c);
    // π(p) must equal q.
    let relabeled = Partition::from_groups(
        n,
        p.groups().iter().map(|g| g.iter().map(|&id| perm[id as usize]).collect()),
    );
    relabeled == q
}

/// Realize a target partition as a 1-D relation: group `i` of size `s_i`
/// is a tight cluster (spacing `eps`) centered at `i * separation`.
/// Returns the matrix and the target partition.
pub fn realize_partition(
    group_sizes: &[usize],
    eps: f64,
    separation: f64,
) -> (MatrixIndex, Partition) {
    assert!(eps > 0.0 && separation > eps * 100.0, "clusters must be well separated");
    let mut points = Vec::new();
    let mut groups = Vec::new();
    for (gi, &size) in group_sizes.iter().enumerate() {
        let mut group = Vec::with_capacity(size);
        for j in 0..size {
            group.push(points.len() as u32);
            points.push(gi as f64 * separation + j as f64 * eps);
        }
        groups.push(group);
    }
    let n = points.len();
    (MatrixIndex::from_points_1d(&points), Partition::from_groups(n, groups))
}

/// **Lemma 4 (constrained (α, β)-richness).** `DE_S(K)` is `(α, β)`-rich
/// when `c < |R|^(1−α)` and `K ≥ |R|^β`: its range contains every partition
/// into at least `|R|^(1−α)`... many groups of size below `|R|^β`.
/// Operationally: for the given `group_sizes` (all `≤ K`), there exists a
/// distance function for which `DE_S(K)` outputs exactly that partition.
/// Returns `true` if the realized instance is recovered.
pub fn check_richness(group_sizes: &[usize], k: usize, agg: Aggregation, c: f64) -> bool {
    assert!(group_sizes.iter().all(|&s| s >= 1 && s <= k));
    let (m, target) = realize_partition(group_sizes, 1e-3, 1e3);
    de_on_matrix(&m, CutSpec::Size(k), agg, c) == target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integers() -> MatrixIndex {
        MatrixIndex::from_points_1d(&[1.0, 2.0, 4.0, 20.0, 22.0, 30.0, 32.0])
    }

    #[test]
    fn lemma1_uniqueness() {
        let m = integers();
        for cut in [CutSpec::Size(3), CutSpec::Diameter(2.5)] {
            assert!(check_uniqueness(&m, cut, Aggregation::Max, 4.0), "{cut:?}");
        }
    }

    #[test]
    fn lemma2_scale_invariance_of_de_s() {
        let m = integers();
        assert!(check_scale_invariance(&m, 3, Aggregation::Max, 4.0, &[0.001, 0.1, 2.0, 1000.0]));
    }

    #[test]
    fn de_d_is_not_scale_invariant() {
        // The complementary sanity check: DE_D(θ) compares against an
        // absolute threshold, so a large rescale changes the partition.
        let m = integers();
        let base = de_on_matrix(&m, CutSpec::Diameter(2.5), Aggregation::Max, 4.0);
        let scaled = de_on_matrix(&m.scaled(100.0), CutSpec::Diameter(2.5), Aggregation::Max, 4.0);
        assert_ne!(base, scaled);
    }

    #[test]
    fn lemma3_split_merge_consistency() {
        let m = integers();
        for cut in [CutSpec::Size(3), CutSpec::Size(4), CutSpec::Diameter(3.0)] {
            for (shrink, expand) in [(0.5, 1.0), (1.0, 2.0), (0.25, 4.0), (1.0, 1.0)] {
                assert!(
                    check_split_merge_consistency(&m, cut, Aggregation::Max, 4.0, shrink, expand),
                    "cut={cut:?} shrink={shrink} expand={expand}"
                );
            }
        }
    }

    #[test]
    fn lemma4_richness_small_groups() {
        // Partitions into many small groups are realizable.
        assert!(check_richness(&[2, 2, 2, 1, 3], 3, Aggregation::Max, 10.0));
        // The all-singletons partition needs the SN criterion to do the
        // work (any finite point set has a mutual-nearest pair, so the CS
        // criterion alone cannot forbid all groups): choose c = 1 so that
        // no pair is sparse enough.
        assert!(check_richness(&[1, 1, 1, 1], 2, Aggregation::Max, 1.0));
        assert!(check_richness(&[3, 3, 3], 3, Aggregation::Max, 10.0));
        assert!(check_richness(&[2; 10], 4, Aggregation::Max, 10.0));
    }

    #[test]
    fn permutation_equivariance_holds() {
        let m = integers();
        // Reverse and a rotated permutation.
        let reverse: Vec<u32> = (0..7u32).rev().collect();
        let rotate: Vec<u32> = (0..7u32).map(|i| (i + 3) % 7).collect();
        for perm in [reverse, rotate] {
            for cut in [CutSpec::Size(3), CutSpec::Diameter(2.5)] {
                assert!(
                    check_permutation_equivariance(&m, cut, Aggregation::Max, 4.0, &perm),
                    "cut={cut:?} perm={perm:?}"
                );
            }
        }
    }

    #[test]
    fn p_conscious_transform_respects_sides() {
        let m = integers();
        let p = de_on_matrix(&m, CutSpec::Size(3), Aggregation::Max, 4.0);
        let t = p_conscious_transform(&m, &p, 0.5, 2.0);
        for a in 0..7u32 {
            for b in 0..7u32 {
                if a == b {
                    continue;
                }
                if p.are_together(a, b) {
                    assert!(t.dist(a, b) <= m.dist(a, b));
                } else {
                    assert!(t.dist(a, b) >= m.dist(a, b));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shrink")]
    fn bad_shrink_panics() {
        let m = integers();
        let p = Partition::singletons(7);
        p_conscious_transform(&m, &p, 0.0, 1.0);
    }

    #[test]
    fn realize_partition_shape() {
        let (m, p) = realize_partition(&[2, 3], 1e-3, 1e3);
        assert_eq!(m.len(), 5);
        assert_eq!(p.num_groups(), 2);
        assert!(p.are_together(0, 1));
        assert!(p.are_together(2, 4));
        assert!(!p.are_together(1, 2));
    }
}
