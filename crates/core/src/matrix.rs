//! Distance-matrix-backed nearest-neighbor "index".
//!
//! The axiomatic analysis of §3.1 quantifies over arbitrary distance
//! functions, and the motivating integer example of §3 uses
//! `d(a, b) = |a − b|`. [`MatrixIndex`] runs the whole DE machinery over an
//! explicit symmetric distance matrix, which is what the axiom checkers,
//! the growth-spheres demo, and many unit tests use.

use fuzzydedup_nnindex::NnIndex;
use fuzzydedup_relation::Neighbor;

/// A symmetric distance matrix implementing [`NnIndex`] exactly.
#[derive(Debug, Clone)]
pub struct MatrixIndex {
    n: usize,
    /// Row-major `n × n` distances.
    d: Vec<f64>,
}

impl MatrixIndex {
    /// Build from a full matrix. Validates shape, symmetry, zero diagonal,
    /// and non-negativity.
    ///
    /// # Panics
    /// Panics on malformed input — the matrix is produced by code, not by
    /// data.
    pub fn new(matrix: Vec<Vec<f64>>) -> Self {
        let n = matrix.len();
        let mut d = Vec::with_capacity(n * n);
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &v) in row.iter().enumerate() {
                assert!(v >= 0.0, "negative distance at ({i},{j})");
                if i == j {
                    assert_eq!(v, 0.0, "nonzero diagonal at {i}");
                }
                d.push(v);
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d[i * n + j], d[j * n + i], "asymmetric at ({i},{j})");
            }
        }
        Self { n, d }
    }

    /// Build from points on the real line with `d(a, b) = |a − b|`
    /// (the integers example of §3).
    pub fn from_points_1d(points: &[f64]) -> Self {
        let n = points.len();
        let mut matrix = vec![vec![0.0; n]; n];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (points[i] - points[j]).abs();
            }
        }
        Self::new(matrix)
    }

    /// Build by evaluating a symmetric distance function over `0..n`.
    // Symmetric fill writes (i, j) and (j, i) together; index loops are the
    // clear formulation here.
    #[allow(clippy::needless_range_loop)]
    pub fn from_fn(n: usize, f: impl Fn(u32, u32) -> f64) -> Self {
        let mut matrix = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = f(i as u32, j as u32);
                matrix[i][j] = v;
                matrix[j][i] = v;
            }
        }
        Self::new(matrix)
    }

    /// The distance between two ids.
    pub fn dist(&self, a: u32, b: u32) -> f64 {
        self.d[a as usize * self.n + b as usize]
    }

    /// A new matrix with every distance scaled by `alpha > 0` (scale
    /// invariance tests).
    pub fn scaled(&self, alpha: f64) -> Self {
        assert!(alpha > 0.0);
        Self { n: self.n, d: self.d.iter().map(|&v| v * alpha).collect() }
    }

    /// A new matrix transformed pointwise by `f(i, j, d)`; the result is
    /// re-validated (used for the P-conscious transformations of Lemma 3).
    pub fn transformed(&self, f: impl Fn(u32, u32, f64) -> f64) -> Self {
        let mut matrix = vec![vec![0.0; self.n]; self.n];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    *cell = f(i as u32, j as u32, self.dist(i as u32, j as u32));
                }
            }
        }
        Self::new(matrix)
    }

    fn all_neighbors(&self, id: u32) -> Vec<Neighbor> {
        (0..self.n as u32)
            .filter(|&o| o != id)
            .map(|o| Neighbor::new(o, self.dist(id, o)))
            .collect()
    }
}

impl NnIndex for MatrixIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn top_k(&self, id: u32, k: usize) -> Vec<Neighbor> {
        let mut all = self.all_neighbors(id);
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    fn within(&self, id: u32, radius: f64) -> Vec<Neighbor> {
        let mut all = self.all_neighbors(id);
        all.retain(|n| n.dist < radius);
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_integer_example_distances() {
        let m = MatrixIndex::from_points_1d(&[1.0, 2.0, 4.0, 20.0, 22.0, 30.0, 32.0]);
        assert_eq!(m.dist(0, 1), 1.0);
        assert_eq!(m.dist(0, 6), 31.0);
        assert_eq!(m.dist(3, 4), 2.0);
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn top_k_and_within() {
        let m = MatrixIndex::from_points_1d(&[0.0, 1.0, 3.0, 10.0]);
        let nn = m.top_k(0, 2);
        assert_eq!(nn[0].id, 1);
        assert_eq!(nn[1].id, 2);
        let w = m.within(0, 3.5);
        assert_eq!(w.len(), 2);
        assert!(m.within(0, 1.0).is_empty(), "strict inequality");
    }

    #[test]
    fn scaling() {
        let m = MatrixIndex::from_points_1d(&[0.0, 2.0]);
        let s = m.scaled(2.5);
        assert_eq!(s.dist(0, 1), 5.0);
    }

    #[test]
    fn transform_revalidates() {
        let m = MatrixIndex::from_points_1d(&[0.0, 1.0, 5.0]);
        let shrunk = m.transformed(|_, _, d| d / 2.0);
        assert_eq!(shrunk.dist(0, 2), 2.5);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetry_panics() {
        MatrixIndex::new(vec![vec![0.0, 1.0], vec![2.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn bad_diagonal_panics() {
        MatrixIndex::new(vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_distance_panics() {
        MatrixIndex::new(vec![vec![0.0, -1.0], vec![-1.0, 0.0]]);
    }

    #[test]
    fn from_fn_builds_symmetric() {
        let m = MatrixIndex::from_fn(3, |a, b| (a + b) as f64);
        assert_eq!(m.dist(0, 1), 1.0);
        assert_eq!(m.dist(1, 0), 1.0);
        assert_eq!(m.dist(1, 2), 3.0);
    }
}
