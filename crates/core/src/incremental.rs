//! Incremental duplicate elimination: keep the partition current as
//! records arrive in batches.
//!
//! The paper's pipeline is batch-only; this module is the natural
//! production extension. The key observation makes incremental maintenance
//! cheap: Phase 2 is a fast function of `NN_Reln` (the paper measures it
//! at a small fraction of Phase-1 cost), so only the *NN entries* need
//! incremental maintenance — the partition is recomputed from scratch
//! each batch.
//!
//! **Affected-set rule.** After appending a batch, an existing tuple's
//! entry can only change if some new record is visible to it through the
//! index, i.e. appears in its candidate set (shares a non-stop term).
//! We therefore recompute entries for (a) every new id and (b) every
//! existing id in some new id's candidate set. This is exactly consistent
//! with the index semantics: a pair the index cannot see never appears in
//! any NN list, so its entry cannot have depended on the new record.
//! Equivalence with full recomputation is asserted by the test suite on
//! randomized batch splits.

use fuzzydedup_nnindex::{
    DynamicIndexConfig, DynamicInvertedIndex, LookupSpec, NnIndex, PairDistanceCache,
};
use fuzzydedup_textdist::Distance;

use crate::criteria::Aggregation;
use crate::nnreln::{NnEntry, NnReln};
use crate::pair_cache::PairCache;
use crate::partition::Partition;
use crate::phase1::NeighborSpec;
use crate::phase2::partition_entries;
use crate::problem::CutSpec;

/// Statistics of one incremental batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Records appended in this batch.
    pub inserted: usize,
    /// Pre-existing entries recomputed because a new record entered their
    /// candidate neighborhoods.
    pub refreshed: usize,
}

/// An incrementally-maintained deduplication state; see module docs.
pub struct IncrementalDedup<D: Distance> {
    index: DynamicInvertedIndex<D>,
    entries: Vec<NnEntry>,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    p: f64,
    partition: Partition,
    pair_cache: Option<PairCache>,
}

impl<D: Distance> IncrementalDedup<D> {
    /// Create an empty incremental state.
    ///
    /// # Errors
    /// Returns the cut-validation message for invalid parameters.
    pub fn new(
        distance: D,
        index_config: DynamicIndexConfig,
        cut: CutSpec,
        agg: Aggregation,
        c: f64,
    ) -> Result<Self, String> {
        cut.validate()?;
        // `!(c > 0.0)` deliberately rejects NaN as well as non-positives.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let bad_c = !(c > 0.0);
        if bad_c {
            return Err(format!("SN threshold c must be positive, got {c}"));
        }
        Ok(Self {
            index: DynamicInvertedIndex::new(distance, index_config),
            entries: Vec::new(),
            cut,
            agg,
            c,
            p: 2.0,
            partition: Partition::singletons(0),
            pair_cache: None,
        })
    }

    /// Attach a symmetric pair-distance memo of `capacity` entries (`0`
    /// detaches it), the incremental mirror of
    /// [`crate::pipeline::DedupConfig::pair_cache_capacity`]. Refreshed
    /// entries re-verify many unchanged pairs batch after batch, so the
    /// memo pays off exactly here; the partition and `NN_Reln` are
    /// identical with the cache on or off (see
    /// [`crate::pair_cache::PairCache`] for the soundness contract —
    /// symmetric distance kernels only).
    pub fn pair_cache_capacity(mut self, capacity: usize) -> Self {
        self.pair_cache = (capacity > 0).then(|| PairCache::new(capacity));
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The current partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The current `NN_Reln` (rebuilt view over the maintained entries).
    pub fn nn_reln(&self) -> NnReln {
        NnReln::new(self.entries.clone())
    }

    fn spec(&self) -> LookupSpec {
        match NeighborSpec::from_cut(&self.cut, self.index.len()) {
            NeighborSpec::TopK(k) => LookupSpec::TopK(k),
            NeighborSpec::Radius(theta) => LookupSpec::Radius(theta),
        }
    }

    fn recompute_entry(&mut self, id: u32) {
        // Route through the caching extension point — plain `lookup` is
        // the cache=None shorthand and would silently bypass the memo.
        let cache = self.pair_cache.as_ref().map(|c| c as &dyn PairDistanceCache);
        let (neighbors, ng, _cost) = self.index.lookup_cached(id, self.spec(), self.p, cache);
        self.entries[id as usize] = NnEntry::new(id, neighbors, ng);
    }

    /// Append a batch of records, refresh affected entries, and recompute
    /// the partition.
    pub fn insert_batch(&mut self, records: impl IntoIterator<Item = Vec<String>>) -> BatchStats {
        let first_new = self.index.len() as u32;
        let mut new_ids: Vec<u32> = Vec::new();
        for record in records {
            let id = self.index.push(record);
            // Placeholder; filled below once all ids exist (a batch can
            // contain mutual duplicates, so entries must see the whole
            // batch).
            self.entries.push(NnEntry::new(id, Vec::new(), 1.0));
            new_ids.push(id);
        }

        // Affected pre-existing ids: candidates of the new records. The
        // scan is *uncapped*: term-sharing visibility is symmetric, but the
        // per-query candidate cap is not — an old record can rank a new one
        // inside its own top-k even when the (capped) reverse query drops
        // it, and that old record's entry must still refresh.
        let mut affected: Vec<u32> = Vec::new();
        for &id in &new_ids {
            for candidate in self.index.candidates_with_limit(id, 0) {
                if candidate < first_new {
                    affected.push(candidate);
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();

        for &id in &new_ids {
            self.recompute_entry(id);
        }
        for &id in &affected {
            self.recompute_entry(id);
        }

        // Phase 2 from scratch (cheap).
        let reln = NnReln::new(self.entries.clone());
        self.partition = partition_entries(&reln, self.cut, self.agg, self.c);
        BatchStats { inserted: new_ids.len(), refreshed: affected.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzydedup_textdist::EditDistance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fresh() -> IncrementalDedup<EditDistance> {
        IncrementalDedup::new(
            EditDistance,
            DynamicIndexConfig::default(),
            CutSpec::Size(4),
            Aggregation::Max,
            4.0,
        )
        .unwrap()
    }

    #[test]
    fn invalid_params_rejected() {
        let bad_cut = IncrementalDedup::new(
            EditDistance,
            DynamicIndexConfig::default(),
            CutSpec::Size(1),
            Aggregation::Max,
            4.0,
        );
        assert!(bad_cut.is_err());
        let bad_c = IncrementalDedup::new(
            EditDistance,
            DynamicIndexConfig::default(),
            CutSpec::Size(4),
            Aggregation::Max,
            f64::NAN,
        );
        assert!(bad_c.is_err());
    }

    #[test]
    fn single_batch_matches_batch_pipeline() {
        // Single-typo pairs: close enough that their 2·nn growth spheres
        // stay sparse even in a six-record relation.
        let records: Vec<Vec<String>> = [
            "the doors",
            "the doorz",
            "xylophone concerto",
            "xylophone concertoo",
            "aaliyah",
            "bob dylan",
        ]
        .iter()
        .map(|s| vec![s.to_string()])
        .collect();
        let mut inc = fresh();
        inc.insert_batch(records.clone());
        assert!(inc.partition().are_together(0, 1), "{:?}", inc.partition().groups());
        assert!(inc.partition().are_together(2, 3));
        assert!(!inc.partition().are_together(4, 5));
    }

    #[test]
    fn later_batch_merges_with_earlier_records() {
        let mut inc = fresh();
        inc.insert_batch(vec![vec!["the doors".to_string()], vec!["aaliyah".to_string()]]);
        assert_eq!(inc.partition().num_duplicate_pairs(), 0);
        let stats = inc.insert_batch(vec![vec!["the doorz".to_string()]]);
        assert_eq!(stats.inserted, 1);
        assert!(stats.refreshed >= 1, "the old 'the doors' entry must refresh");
        assert!(inc.partition().are_together(0, 2));
        assert_eq!(inc.len(), 3);
    }

    #[test]
    fn incremental_equals_full_recompute_on_random_splits() {
        let mut rng = StdRng::seed_from_u64(13);
        let base: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let v = if i % 3 == 0 {
                    format!("entity number {:03} alpha", i / 3)
                } else {
                    format!("entity number {:03} alphaa", i / 3)
                };
                vec![v]
            })
            .collect();
        for trial in 0..3 {
            // Random batch split.
            let mut inc = fresh();
            let mut at = 0;
            while at < base.len() {
                let take = rng.gen_range(1..=10).min(base.len() - at);
                inc.insert_batch(base[at..at + take].to_vec());
                at += take;
            }
            // Full recompute: one batch into a fresh state.
            let mut full = fresh();
            full.insert_batch(base.clone());
            assert_eq!(inc.partition(), full.partition(), "trial {trial}");
            assert_eq!(inc.nn_reln(), full.nn_reln(), "trial {trial}");
        }
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut inc = fresh();
        let stats = inc.insert_batch(Vec::<Vec<String>>::new());
        assert_eq!(stats, BatchStats { inserted: 0, refreshed: 0 });
        assert!(inc.is_empty());
        inc.insert_batch(vec![vec!["solo".to_string()]]);
        let stats = inc.insert_batch(Vec::<Vec<String>>::new());
        assert_eq!(stats.inserted, 0);
        assert_eq!(inc.partition().num_groups(), 1);
    }

    #[test]
    fn pair_cache_hits_without_changing_results() {
        // Counter-backed assertion: serialize against other metric tests.
        let _serial = fuzzydedup_metrics::serial_guard();
        // Duplicate-heavy append stream: every batch lands near the same
        // entities, so refreshed entries re-verify the same pairs over
        // and over — exactly the traffic the memo exists to absorb.
        let batches: Vec<Vec<Vec<String>>> = (0..6)
            .map(|b| {
                (0..10).map(|i| vec![format!("shared entity record {:02} v{b}", i % 5)]).collect()
            })
            .collect();
        let mut plain = fresh();
        let mut cached = fresh().pair_cache_capacity(1 << 14);
        let before = fuzzydedup_metrics::snapshot();
        for batch in &batches {
            plain.insert_batch(batch.clone());
            cached.insert_batch(batch.clone());
        }
        let d = fuzzydedup_metrics::snapshot().delta(&before);
        // The memo only skips recomputation; the state must not move.
        assert_eq!(plain.partition(), cached.partition());
        assert_eq!(plain.nn_reln(), cached.nn_reln());
        // The incremental path actually consults the cache now.
        assert!(
            d.get(fuzzydedup_metrics::Counter::PairCacheHits) > 0,
            "duplicate-heavy refreshes must hit the memo"
        );
    }

    #[test]
    fn pivots_do_not_change_incremental_results() {
        // Counter-backed assertion: serialize against other metric tests.
        let _serial = fuzzydedup_metrics::serial_guard();
        let with_pivots = || {
            IncrementalDedup::new(
                EditDistance,
                DynamicIndexConfig { pivots: 5, ..Default::default() },
                CutSpec::Size(4),
                Aggregation::Max,
                4.0,
            )
            .unwrap()
        };
        // Permuted-token triples: same gram multiset (invisible to the
        // count filter) but far in edit distance, so the triangle bound
        // has real work to do; appended in batches so the pivot table
        // extends incrementally.
        let batches: Vec<Vec<Vec<String>>> = (0..4)
            .map(|b| {
                (0..3)
                    .flat_map(|g| {
                        let g = b * 3 + g;
                        [
                            vec![format!("alpha bravo charlie delta {g:02}")],
                            vec![format!("alpha bravo charlie detla {g:02}")],
                            vec![format!("delta charlie bravo alpha {g:02}")],
                        ]
                    })
                    .collect()
            })
            .collect();
        let mut plain = fresh();
        let mut pruned = with_pivots();
        let before = fuzzydedup_metrics::snapshot();
        for batch in &batches {
            plain.insert_batch(batch.clone());
            pruned.insert_batch(batch.clone());
            assert_eq!(plain.partition(), pruned.partition());
            assert_eq!(plain.nn_reln(), pruned.nn_reln());
        }
        let d = fuzzydedup_metrics::snapshot().delta(&before);
        assert!(
            d.get(fuzzydedup_metrics::Counter::PivotLbSkips) > 0,
            "the triangle bound must fire on permuted candidates"
        );
        assert!(d.get(fuzzydedup_metrics::Counter::PivotTableBuildNs) > 0, "pushes were timed");
    }

    #[test]
    fn refresh_counts_are_bounded_by_corpus() {
        let mut inc = fresh();
        inc.insert_batch((0..20).map(|i| vec![format!("record {i:02}")]));
        let stats = inc.insert_batch(vec![vec!["record 21".to_string()]]);
        assert!(stats.refreshed <= 20);
    }
}
