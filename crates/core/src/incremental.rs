//! Incremental duplicate elimination: keep the partition current as
//! records arrive in batches.
//!
//! The paper's pipeline is batch-only; this module is the natural
//! production extension. The key observation makes incremental maintenance
//! cheap: Phase 2 is a fast function of `NN_Reln` (the paper measures it
//! at a small fraction of Phase-1 cost), so only the *NN entries* need
//! incremental maintenance — the partition is recomputed from scratch
//! each batch.
//!
//! **Affected-set rule.** After appending a batch, an existing tuple's
//! entry can only change if some new record is visible to it through the
//! index, i.e. appears in its candidate set (shares a non-stop term).
//! We therefore recompute entries for (a) every new id and (b) every
//! existing id in some new id's candidate set. This is exactly consistent
//! with the index semantics: a pair the index cannot see never appears in
//! any NN list, so its entry cannot have depended on the new record.
//! Equivalence with full recomputation is asserted by the test suite on
//! randomized batch splits.
//!
//! Construct states with [`IncrementalDedup::builder`], which exposes the
//! same configuration surface as [`crate::pipeline::DedupConfig`] —
//! including the pivot-pruning and per-phase parallelism knobs that the
//! historical positional constructor could not reach.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use fuzzydedup_metrics::{incr, Counter};
use fuzzydedup_nnindex::{
    DynamicIndexConfig, DynamicInvertedIndex, LookupCost, LookupSpec, NnIndex, PairDistanceCache,
};
use fuzzydedup_relation::Neighbor;
use fuzzydedup_textdist::Distance;

use crate::collapse::{CollapseKey, CollapseMap};
use crate::criteria::Aggregation;
use crate::nnreln::{NnEntry, NnReln};
use crate::pair_cache::PairCache;
use crate::parallel::resolve_threads;
use crate::partition::Partition;
use crate::phase1::NeighborSpec;
use crate::phase2::{partition_entries, partition_entries_parallel};
use crate::pipeline::{DedupError, Parallelism};
use crate::problem::CutSpec;

/// Statistics of one incremental batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchStats {
    /// Records appended in this batch.
    pub inserted: usize,
    /// Pre-existing entries recomputed because a new record entered their
    /// candidate neighborhoods.
    pub refreshed: usize,
}

/// Builder for [`IncrementalDedup`], mirroring the
/// [`crate::pipeline::DedupConfig`] surface on the incremental path.
///
/// Defaults match `DedupConfig::new`: `DE_S(5)`, `Max` aggregation,
/// `c = 4`, `p = 2`, no pair cache, no pivots, both phases sequential,
/// and [`DynamicIndexConfig::default`] for the index.
///
/// ```no_run
/// use fuzzydedup_core::{Aggregation, CutSpec, IncrementalDedup, Parallelism};
/// use fuzzydedup_textdist::EditDistance;
///
/// let state = IncrementalDedup::builder(EditDistance)
///     .cut(CutSpec::Size(4))
///     .aggregation(Aggregation::Max)
///     .sn_threshold(4.0)
///     .pair_cache_capacity(1 << 14)
///     .pivot_count(8)
///     .parallelism(Parallelism::threads(0))
///     .build()
///     .unwrap();
/// # let _ = state;
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalDedupBuilder<D> {
    distance: D,
    index: DynamicIndexConfig,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    p: f64,
    pair_cache_capacity: usize,
    pivot_count: Option<usize>,
    parallelism: Parallelism,
    collapse: Option<CollapseKey>,
}

impl<D: Distance> IncrementalDedupBuilder<D> {
    /// Start from the defaults (see the type docs).
    pub fn new(distance: D) -> Self {
        Self {
            distance,
            index: DynamicIndexConfig::default(),
            cut: CutSpec::Size(5),
            agg: Aggregation::Max,
            c: 4.0,
            p: 2.0,
            pair_cache_capacity: 0,
            pivot_count: None,
            parallelism: Parallelism::sequential(),
            collapse: None,
        }
    }

    /// Set the cut specification (`DE_S(K)` / `DE_D(θ)` / both / none).
    pub fn cut(mut self, cut: CutSpec) -> Self {
        self.cut = cut;
        self
    }

    /// Set the SN aggregation function.
    pub fn aggregation(mut self, agg: Aggregation) -> Self {
        self.agg = agg;
        self
    }

    /// Set the SN threshold `c`.
    pub fn sn_threshold(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Set the neighborhood-growth multiplier `p` (the paper fixes 2).
    pub fn growth_multiplier(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Set the dynamic index configuration (q-gram length, candidate
    /// limit, stop-gram thresholds, ...). A later [`Self::pivot_count`]
    /// call overrides its `pivots` field.
    pub fn index_config(mut self, config: DynamicIndexConfig) -> Self {
        self.index = config;
        self
    }

    /// Number of pivot anchors for triangle-inequality pruning during
    /// verification; `0` disables the layer. The incremental mirror of
    /// [`crate::pipeline::DedupConfig::pivot_count`]: only takes effect
    /// when the distance admits metric pruning, and the partition is
    /// bit-identical either way.
    pub fn pivot_count(mut self, pivots: usize) -> Self {
        self.pivot_count = Some(pivots);
        self
    }

    /// Capacity (in entries) of the symmetric pair-distance memo consulted
    /// during verification; `0` (the default) disables it. Refreshed
    /// entries re-verify many unchanged pairs batch after batch, so the
    /// memo pays off exactly here; the partition and `NN_Reln` are
    /// identical with the cache on or off (see
    /// [`crate::pair_cache::PairCache`] for the soundness contract —
    /// symmetric distance kernels only).
    pub fn pair_cache_capacity(mut self, capacity: usize) -> Self {
        self.pair_cache_capacity = capacity;
        self
    }

    /// Per-phase worker-thread counts, as on the batch pipeline: entry
    /// refreshes shard over `phase1_threads` workers and the partition
    /// recompute over `phase2_threads`. Results are identical to the
    /// sequential drive either way — every entry is an independent
    /// lookup (see [`crate::parallel`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enable the exact-duplicate collapse pre-pass on the incremental
    /// path — the mirror of [`crate::pipeline::DedupConfig::collapse`].
    /// Arriving records that normalize to an already-indexed key (see
    /// [`CollapseKey`]) are *not* re-indexed: their representative's
    /// multiplicity is bumped instead
    /// ([`DynamicInvertedIndex::note_duplicate`]), lookups weight cutoffs
    /// and growth counts in full-corpus units, and the partition /
    /// `NN_Reln` / point-query surfaces are expanded back to full-corpus
    /// ids — identical to running with the knob off (DESIGN.md §7.10).
    pub fn collapse(mut self, key: Option<CollapseKey>) -> Self {
        self.collapse = key;
        self
    }

    /// Build the empty incremental state.
    ///
    /// # Errors
    /// [`DedupError::InvalidConfig`] for an invalid cut, a non-positive
    /// (or NaN) SN threshold, or a growth multiplier below 1.
    pub fn build(self) -> Result<IncrementalDedup<D>, DedupError> {
        self.cut.validate().map_err(DedupError::InvalidConfig)?;
        // `!(c > 0.0)` deliberately rejects NaN as well as non-positives.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let bad_c = !(self.c > 0.0);
        if bad_c {
            return Err(DedupError::InvalidConfig(format!(
                "SN threshold c must be positive, got {}",
                self.c
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let bad_p = !(self.p >= 1.0);
        if bad_p {
            return Err(DedupError::InvalidConfig(format!(
                "growth multiplier p must be >= 1, got {}",
                self.p
            )));
        }
        let mut index_config = self.index;
        if let Some(pivots) = self.pivot_count {
            index_config.pivots = pivots;
        }
        if self.collapse == Some(CollapseKey::RecordString)
            && !self.distance.record_string_invariant()
        {
            return Err(DedupError::InvalidConfig(format!(
                "collapse key RecordString requires a record-string-invariant distance; {} is \
                 not — use CollapseKey::ExactFields",
                self.distance.name()
            )));
        }
        let (index, collapse) = match self.collapse {
            Some(key) => (
                DynamicInvertedIndex::new_collapsed(self.distance, index_config),
                Some(IncCollapse { key, by_key: HashMap::new(), classes: Vec::new() }),
            ),
            None => (DynamicInvertedIndex::new(self.distance, index_config), None),
        };
        Ok(IncrementalDedup {
            index,
            entries: Vec::new(),
            cut: self.cut,
            agg: self.agg,
            c: self.c,
            p: self.p,
            partition: Partition::singletons(0),
            pair_cache: (self.pair_cache_capacity > 0)
                .then(|| PairCache::new(self.pair_cache_capacity)),
            parallelism: self.parallelism,
            collapse,
        })
    }
}

/// Collapse bookkeeping on the incremental path: the normalization-key
/// map and the class structure, maintained as records arrive. Index ids
/// are representative ids; full-corpus ids are assigned in arrival order
/// and only materialize on the expansion surfaces.
struct IncCollapse {
    key: CollapseKey,
    /// Normalization key → representative (index) id.
    by_key: HashMap<String, u32>,
    /// Per representative, the full-corpus member ids, ascending (appends
    /// arrive in full-id order, so pushes keep each class sorted).
    classes: Vec<Vec<u32>>,
}

/// An incrementally-maintained deduplication state; see module docs.
pub struct IncrementalDedup<D: Distance> {
    index: DynamicInvertedIndex<D>,
    entries: Vec<NnEntry>,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    p: f64,
    partition: Partition,
    pair_cache: Option<PairCache>,
    parallelism: Parallelism,
    collapse: Option<IncCollapse>,
}

impl<D: Distance> IncrementalDedup<D> {
    /// Configure an incremental state with the [`IncrementalDedupBuilder`]
    /// — the incremental counterpart of [`crate::pipeline::DedupConfig`].
    pub fn builder(distance: D) -> IncrementalDedupBuilder<D> {
        IncrementalDedupBuilder::new(distance)
    }

    /// Create an empty incremental state.
    ///
    /// # Errors
    /// Returns the validation message for invalid parameters.
    #[deprecated(
        since = "0.1.0",
        note = "use `IncrementalDedup::builder(distance)` — the builder carries the full \
                `DedupConfig` surface (pivots, parallelism, pair cache) the positional \
                constructor cannot reach"
    )]
    pub fn new(
        distance: D,
        index_config: DynamicIndexConfig,
        cut: CutSpec,
        agg: Aggregation,
        c: f64,
    ) -> Result<Self, String> {
        Self::builder(distance)
            .index_config(index_config)
            .cut(cut)
            .aggregation(agg)
            .sn_threshold(c)
            .build()
            .map_err(|e| match e {
                DedupError::InvalidConfig(why) => why,
                other => other.to_string(),
            })
    }

    /// Attach a symmetric pair-distance memo of `capacity` entries (`0`
    /// detaches it).
    #[deprecated(
        since = "0.1.0",
        note = "configure via `IncrementalDedup::builder(...).pair_cache_capacity(...)`"
    )]
    pub fn pair_cache_capacity(mut self, capacity: usize) -> Self {
        self.pair_cache = (capacity > 0).then(|| PairCache::new(capacity));
        self
    }

    /// Number of records, in full-corpus units: with the collapse
    /// pre-pass on, exact duplicates count even though only their
    /// representative is indexed.
    pub fn len(&self) -> usize {
        self.index.n_full() as usize
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The current partition (over full-corpus ids).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The current `NN_Reln` over full-corpus ids (rebuilt view over the
    /// maintained entries; with collapse on, the representative-space
    /// entries expanded through [`CollapseMap::expand_reln`]).
    pub fn nn_reln(&self) -> NnReln {
        self.full_reln()
    }

    /// The indexed records — one per exact-duplicate class when the
    /// collapse pre-pass is on (members of a class are bytewise
    /// indistinguishable to the pipeline, so the representative stands in
    /// for all of them).
    pub fn records(&self) -> &[Vec<String>] {
        self.index.records()
    }

    /// Point query by content: the neighbor list and growth estimate the
    /// given record sees against the *current* corpus, plus the lookup
    /// cost paid — without inserting anything. Probing with the text of
    /// an indexed record returns that record itself at distance 0. This
    /// is the read primitive behind the dedup service's "find duplicates
    /// of this record now" API (see `crate::service`).
    pub fn query_record(&self, fields: &[&str]) -> (Vec<Neighbor>, f64, LookupCost) {
        let (neighbors, ng, cost) = self.index.probe(fields, self.spec(), self.p);
        let Some(col) = &self.collapse else {
            return (neighbors, ng, cost);
        };
        // Expand representative hits to full-corpus ids: every member of a
        // hit class sits at the representative's distance. The weighted
        // probe already counts in full-corpus units (a TopK lookup returns
        // all survivors), so only the canonical re-sort and the final cut
        // happen here.
        let mut full: Vec<Neighbor> = neighbors
            .iter()
            .flat_map(|nb| {
                col.classes[nb.id as usize].iter().map(|&member| Neighbor::new(member, nb.dist))
            })
            .collect();
        full.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        if let LookupSpec::TopK(k) = self.spec() {
            full.truncate(k);
        }
        (full, ng, cost)
    }

    fn spec(&self) -> LookupSpec {
        // Full-corpus units: a weighted lookup's cutoffs and k count every
        // collapsed duplicate, so the spec is derived from the full count.
        match NeighborSpec::from_cut(&self.cut, self.len()) {
            NeighborSpec::TopK(k) => LookupSpec::TopK(k),
            NeighborSpec::Radius(theta) => LookupSpec::Radius(theta),
        }
    }

    /// The full-corpus `NN_Reln`: the maintained entries, expanded through
    /// the class structure when collapse is on.
    fn full_reln(&self) -> NnReln {
        let reln = NnReln::new(self.entries.clone());
        match &self.collapse {
            None => reln,
            Some(col) => {
                let map = CollapseMap::from_parts(col.classes.clone());
                let visible: Vec<bool> =
                    (0..map.n_reps()).map(|r| self.index.has_terms(r as u32)).collect();
                map.expand_reln(&reln, NeighborSpec::from_cut(&self.cut, self.len()), &visible)
            }
        }
    }

    fn recompute_entry(&mut self, id: u32) {
        // Route through the caching extension point — plain `lookup` is
        // the cache=None shorthand and would silently bypass the memo.
        let cache = self.pair_cache.as_ref().map(|c| c as &dyn PairDistanceCache);
        let (neighbors, ng, _cost) = self.index.lookup_cached(id, self.spec(), self.p, cache);
        self.entries[id as usize] = NnEntry::new(id, neighbors, ng);
    }

    /// Recompute the entries for `ids`, sequentially or sharded over the
    /// configured Phase-1 worker threads. Every entry is an independent
    /// lookup, so the parallel drive produces bit-identical results (the
    /// same argument as [`crate::parallel::compute_nn_reln_parallel`]);
    /// the shared pair cache stays sound under interleaving by its
    /// contract.
    fn recompute_entries(&mut self, ids: &[u32]) {
        let threads = match self.parallelism.phase1_threads {
            None => 1,
            Some(n) => resolve_threads(n, ids.len()),
        };
        if threads <= 1 {
            for &id in ids {
                self.recompute_entry(id);
            }
            return;
        }
        let spec = self.spec();
        let p = self.p;
        let index = &self.index;
        let cache = self.pair_cache.as_ref().map(|c| c as &dyn PairDistanceCache);
        // Work-stealing over fixed blocks of the refresh list — the same
        // dispenser as parallel Phase 1 (duplicate-dense entries verify
        // far more candidates than sparse ones, so static sharding
        // strands workers).
        let slots: Vec<OnceLock<NnEntry>> = ids.iter().map(|_| OnceLock::new()).collect();
        let block = ids.len().div_ceil(threads * 8).clamp(1, 1024);
        let n_blocks = ids.len().div_ceil(block);
        let next_block = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let slots = &slots;
                let next_block = &next_block;
                scope.spawn(move || loop {
                    let b = next_block.fetch_add(1, Ordering::Relaxed);
                    if b >= n_blocks {
                        break;
                    }
                    incr(Counter::Phase1StealBlocks, 1);
                    let start = b * block;
                    let end = (start + block).min(ids.len());
                    for (i, &id) in ids.iter().enumerate().take(end).skip(start) {
                        let (neighbors, ng, _cost) = index.lookup_cached(id, spec, p, cache);
                        let claimed = slots[i].set(NnEntry::new(id, neighbors, ng)).is_ok();
                        debug_assert!(claimed, "id {id} computed twice");
                    }
                });
            }
        });
        for (slot, &id) in slots.into_iter().zip(ids) {
            self.entries[id as usize] = slot.into_inner().expect("all ids computed");
        }
    }

    /// Append a batch of records, refresh affected entries, and recompute
    /// the partition.
    pub fn insert_batch(&mut self, records: impl IntoIterator<Item = Vec<String>>) -> BatchStats {
        let first_new = self.index.len() as u32;
        let mut new_ids: Vec<u32> = Vec::new();
        // Pre-existing representatives whose multiplicity this batch bumped
        // (collapse mode): their own entries change (ng pins to 1, the
        // weighted cutoff tightens), and so may any entry that sees them.
        let mut dup_reps: Vec<u32> = Vec::new();
        let mut inserted = 0usize;
        for record in records {
            inserted += 1;
            if let Some(col) = self.collapse.as_mut() {
                let fields: Vec<&str> = record.iter().map(String::as_str).collect();
                let key = col.key.key_of(&fields);
                let full_id = self.index.n_full() as u32;
                if let Some(&rep) = col.by_key.get(&key) {
                    // Exact duplicate of an indexed class: no re-indexing,
                    // just the multiplicity bump.
                    self.index.note_duplicate(rep);
                    col.classes[rep as usize].push(full_id);
                    if rep < first_new {
                        dup_reps.push(rep);
                    }
                    continue;
                }
                let rep = self.index.push(record);
                col.by_key.insert(key, rep);
                col.classes.push(vec![full_id]);
                self.entries.push(NnEntry::new(rep, Vec::new(), 1.0));
                new_ids.push(rep);
                continue;
            }
            let id = self.index.push(record);
            // Placeholder; filled below once all ids exist (a batch can
            // contain mutual duplicates, so entries must see the whole
            // batch).
            self.entries.push(NnEntry::new(id, Vec::new(), 1.0));
            new_ids.push(id);
        }
        dup_reps.sort_unstable();
        dup_reps.dedup();

        // Affected pre-existing ids: candidates of the changed records —
        // the appended representatives plus (collapse mode) the bumped
        // ones, whose weight shift moves every entry they survive in. The
        // scan is *uncapped*: term-sharing visibility is symmetric, but the
        // per-query candidate cap is not — an old record can rank a new one
        // inside its own top-k even when the (capped) reverse query drops
        // it, and that old record's entry must still refresh.
        let mut affected: Vec<u32> = Vec::new();
        for &id in new_ids.iter().chain(&dup_reps) {
            for candidate in self.index.candidates_with_limit(id, 0) {
                if candidate < first_new {
                    affected.push(candidate);
                }
            }
        }
        affected.extend_from_slice(&dup_reps);
        affected.sort_unstable();
        affected.dedup();

        let mut refresh: Vec<u32> = Vec::with_capacity(new_ids.len() + affected.len());
        refresh.extend_from_slice(&new_ids);
        refresh.extend_from_slice(&affected);
        self.recompute_entries(&refresh);

        // Phase 2 from scratch (cheap), over the full-corpus relation.
        let reln = self.full_reln();
        self.partition = match self.parallelism.phase2_threads {
            None => partition_entries(&reln, self.cut, self.agg, self.c),
            Some(n) => partition_entries_parallel(&reln, self.cut, self.agg, self.c, n),
        };
        BatchStats { inserted, refreshed: affected.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzydedup_textdist::EditDistance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fresh_builder() -> IncrementalDedupBuilder<EditDistance> {
        IncrementalDedup::builder(EditDistance).cut(CutSpec::Size(4)).sn_threshold(4.0)
    }

    fn fresh() -> IncrementalDedup<EditDistance> {
        fresh_builder().build().unwrap()
    }

    #[test]
    fn invalid_params_rejected() {
        let bad_cut = fresh_builder().cut(CutSpec::Size(1)).build();
        assert!(matches!(bad_cut, Err(DedupError::InvalidConfig(_))));
        let bad_c = fresh_builder().sn_threshold(f64::NAN).build();
        assert!(matches!(bad_c, Err(DedupError::InvalidConfig(_))));
        let bad_p = fresh_builder().growth_multiplier(0.5).build();
        assert!(matches!(bad_p, Err(DedupError::InvalidConfig(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_new_shim_matches_builder() {
        // The one-PR compatibility shim: same validation, same results.
        assert!(IncrementalDedup::new(
            EditDistance,
            DynamicIndexConfig::default(),
            CutSpec::Size(1),
            Aggregation::Max,
            4.0,
        )
        .is_err());
        let records: Vec<Vec<String>> =
            ["the doors", "the doorz", "aaliyah"].iter().map(|s| vec![s.to_string()]).collect();
        let mut old = IncrementalDedup::new(
            EditDistance,
            DynamicIndexConfig::default(),
            CutSpec::Size(4),
            Aggregation::Max,
            4.0,
        )
        .unwrap()
        .pair_cache_capacity(1 << 10);
        let mut new = fresh_builder().pair_cache_capacity(1 << 10).build().unwrap();
        old.insert_batch(records.clone());
        new.insert_batch(records);
        assert_eq!(old.partition(), new.partition());
        assert_eq!(old.nn_reln(), new.nn_reln());
    }

    #[test]
    fn single_batch_matches_batch_pipeline() {
        // Single-typo pairs: close enough that their 2·nn growth spheres
        // stay sparse even in a six-record relation.
        let records: Vec<Vec<String>> = [
            "the doors",
            "the doorz",
            "xylophone concerto",
            "xylophone concertoo",
            "aaliyah",
            "bob dylan",
        ]
        .iter()
        .map(|s| vec![s.to_string()])
        .collect();
        let mut inc = fresh();
        inc.insert_batch(records.clone());
        assert!(inc.partition().are_together(0, 1), "{:?}", inc.partition().groups());
        assert!(inc.partition().are_together(2, 3));
        assert!(!inc.partition().are_together(4, 5));
    }

    #[test]
    fn later_batch_merges_with_earlier_records() {
        let mut inc = fresh();
        inc.insert_batch(vec![vec!["the doors".to_string()], vec!["aaliyah".to_string()]]);
        assert_eq!(inc.partition().num_duplicate_pairs(), 0);
        let stats = inc.insert_batch(vec![vec!["the doorz".to_string()]]);
        assert_eq!(stats.inserted, 1);
        assert!(stats.refreshed >= 1, "the old 'the doors' entry must refresh");
        assert!(inc.partition().are_together(0, 2));
        assert_eq!(inc.len(), 3);
    }

    #[test]
    fn incremental_equals_full_recompute_on_random_splits() {
        let mut rng = StdRng::seed_from_u64(13);
        let base: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let v = if i % 3 == 0 {
                    format!("entity number {:03} alpha", i / 3)
                } else {
                    format!("entity number {:03} alphaa", i / 3)
                };
                vec![v]
            })
            .collect();
        for trial in 0..3 {
            // Random batch split.
            let mut inc = fresh();
            let mut at = 0;
            while at < base.len() {
                let take = rng.gen_range(1..=10).min(base.len() - at);
                inc.insert_batch(base[at..at + take].to_vec());
                at += take;
            }
            // Full recompute: one batch into a fresh state.
            let mut full = fresh();
            full.insert_batch(base.clone());
            assert_eq!(inc.partition(), full.partition(), "trial {trial}");
            assert_eq!(inc.nn_reln(), full.nn_reln(), "trial {trial}");
        }
    }

    #[test]
    fn parallelism_does_not_change_results() {
        // Counter-backed assertion below: serialize against other tests.
        let _serial = fuzzydedup_metrics::serial_guard();
        let base: Vec<Vec<String>> = (0..80)
            .map(|i| {
                let v = if i % 4 == 0 {
                    format!("workload entity {:03} omega", i / 4)
                } else {
                    format!("workload entity {:03} omegaa", i / 4)
                };
                vec![v]
            })
            .collect();
        let mut seq = fresh();
        let mut par = fresh_builder().parallelism(Parallelism::threads(2)).build().unwrap();
        let before = fuzzydedup_metrics::snapshot();
        for chunk in base.chunks(17) {
            seq.insert_batch(chunk.to_vec());
            par.insert_batch(chunk.to_vec());
            assert_eq!(seq.partition(), par.partition());
            assert_eq!(seq.nn_reln(), par.nn_reln());
        }
        let d = fuzzydedup_metrics::snapshot().delta(&before);
        assert!(
            d.get(fuzzydedup_metrics::Counter::Phase1StealBlocks) > 0,
            "the parallel refresh must actually steal blocks"
        );
    }

    #[test]
    fn query_record_matches_partition_membership() {
        let mut inc = fresh();
        inc.insert_batch(vec![
            vec!["golden dragon palace".to_string()],
            vec!["golden dragon palce".to_string()],
            vec!["unrelated payload".to_string()],
        ]);
        // Probing with an indexed record's text sees that record at 0.
        let (neighbors, _, _) = inc.query_record(&["golden dragon palace"]);
        assert_eq!(neighbors[0].id, 0);
        assert_eq!(neighbors[0].dist, 0.0);
        // Probing with a near-duplicate of the cluster ranks it first.
        let (neighbors, _, _) = inc.query_record(&["golden dragon  palace"]);
        assert!(inc.partition().are_together(0, neighbors[0].id));
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut inc = fresh();
        let stats = inc.insert_batch(Vec::<Vec<String>>::new());
        assert_eq!(stats, BatchStats { inserted: 0, refreshed: 0 });
        assert!(inc.is_empty());
        inc.insert_batch(vec![vec!["solo".to_string()]]);
        let stats = inc.insert_batch(Vec::<Vec<String>>::new());
        assert_eq!(stats.inserted, 0);
        assert_eq!(inc.partition().num_groups(), 1);
    }

    #[test]
    fn pair_cache_hits_without_changing_results() {
        // Counter-backed assertion: serialize against other metric tests.
        let _serial = fuzzydedup_metrics::serial_guard();
        // Duplicate-heavy append stream: every batch lands near the same
        // entities, so refreshed entries re-verify the same pairs over
        // and over — exactly the traffic the memo exists to absorb.
        let batches: Vec<Vec<Vec<String>>> = (0..6)
            .map(|b| {
                (0..10).map(|i| vec![format!("shared entity record {:02} v{b}", i % 5)]).collect()
            })
            .collect();
        let mut plain = fresh();
        let mut cached = fresh_builder().pair_cache_capacity(1 << 14).build().unwrap();
        let before = fuzzydedup_metrics::snapshot();
        for batch in &batches {
            plain.insert_batch(batch.clone());
            cached.insert_batch(batch.clone());
        }
        let d = fuzzydedup_metrics::snapshot().delta(&before);
        // The memo only skips recomputation; the state must not move.
        assert_eq!(plain.partition(), cached.partition());
        assert_eq!(plain.nn_reln(), cached.nn_reln());
        // The incremental path actually consults the cache now.
        assert!(
            d.get(fuzzydedup_metrics::Counter::PairCacheHits) > 0,
            "duplicate-heavy refreshes must hit the memo"
        );
    }

    #[test]
    fn pivots_do_not_change_incremental_results() {
        // Counter-backed assertion: serialize against other metric tests.
        let _serial = fuzzydedup_metrics::serial_guard();
        let with_pivots = || fresh_builder().pivot_count(5).build().unwrap();
        // Permuted-token triples: same gram multiset (invisible to the
        // count filter) but far in edit distance, so the triangle bound
        // has real work to do; appended in batches so the pivot table
        // extends incrementally.
        let batches: Vec<Vec<Vec<String>>> = (0..4)
            .map(|b| {
                (0..3)
                    .flat_map(|g| {
                        let g = b * 3 + g;
                        [
                            vec![format!("alpha bravo charlie delta {g:02}")],
                            vec![format!("alpha bravo charlie detla {g:02}")],
                            vec![format!("delta charlie bravo alpha {g:02}")],
                        ]
                    })
                    .collect()
            })
            .collect();
        let mut plain = fresh();
        let mut pruned = with_pivots();
        let before = fuzzydedup_metrics::snapshot();
        for batch in &batches {
            plain.insert_batch(batch.clone());
            pruned.insert_batch(batch.clone());
            assert_eq!(plain.partition(), pruned.partition());
            assert_eq!(plain.nn_reln(), pruned.nn_reln());
        }
        let d = fuzzydedup_metrics::snapshot().delta(&before);
        assert!(
            d.get(fuzzydedup_metrics::Counter::PivotLbSkips) > 0,
            "the triangle bound must fire on permuted candidates"
        );
        assert!(d.get(fuzzydedup_metrics::Counter::PivotTableBuildNs) > 0, "pushes were timed");
    }

    #[test]
    fn collapse_does_not_change_incremental_results() {
        // Duplicate-heavy append stream with exact repeats inside and
        // across batches: collapse-on must track collapse-off (and thus
        // the batch pipeline, by the existing identity tests) exactly.
        let batches: Vec<Vec<Vec<String>>> = (0..5)
            .map(|b| {
                (0..12)
                    .map(|i| {
                        let e = (b * 12 + i) % 9;
                        let v = if i % 3 == 2 {
                            format!("incr entity {e:02} lambdaa")
                        } else {
                            format!("incr entity {e:02} lambda")
                        };
                        vec![v]
                    })
                    .collect()
            })
            .collect();
        for key in [CollapseKey::RecordString, CollapseKey::ExactFields] {
            let mut plain = fresh();
            let mut collapsed = fresh_builder().collapse(Some(key)).build().unwrap();
            for batch in &batches {
                let a = plain.insert_batch(batch.clone());
                let b = collapsed.insert_batch(batch.clone());
                assert_eq!(a.inserted, b.inserted, "{key:?}");
                assert_eq!(plain.partition(), collapsed.partition(), "{key:?}");
                assert_eq!(plain.nn_reln(), collapsed.nn_reln(), "{key:?}");
                assert_eq!(plain.len(), collapsed.len(), "{key:?}");
            }
            // Only unique keys were indexed.
            assert!(collapsed.records().len() < plain.records().len(), "{key:?}");
            // Point queries agree after expansion back to full ids.
            for probe in ["incr entity 04 lambda", "incr entity 07 lambdaa", "no such thing"] {
                let (n_plain, ng_plain, _) = plain.query_record(&[probe]);
                let (n_coll, ng_coll, _) = collapsed.query_record(&[probe]);
                assert_eq!(n_plain, n_coll, "{key:?}: probe {probe:?}");
                assert_eq!(ng_plain, ng_coll, "{key:?}: probe {probe:?}");
            }
        }
    }

    #[test]
    fn collapse_record_string_requires_invariant_distance() {
        // EditDistance is whole-record, so RecordString is accepted.
        assert!(fresh_builder().collapse(Some(CollapseKey::RecordString)).build().is_ok());
        // A per-field composite is not; the builder must reject the pair.
        let composite = fuzzydedup_textdist::CompositeDistance::uniform(EditDistance);
        let rejected = IncrementalDedup::builder(composite)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .collapse(Some(CollapseKey::RecordString))
            .build();
        assert!(matches!(rejected, Err(DedupError::InvalidConfig(_))));
        // ... while ExactFields stays sound for every distance.
        let composite = fuzzydedup_textdist::CompositeDistance::uniform(EditDistance);
        assert!(IncrementalDedup::builder(composite)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .collapse(Some(CollapseKey::ExactFields))
            .build()
            .is_ok());
    }

    #[test]
    fn refresh_counts_are_bounded_by_corpus() {
        let mut inc = fresh();
        inc.insert_batch((0..20).map(|i| vec![format!("record {i:02}")]));
        let stats = inc.insert_batch(vec![vec!["record 21".to_string()]]);
        assert!(stats.refreshed <= 20);
    }
}
