//! Partitions of a relation into groups of duplicates.

use std::collections::HashMap;

/// A partition of tuple ids `0..n` into disjoint groups. Groups are stored
/// in canonical form: each group sorted ascending, groups ordered by their
/// minimum id, singletons included. Canonical form makes partitions
/// directly comparable — which the uniqueness axiom tests rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    groups: Vec<Vec<u32>>,
    group_of: Vec<u32>,
}

impl Partition {
    /// Build from groups (possibly missing singletons, possibly unsorted).
    /// Ids not covered by any group become singletons.
    ///
    /// # Panics
    /// Panics if a group references an id `>= n` or if two groups overlap —
    /// both indicate a bug in the partitioning algorithm, not bad data.
    pub fn from_groups(n: usize, groups: impl IntoIterator<Item = Vec<u32>>) -> Self {
        // `u32::MAX` marks ids no supplied group covers (future
        // singletons); covered ids get their final index once canonical
        // order is known.
        const FREE: u32 = u32::MAX;
        let mut group_of: Vec<u32> = vec![FREE; n];
        let mut supplied: Vec<Vec<u32>> = Vec::new();
        for mut g in groups {
            g.sort_unstable();
            g.dedup();
            if g.is_empty() {
                continue;
            }
            for &id in &g {
                assert!((id as usize) < n, "group references id {id} >= n={n}");
                assert!(group_of[id as usize] == FREE, "id {id} appears in more than one group");
                group_of[id as usize] = 0; // provisional; remapped below
            }
            supplied.push(g);
        }
        // Canonical order: by minimum id. Walk ids ascending, merging the
        // sorted supplied groups with the uncovered ids' singletons.
        supplied.sort_unstable_by_key(|g| g[0]);
        let singles = group_of.iter().filter(|&&gi| gi == FREE).count();
        let mut canonical: Vec<Vec<u32>> = Vec::with_capacity(supplied.len() + singles);
        let mut next = supplied.into_iter().peekable();
        for id in 0..n as u32 {
            if group_of[id as usize] == FREE {
                group_of[id as usize] = canonical.len() as u32;
                canonical.push(vec![id]);
            } else if next.peek().is_some_and(|g| g[0] == id) {
                let g = next.next().expect("peeked");
                let gi = canonical.len() as u32;
                for &u in &g {
                    group_of[u as usize] = gi;
                }
                canonical.push(g);
            }
            // Non-minimum members of supplied groups take neither branch:
            // their group was already emitted at its minimum id.
        }
        debug_assert!(next.peek().is_none(), "every supplied group starts at some id");
        Self { n, groups: canonical, group_of }
    }

    /// The all-singletons partition.
    pub fn singletons(n: usize) -> Self {
        Self::from_groups(n, std::iter::empty())
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The groups in canonical order (singletons included).
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Groups with at least two members (the actual duplicate groups).
    pub fn duplicate_groups(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.groups.iter().filter(|g| g.len() > 1)
    }

    /// Index of the group containing `id`.
    pub fn group_index_of(&self, id: u32) -> usize {
        self.group_of[id as usize] as usize
    }

    /// The group containing `id`.
    pub fn group_of(&self, id: u32) -> &[u32] {
        &self.groups[self.group_index_of(id)]
    }

    /// Whether two ids are in the same group.
    pub fn are_together(&self, a: u32, b: u32) -> bool {
        self.group_of[a as usize] == self.group_of[b as usize]
    }

    /// All unordered pairs `(a, b)`, `a < b`, placed in the same group.
    pub fn duplicate_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for g in self.duplicate_groups() {
            for i in 0..g.len() {
                for j in i + 1..g.len() {
                    out.push((g[i], g[j]));
                }
            }
        }
        out
    }

    /// Number of same-group pairs (without materializing them).
    pub fn num_duplicate_pairs(&self) -> u64 {
        self.duplicate_groups().map(|g| (g.len() as u64 * (g.len() as u64 - 1)) / 2).sum()
    }

    /// Number of groups (including singletons).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Whether `other` refines `self` (every group of `other` is contained
    /// in a group of `self`).
    pub fn is_refined_by(&self, other: &Partition) -> bool {
        if self.n != other.n {
            return false;
        }
        other.groups.iter().all(|g| {
            let host = self.group_of[g[0] as usize];
            g.iter().all(|&id| self.group_of[id as usize] == host)
        })
    }

    /// The **meet** (greatest common refinement) of two partitions: ids
    /// share a group in the result iff they share a group in *both*
    /// inputs. The high-precision ensemble combinator — e.g. intersecting
    /// a `DE` run under fms with one under edit distance keeps only pairs
    /// both distances agree on.
    ///
    /// # Panics
    /// Panics if the partitions cover different relations.
    pub fn meet(&self, other: &Partition) -> Partition {
        assert_eq!(self.n, other.n, "partitions must cover the same relation");
        let mut cells: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for id in 0..self.n as u32 {
            cells
                .entry((self.group_of[id as usize], other.group_of[id as usize]))
                .or_default()
                .push(id);
        }
        Partition::from_groups(self.n, cells.into_values())
    }

    /// The **join** (finest common coarsening) of two partitions: ids share
    /// a group iff they are connected through any chain of same-group
    /// relations in either input. The high-recall ensemble combinator.
    ///
    /// # Panics
    /// Panics if the partitions cover different relations.
    pub fn join(&self, other: &Partition) -> Partition {
        assert_eq!(self.n, other.n, "partitions must cover the same relation");
        // Union-find over both partitions' groups.
        let mut parent: Vec<u32> = (0..self.n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let gp = parent[parent[x as usize] as usize];
                parent[x as usize] = gp;
                x = gp;
            }
            x
        }
        for p in [self, other] {
            for g in p.groups() {
                for w in g.windows(2) {
                    let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
        }
        let mut roots: HashMap<u32, Vec<u32>> = HashMap::new();
        for id in 0..self.n as u32 {
            roots.entry(find(&mut parent, id)).or_default().push(id);
        }
        Partition::from_groups(self.n, roots.into_values())
    }

    /// Size histogram: map from group size to count, useful for the
    /// "most groups of duplicates are of size 2 or 3" observations.
    pub fn size_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for g in &self.groups {
            *h.entry(g.len()).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_and_singletons() {
        let p = Partition::from_groups(6, vec![vec![4, 2], vec![5, 0]]);
        assert_eq!(p.groups(), &[vec![0, 5], vec![1], vec![2, 4], vec![3]]);
        assert_eq!(p.num_groups(), 4);
        assert!(p.are_together(2, 4));
        assert!(!p.are_together(0, 1));
        assert_eq!(p.group_of(5), &[0, 5]);
    }

    #[test]
    fn equality_is_structural() {
        let a = Partition::from_groups(4, vec![vec![1, 0], vec![3, 2]]);
        let b = Partition::from_groups(4, vec![vec![2, 3], vec![0, 1]]);
        assert_eq!(a, b);
        let c = Partition::from_groups(4, vec![vec![0, 2]]);
        assert_ne!(a, c);
    }

    #[test]
    fn duplicate_pairs_enumeration() {
        let p = Partition::from_groups(5, vec![vec![0, 1, 2]]);
        let mut pairs = p.duplicate_pairs();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(p.num_duplicate_pairs(), 3);
        assert_eq!(Partition::singletons(5).num_duplicate_pairs(), 0);
    }

    #[test]
    fn refinement() {
        let coarse = Partition::from_groups(4, vec![vec![0, 1, 2, 3]]);
        let fine = Partition::from_groups(4, vec![vec![0, 1], vec![2, 3]]);
        assert!(coarse.is_refined_by(&fine));
        assert!(!fine.is_refined_by(&coarse));
        assert!(coarse.is_refined_by(&coarse));
        assert!(!coarse.is_refined_by(&Partition::singletons(3)));
    }

    #[test]
    #[should_panic(expected = "more than one group")]
    fn overlapping_groups_panic() {
        Partition::from_groups(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = ">= n")]
    fn out_of_range_panics() {
        Partition::from_groups(2, vec![vec![0, 5]]);
    }

    #[test]
    fn size_histogram_counts() {
        let p = Partition::from_groups(6, vec![vec![0, 1], vec![2, 3]]);
        let h = p.size_histogram();
        assert_eq!(h[&2], 2);
        assert_eq!(h[&1], 2);
    }

    #[test]
    fn empty_relation() {
        let p = Partition::singletons(0);
        assert_eq!(p.num_groups(), 0);
        assert!(p.duplicate_pairs().is_empty());
    }

    #[test]
    fn meet_intersects_groups() {
        let a = Partition::from_groups(5, vec![vec![0, 1, 2], vec![3, 4]]);
        let b = Partition::from_groups(5, vec![vec![0, 1], vec![2, 3, 4]]);
        let m = a.meet(&b);
        assert_eq!(m.groups(), &[vec![0, 1], vec![2], vec![3, 4]]);
        // Meet refines both inputs.
        assert!(a.is_refined_by(&m));
        assert!(b.is_refined_by(&m));
        // Idempotent and commutative.
        assert_eq!(a.meet(&a), a);
        assert_eq!(a.meet(&b), b.meet(&a));
    }

    #[test]
    fn join_unions_transitively() {
        let a = Partition::from_groups(5, vec![vec![0, 1], vec![2, 3]]);
        let b = Partition::from_groups(5, vec![vec![1, 2]]);
        let j = a.join(&b);
        assert!(j.are_together(0, 3), "chained through 1-2");
        assert!(!j.are_together(0, 4));
        // Both inputs refine the join.
        assert!(j.is_refined_by(&a));
        assert!(j.is_refined_by(&b));
        assert_eq!(a.join(&a), a);
        assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn meet_join_absorption() {
        let a = Partition::from_groups(6, vec![vec![0, 1, 2], vec![4, 5]]);
        let b = Partition::from_groups(6, vec![vec![1, 2, 3]]);
        // Lattice absorption laws: a ∧ (a ∨ b) = a and a ∨ (a ∧ b) = a.
        assert_eq!(a.meet(&a.join(&b)), a);
        assert_eq!(a.join(&a.meet(&b)), a);
    }

    #[test]
    #[should_panic(expected = "same relation")]
    fn meet_requires_same_n() {
        Partition::singletons(3).meet(&Partition::singletons(4));
    }

    #[test]
    fn duplicate_ids_within_group_are_deduped() {
        let p = Partition::from_groups(3, vec![vec![1, 1, 0]]);
        assert_eq!(p.groups(), &[vec![0, 1], vec![2]]);
    }
}
