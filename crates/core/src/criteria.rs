//! The compact-set (CS) and sparse-neighborhood (SN) criteria of §2.
//!
//! **CS criterion** — a set `S` is *compact* iff every tuple in `S` is
//! closer to every other tuple in `S` than to any tuple outside `S`;
//! equivalently, the `|S|`-nearest-neighbor set (self included) of every
//! member equals `S`. The second formulation is what the algorithm checks,
//! using the materialized NN lists: [`is_compact_set`].
//!
//! **SN criterion** — `S` is an `SN(AGG, c)` group iff `|S| = 1` or the
//! aggregated neighborhood growths of its members stay below `c`:
//! [`sparse_neighborhood_ok`] with an [`Aggregation`] function (the paper
//! evaluates `max` and `avg`; Figure 7 additionally uses the second
//! maximum, `max2`).

use crate::nnreln::NnReln;

/// Aggregation function for the SN criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Maximum neighborhood growth in the group (the paper's default).
    #[default]
    Max,
    /// Arithmetic mean of the growths.
    Avg,
    /// Second-largest growth (Figure 7's `Max2`): tolerates one dense
    /// member.
    Max2,
    /// Minimum growth (lenient; included for ablations).
    Min,
}

impl Aggregation {
    /// Aggregate a non-empty slice of NG values.
    pub fn aggregate(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "aggregate of empty group");
        match self {
            Aggregation::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Avg => values.iter().sum::<f64>() / values.len() as f64,
            Aggregation::Max2 => {
                let (mut first, mut second) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for &v in values {
                    if v > first {
                        second = first;
                        first = v;
                    } else if v > second {
                        second = v;
                    }
                }
                if values.len() == 1 {
                    first
                } else {
                    second
                }
            }
            Aggregation::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// Parse from the experiment drivers' names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "max" => Some(Self::Max),
            "avg" | "mean" => Some(Self::Avg),
            "max2" => Some(Self::Max2),
            "min" => Some(Self::Min),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Max => "max",
            Self::Avg => "avg",
            Self::Max2 => "max2",
            Self::Min => "min",
        }
    }
}

/// Check the CS criterion for a candidate set `S` (sorted ids) against the
/// materialized NN lists: every member's `|S|`-nearest-neighbor set
/// (including itself) must equal `S`.
///
/// Singletons are trivially compact. Returns `false` when any member's NN
/// list is too short to decide.
pub fn is_compact_set(reln: &NnReln, s: &[u32]) -> bool {
    let m = s.len();
    if m <= 1 {
        return true;
    }
    debug_assert!(s.windows(2).all(|w| w[0] < w[1]), "S must be sorted and unique");
    s.iter().all(|&u| reln.entry(u).prefix_set(m).as_deref() == Some(s))
}

/// Check the SN criterion: `AGG({ng(v) : v ∈ S}) < c`, with singletons
/// passing unconditionally (clause (i) of the definition).
pub fn sparse_neighborhood_ok(reln: &NnReln, s: &[u32], agg: Aggregation, c: f64) -> bool {
    if s.len() <= 1 {
        return true;
    }
    let ngs: Vec<f64> = s.iter().map(|&u| reln.entry(u).ng).collect();
    agg.aggregate(&ngs) < c
}

/// The diameter of a set under the materialized NN lists: the maximum
/// pairwise distance, or `None` if some pairwise distance is not recorded
/// (which, for radius-θ lists, means the diameter exceeds θ).
pub fn diameter(reln: &NnReln, s: &[u32]) -> Option<f64> {
    let mut max = 0.0f64;
    for (i, &u) in s.iter().enumerate() {
        for &w in &s[i + 1..] {
            let d = reln.entry(u).dist_to(w)?;
            max = max.max(d);
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnreln::NnEntry;
    use fuzzydedup_relation::Neighbor;

    fn entry(id: u32, neighbors: &[(u32, f64)], ng: f64) -> NnEntry {
        NnEntry::new(id, neighbors.iter().map(|&(i, d)| Neighbor::new(i, d)).collect(), ng)
    }

    /// Figure-6-style fixture: {0, 1} mutual NNs, {2, 3} mutual NNs, and
    /// tuple 4 pointing at 2 without reciprocation.
    fn reln() -> NnReln {
        NnReln::new(vec![
            entry(0, &[(1, 0.1), (2, 0.8), (3, 0.85), (4, 0.9)], 2.0),
            entry(1, &[(0, 0.1), (2, 0.82), (3, 0.87), (4, 0.92)], 2.0),
            entry(2, &[(3, 0.2), (4, 0.3), (0, 0.8), (1, 0.82)], 3.0),
            entry(3, &[(2, 0.2), (4, 0.35), (0, 0.85), (1, 0.87)], 3.0),
            entry(4, &[(2, 0.3), (3, 0.35), (0, 0.9), (1, 0.92)], 3.0),
        ])
    }

    #[test]
    fn aggregation_functions() {
        let v = [2.0, 5.0, 3.0];
        assert_eq!(Aggregation::Max.aggregate(&v), 5.0);
        assert_eq!(Aggregation::Avg.aggregate(&v), 10.0 / 3.0);
        assert_eq!(Aggregation::Max2.aggregate(&v), 3.0);
        assert_eq!(Aggregation::Min.aggregate(&v), 2.0);
        assert_eq!(Aggregation::Max2.aggregate(&[7.0]), 7.0, "singleton max2 = max");
        assert_eq!(Aggregation::Max2.aggregate(&[7.0, 7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn aggregate_empty_panics() {
        Aggregation::Max.aggregate(&[]);
    }

    #[test]
    fn aggregation_parsing() {
        for a in [Aggregation::Max, Aggregation::Avg, Aggregation::Max2, Aggregation::Min] {
            assert_eq!(Aggregation::parse(a.name()), Some(a));
        }
        assert_eq!(Aggregation::parse("median"), None);
    }

    #[test]
    fn mutual_nn_pairs_are_compact() {
        let r = reln();
        assert!(is_compact_set(&r, &[0, 1]));
        assert!(is_compact_set(&r, &[2, 3]));
    }

    #[test]
    fn non_mutual_pairs_are_not_compact() {
        let r = reln();
        // 4's nearest neighbor is 2, but 2's is 3.
        assert!(!is_compact_set(&r, &[2, 4]));
        assert!(!is_compact_set(&r, &[0, 2]));
    }

    #[test]
    fn larger_compact_sets() {
        let r = reln();
        // {2,3,4}: each member's 3-NN set is {2,3,4}.
        assert!(is_compact_set(&r, &[2, 3, 4]));
        // {0,1,2} is not: 2's 3-prefix is {2,3,4}.
        assert!(!is_compact_set(&r, &[0, 1, 2]));
    }

    #[test]
    fn singletons_trivially_compact_and_sparse() {
        let r = reln();
        assert!(is_compact_set(&r, &[4]));
        assert!(sparse_neighborhood_ok(&r, &[4], Aggregation::Max, 0.5));
    }

    #[test]
    fn sn_criterion_thresholds() {
        let r = reln();
        assert!(sparse_neighborhood_ok(&r, &[0, 1], Aggregation::Max, 2.5));
        assert!(!sparse_neighborhood_ok(&r, &[0, 1], Aggregation::Max, 2.0), "strict <");
        assert!(!sparse_neighborhood_ok(&r, &[2, 3, 4], Aggregation::Max, 3.0));
        assert!(sparse_neighborhood_ok(&r, &[2, 3, 4], Aggregation::Avg, 3.5));
    }

    #[test]
    fn diameter_from_lists() {
        let r = reln();
        assert_eq!(diameter(&r, &[0, 1]), Some(0.1));
        assert_eq!(diameter(&r, &[2, 3, 4]), Some(0.35));
        assert_eq!(diameter(&r, &[2]), Some(0.0));
        // Unrecorded pair → None.
        let short = NnReln::new(vec![
            entry(0, &[(1, 0.1)], 1.0),
            entry(1, &[(0, 0.1)], 1.0),
            entry(2, &[(1, 0.5)], 1.0),
        ]);
        assert_eq!(diameter(&short, &[0, 2]), None);
    }

    #[test]
    fn compact_set_with_short_lists_is_rejected() {
        let r = NnReln::new(vec![
            entry(0, &[(1, 0.1)], 1.0),
            entry(1, &[], 1.0), // no neighbors recorded
        ]);
        assert!(!is_compact_set(&r, &[0, 1]));
    }
}
