//! Blocking baselines (§6).
//!
//! "Several blocking approaches have been proposed to speed up algorithms
//! for solving the threshold-based duplicate elimination problem [2, 15].
//! The idea (similar to that of hash join algorithms) is to partition the
//! relation into blocks and to only compare records within blocks.
//! However, they do not guarantee that all required nearest neighbors of a
//! tuple are also in the same block."
//!
//! The paper cannot *use* blocking inside its algorithm (the CS criterion
//! needs true nearest neighbors), but blocking + thresholding is the
//! classic fast baseline, so we provide it for comparison experiments:
//! records sharing a blocking key are compared exactly; pairs below θ are
//! unioned (single linkage restricted to blocks). The paper's quoted
//! caveat is observable directly: duplicates whose blocking keys disagree
//! are unreachable no matter the threshold.

use std::collections::HashMap;

use fuzzydedup_textdist::tokenize::tokenize_record;
use fuzzydedup_textdist::{soundex, Distance};

use crate::partition::Partition;

/// How records are assigned to blocks. A record may carry several keys
/// (standard multi-pass blocking); two records are compared if they share
/// any key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingKey {
    /// The first token of the record.
    FirstToken,
    /// Soundex code of the first token (phonetic blocking, census-style).
    SoundexFirstToken,
    /// Every token (multi-pass: one block per distinct token).
    EveryToken,
}

impl BlockingKey {
    fn keys_of(&self, record: &[String]) -> Vec<String> {
        let fields: Vec<&str> = record.iter().map(String::as_str).collect();
        let tokens = tokenize_record(&fields);
        match self {
            BlockingKey::FirstToken => {
                tokens.first().map(|t| vec![t.text.clone()]).unwrap_or_default()
            }
            BlockingKey::SoundexFirstToken => {
                tokens.first().map(|t| vec![soundex(&t.text)]).unwrap_or_default()
            }
            BlockingKey::EveryToken => {
                let mut keys: Vec<String> = tokens.into_iter().map(|t| t.text).collect();
                keys.sort();
                keys.dedup();
                keys
            }
        }
    }
}

/// Blocking + within-block single linkage at a global threshold θ.
/// Returns the partition and the number of exact distance comparisons
/// performed (the quantity blocking exists to minimize).
pub fn blocked_single_linkage(
    records: &[Vec<String>],
    distance: &dyn Distance,
    key: BlockingKey,
    theta: f64,
) -> (Partition, u64) {
    let n = records.len();
    let mut blocks: HashMap<String, Vec<u32>> = HashMap::new();
    for (id, record) in records.iter().enumerate() {
        for k in key.keys_of(record) {
            blocks.entry(k).or_default().push(id as u32);
        }
    }

    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    let mut comparisons = 0u64;
    for ids in blocks.values() {
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                // Skip already-unioned pairs to keep the count honest for
                // multi-pass keys.
                if find(&mut parent, a) == find(&mut parent, b) {
                    continue;
                }
                comparisons += 1;
                let fa: Vec<&str> = records[a as usize].iter().map(String::as_str).collect();
                let fb: Vec<&str> = records[b as usize].iter().map(String::as_str).collect();
                if distance.distance(&fa, &fb) < theta {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra as usize] = rb;
                }
            }
        }
    }

    let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
    for id in 0..n as u32 {
        groups.entry(find(&mut parent, id)).or_default().push(id);
    }
    (Partition::from_groups(n, groups.into_values()), comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzydedup_textdist::EditDistance;

    fn records(rows: &[&str]) -> Vec<Vec<String>> {
        rows.iter().map(|s| vec![s.to_string()]).collect()
    }

    #[test]
    fn finds_duplicates_sharing_the_block_key() {
        let rows = records(&["smith john", "smith jhon", "jones mary", "jones marry"]);
        let (p, comparisons) =
            blocked_single_linkage(&rows, &EditDistance, BlockingKey::FirstToken, 0.3);
        assert!(p.are_together(0, 1));
        assert!(p.are_together(2, 3));
        assert!(!p.are_together(0, 2));
        // Only within-block pairs compared: 1 + 1 instead of 6.
        assert_eq!(comparisons, 2);
    }

    #[test]
    fn misses_duplicates_across_blocks() {
        // The §6 caveat: a typo in the *blocking key* makes the duplicate
        // unreachable at any threshold.
        let rows = records(&["smith john", "smyth john"]);
        let (p, _) = blocked_single_linkage(&rows, &EditDistance, BlockingKey::FirstToken, 0.9);
        assert!(!p.are_together(0, 1), "first-token blocking cannot see this pair");
        // Phonetic blocking recovers it (smith/smyth share a Soundex code).
        let (p, _) =
            blocked_single_linkage(&rows, &EditDistance, BlockingKey::SoundexFirstToken, 0.3);
        assert!(p.are_together(0, 1));
    }

    #[test]
    fn every_token_blocking_is_most_permissive() {
        let rows = records(&["alpha smith", "beta smith"]);
        let (first, _) = blocked_single_linkage(&rows, &EditDistance, BlockingKey::FirstToken, 0.9);
        assert!(!first.are_together(0, 1));
        let (every, comparisons) =
            blocked_single_linkage(&rows, &EditDistance, BlockingKey::EveryToken, 0.9);
        assert!(every.are_together(0, 1), "shared token 'smith' bridges the pair");
        assert_eq!(comparisons, 1, "dedup across passes keeps the count honest");
    }

    #[test]
    fn empty_and_keyless_records() {
        let rows = records(&["", "nonempty"]);
        let (p, comparisons) =
            blocked_single_linkage(&rows, &EditDistance, BlockingKey::FirstToken, 0.5);
        assert_eq!(p.num_duplicate_pairs(), 0);
        assert_eq!(comparisons, 0);
        let (p, _) = blocked_single_linkage(&[], &EditDistance, BlockingKey::EveryToken, 0.5);
        assert_eq!(p.num_groups(), 0);
    }

    #[test]
    fn threshold_controls_linking() {
        let rows = records(&["golden dragon", "golden dragoon", "golden palace"]);
        let (strict, _) =
            blocked_single_linkage(&rows, &EditDistance, BlockingKey::FirstToken, 0.1);
        assert!(strict.are_together(0, 1));
        assert!(!strict.are_together(0, 2));
        let (loose, _) = blocked_single_linkage(&rows, &EditDistance, BlockingKey::FirstToken, 0.9);
        assert!(loose.are_together(0, 2), "loose threshold chains the block");
    }
}
