//! `NN_Reln` — the materialized nearest-neighbor relation of Phase 1.
//!
//! The output of the paper's first phase is the relation
//! `NN_Reln[ID, NN-List, NG]`: per tuple, the list of its nearest neighbors
//! (top-K for `DE_S(K)`, all within θ for `DE_D(θ)`) and its neighborhood
//! growth `ng(v) = |{u : d(u,v) < p · nn(v)}|` (we follow the formal
//! definition, under which the tuple itself is counted — `d(v,v) = 0` is
//! always inside the sphere).

use fuzzydedup_relation::Neighbor;

/// One row of `NN_Reln`: a tuple's neighbor list and neighborhood growth.
#[derive(Debug, Clone, PartialEq)]
pub struct NnEntry {
    /// Tuple identifier.
    pub id: u32,
    /// Nearest neighbors of `id`, **excluding `id` itself**, sorted
    /// ascending by `(distance, id)`.
    pub neighbors: Vec<Neighbor>,
    /// Neighborhood growth `ng(id)` (≥ 1; the tuple itself counts).
    pub ng: f64,
}

impl NnEntry {
    /// Construct an entry; neighbors must already be in canonical order.
    pub fn new(id: u32, neighbors: Vec<Neighbor>, ng: f64) -> Self {
        debug_assert!(
            neighbors.windows(2).all(|w| (w[0].dist, w[0].id) <= (w[1].dist, w[1].id)),
            "neighbors must be sorted by (dist, id)"
        );
        debug_assert!(neighbors.iter().all(|n| n.id != id), "self must be excluded");
        Self { id, neighbors, ng }
    }

    /// The nearest-neighbor distance `nn(id)`; `None` when the tuple has no
    /// recorded neighbors.
    pub fn nn_dist(&self) -> Option<f64> {
        self.neighbors.first().map(|n| n.dist)
    }

    /// The *m-nearest-neighbor set* of the tuple: itself plus its first
    /// `m − 1` neighbors, as a sorted id vector. Returns `None` if fewer
    /// than `m − 1` neighbors are recorded (the set would be ill-defined).
    pub fn prefix_set(&self, m: usize) -> Option<Vec<u32>> {
        if m == 0 || self.neighbors.len() < m - 1 {
            return None;
        }
        let mut set: Vec<u32> = Vec::with_capacity(m);
        set.push(self.id);
        set.extend(self.neighbors[..m - 1].iter().map(|n| n.id));
        set.sort_unstable();
        Some(set)
    }

    /// Distance to a specific neighbor, if recorded in the list.
    pub fn dist_to(&self, other: u32) -> Option<f64> {
        self.neighbors.iter().find(|n| n.id == other).map(|n| n.dist)
    }
}

/// The whole `NN_Reln`: one entry per tuple, indexed by id (entry `i` has
/// `id == i`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NnReln {
    entries: Vec<NnEntry>,
}

impl NnReln {
    /// Build from entries; they are sorted into id order and must form a
    /// dense id space `0..n`.
    ///
    /// # Panics
    /// Panics if ids are not exactly `0..n` after sorting.
    pub fn new(mut entries: Vec<NnEntry>) -> Self {
        entries.sort_by_key(|e| e.id);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.id as usize, i, "entry ids must be dense 0..n");
        }
        Self { entries }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for a tuple id.
    pub fn entry(&self, id: u32) -> &NnEntry {
        &self.entries[id as usize]
    }

    /// All entries in id order.
    pub fn entries(&self) -> &[NnEntry] {
        &self.entries
    }

    /// The NG values in id order (input to the SN-threshold estimator).
    pub fn ng_values(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.ng).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, neighbors: &[(u32, f64)], ng: f64) -> NnEntry {
        NnEntry::new(id, neighbors.iter().map(|&(i, d)| Neighbor::new(i, d)).collect(), ng)
    }

    #[test]
    fn prefix_sets() {
        let e = entry(10, &[(5, 0.1), (11, 0.2), (3, 0.3)], 2.0);
        assert_eq!(e.prefix_set(1), Some(vec![10]));
        assert_eq!(e.prefix_set(2), Some(vec![5, 10]));
        assert_eq!(e.prefix_set(4), Some(vec![3, 5, 10, 11]));
        assert_eq!(e.prefix_set(5), None, "not enough neighbors");
        assert_eq!(e.prefix_set(0), None);
    }

    #[test]
    fn nn_dist_and_dist_to() {
        let e = entry(0, &[(2, 0.15), (1, 0.4)], 3.0);
        assert_eq!(e.nn_dist(), Some(0.15));
        assert_eq!(e.dist_to(1), Some(0.4));
        assert_eq!(e.dist_to(9), None);
        let lonely = entry(7, &[], 1.0);
        assert_eq!(lonely.nn_dist(), None);
        assert_eq!(lonely.prefix_set(2), None);
        assert_eq!(lonely.prefix_set(1), Some(vec![7]));
    }

    #[test]
    fn reln_indexing() {
        let reln = NnReln::new(vec![entry(1, &[(0, 0.2)], 2.0), entry(0, &[(1, 0.2)], 2.0)]);
        assert_eq!(reln.len(), 2);
        assert_eq!(reln.entry(1).id, 1);
        assert_eq!(reln.ng_values(), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        NnReln::new(vec![entry(0, &[], 1.0), entry(2, &[], 1.0)]);
    }

    #[test]
    fn empty_reln() {
        let r = NnReln::new(vec![]);
        assert!(r.is_empty());
        assert!(r.ng_values().is_empty());
    }
}
