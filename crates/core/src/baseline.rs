//! Global-threshold baselines: single-linkage and star componentization.
//!
//! The paper compares against "a standard thresholding strategy (denoted
//! thr) based on single linkage clustering": induce the threshold graph
//! from `NN_Reln` (an edge between tuples at distance below θ) and return
//! each maximal connected component as a set of duplicates. It also notes
//! that alternative componentizations (stars, cliques) "still return
//! similar results" because most duplicate groups are tiny; we provide the
//! star variant for that comparison.

use crate::nnreln::NnReln;
use crate::partition::Partition;

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Single-linkage with a global threshold (the `thr` baseline): connected
/// components of the threshold graph induced by the NN lists. An edge
/// exists between `v` and `u` iff `u` appears in `v`'s list (or vice versa)
/// at distance `< theta`.
pub fn single_linkage(reln: &NnReln, theta: f64) -> Partition {
    let n = reln.len();
    let mut uf = UnionFind::new(n);
    for e in reln.entries() {
        for nb in &e.neighbors {
            if nb.dist < theta {
                uf.union(e.id, nb.id);
            }
        }
    }
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n];
    for id in 0..n as u32 {
        let root = uf.find(id);
        groups[root as usize].push(id);
    }
    Partition::from_groups(n, groups.into_iter().filter(|g| !g.is_empty()))
}

/// Star componentization: process tuples in id order; an unassigned tuple
/// claims all unassigned neighbors within θ as one group. Unlike single
/// linkage it does not chain transitively.
pub fn star_componentize(reln: &NnReln, theta: f64) -> Partition {
    let n = reln.len();
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for v in 0..n as u32 {
        if assigned[v as usize] {
            continue;
        }
        let mut group = vec![v];
        assigned[v as usize] = true;
        for nb in &reln.entry(v).neighbors {
            if nb.dist < theta && !assigned[nb.id as usize] {
                assigned[nb.id as usize] = true;
                group.push(nb.id);
            }
        }
        groups.push(group);
    }
    Partition::from_groups(n, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixIndex;
    use crate::phase1::{compute_nn_reln, NeighborSpec};
    use fuzzydedup_nnindex::LookupOrder;

    /// A chain 0—1—2 (consecutive distance 1) and an outlier 3 far away.
    fn chain() -> NnReln {
        let idx = MatrixIndex::from_points_1d(&[0.0, 1.0, 2.0, 50.0]);
        compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Sequential, 2.0).0
    }

    #[test]
    fn single_linkage_chains_transitively() {
        let reln = chain();
        let p = single_linkage(&reln, 1.5);
        // d(0,2) = 2 > 1.5 but the chain connects them — the false-positive
        // mode the paper criticizes.
        assert!(p.are_together(0, 2));
        assert!(p.are_together(0, 1));
        assert!(!p.are_together(0, 3));
        assert_eq!(p.num_groups(), 2);
    }

    #[test]
    fn star_does_not_chain() {
        let reln = chain();
        let p = star_componentize(&reln, 1.5);
        // 0 claims 1 (distance 1); 2 is beyond 1.5 from 0 and 1 is taken.
        assert!(p.are_together(0, 1));
        assert!(!p.are_together(0, 2));
        assert!(!p.are_together(1, 2));
    }

    #[test]
    fn zero_threshold_yields_singletons() {
        let reln = chain();
        assert_eq!(single_linkage(&reln, 0.0), Partition::singletons(4));
        assert_eq!(star_componentize(&reln, 0.0), Partition::singletons(4));
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let reln = chain();
        let p = single_linkage(&reln, 1000.0);
        assert_eq!(p.num_groups(), 1);
    }

    #[test]
    fn threshold_is_strict() {
        let idx = MatrixIndex::from_points_1d(&[0.0, 1.0]);
        let reln = compute_nn_reln(&idx, NeighborSpec::TopK(1), LookupOrder::Sequential, 2.0).0;
        assert!(!single_linkage(&reln, 1.0).are_together(0, 1));
        assert!(single_linkage(&reln, 1.0 + 1e-9).are_together(0, 1));
    }

    #[test]
    fn empty_relation() {
        let reln = NnReln::new(vec![]);
        assert_eq!(single_linkage(&reln, 0.5).num_groups(), 0);
        assert_eq!(star_componentize(&reln, 0.5).num_groups(), 0);
    }

    #[test]
    fn asymmetric_list_membership_still_links() {
        // Truncated top-K lists may record the edge on only one side; the
        // union must still happen.
        let idx = MatrixIndex::from_points_1d(&[0.0, 1.0, 1.9]);
        let reln = compute_nn_reln(&idx, NeighborSpec::TopK(1), LookupOrder::Sequential, 2.0).0;
        // 2's only listed neighbor is 1 (d 0.9); 1's is 0 (d 1.0)... both
        // edges below 1.5 chain all three together.
        let p = single_linkage(&reln, 1.5);
        assert!(p.are_together(0, 2));
    }
}
