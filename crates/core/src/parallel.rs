//! Parallel Phase 1: multi-threaded nearest-neighbor materialization.
//!
//! The paper's Phase 1 is a sequential scan in breadth-first order because
//! its win is *buffer locality* against a disk-resident index. When the
//! index is memory-resident (the common modern deployment), Phase 1 is
//! embarrassingly parallel instead: every tuple's NN list is an
//! independent query. [`compute_nn_reln_parallel`] shards the id space
//! over scoped threads and produces a result *identical* to the
//! sequential computation (the NN lists do not depend on lookup order —
//! the same fact Lemma 1's uniqueness rests on).
//!
//! This is an engineering extension beyond the paper; the ablation bench
//! `bench_phase1` quantifies when it pays off.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use fuzzydedup_metrics::{incr, Counter};
use fuzzydedup_nnindex::{LookupCost, LookupSpec, NnIndex, PairDistanceCache};

use crate::nnreln::{NnEntry, NnReln};
use crate::phase1::{NeighborSpec, Phase1Stats};

/// Resolve a thread-count knob against the number of work items: `0`
/// means one thread per available CPU, and the result is clamped to
/// `[1, n_items.max(1)]` so degenerate inputs never over-spawn. Shared by
/// the Phase-1 sharder and the Phase-2 component scheduler.
pub fn resolve_threads(n_threads: usize, n_items: usize) -> usize {
    let threads = if n_threads == 0 {
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
    } else {
        n_threads
    };
    threads.max(1).min(n_items.max(1))
}

/// Compute one tuple's `NN_Reln` entry (shared by the sequential and
/// parallel drivers) via the index's combined lookup, returning the
/// probe cost the index reports alongside.
pub(crate) fn compute_entry(
    index: &dyn NnIndex,
    spec: NeighborSpec,
    p: f64,
    id: u32,
    cache: Option<&dyn PairDistanceCache>,
) -> (NnEntry, LookupCost) {
    let lookup_spec = match spec {
        NeighborSpec::TopK(k) => LookupSpec::TopK(k),
        NeighborSpec::Radius(theta) => LookupSpec::Radius(theta),
    };
    let (neighbors, ng, cost) = index.lookup_cached(id, lookup_spec, p, cache);
    (NnEntry::new(id, neighbors, ng), cost)
}

/// Compute `NN_Reln` using `n_threads` worker threads (`0` = one per
/// available CPU). Produces exactly the same relation as
/// [`crate::phase1::compute_nn_reln`], with real probe counts summed
/// across workers (`visit_order` stays empty: interleaved parallel
/// lookups have no meaningful single order).
pub fn compute_nn_reln_parallel(
    index: &dyn NnIndex,
    spec: NeighborSpec,
    p: f64,
    n_threads: usize,
) -> (NnReln, Phase1Stats) {
    compute_nn_reln_parallel_cached(index, spec, p, n_threads, None)
}

/// [`compute_nn_reln_parallel`] with an optional shared pair-distance
/// memo. All workers share the same sharded cache; the soundness contract
/// on [`PairDistanceCache`] guarantees the relation is identical with the
/// cache on or off, independent of thread interleaving — only the probe
/// and distance-call *counts* vary.
pub fn compute_nn_reln_parallel_cached(
    index: &dyn NnIndex,
    spec: NeighborSpec,
    p: f64,
    n_threads: usize,
    cache: Option<&dyn PairDistanceCache>,
) -> (NnReln, Phase1Stats) {
    assert!(p >= 1.0, "growth multiplier p must be >= 1, got {p}");
    let n = index.len();
    let threads = resolve_threads(n_threads, n);

    // Work-stealing dispenser over fixed id blocks. Static range sharding
    // strands workers when lookup costs are skewed (duplicate-dense
    // neighborhoods verify far more candidates than sparse ones); a
    // shared cursor keeps every worker busy until the id space drains.
    // ~8 blocks per worker amortizes the cursor contention while leaving
    // enough granules to rebalance; the cap keeps tail blocks short on
    // huge corpora. The result is identical to the sequential drive
    // regardless of which worker claims which block — every entry is an
    // independent query.
    let entries: Vec<OnceLock<NnEntry>> = (0..n).map(|_| OnceLock::new()).collect();
    let block = n.div_ceil(threads * 8).clamp(1, 1024);
    let n_blocks = n.div_ceil(block);
    let next_block = AtomicUsize::new(0);
    let mut worker_costs: Vec<LookupCost> = vec![LookupCost::default(); threads];
    std::thread::scope(|scope| {
        for cost_slot in worker_costs.iter_mut() {
            let entries = &entries;
            let next_block = &next_block;
            scope.spawn(move || {
                let mut cost = LookupCost::default();
                loop {
                    let b = next_block.fetch_add(1, Ordering::Relaxed);
                    if b >= n_blocks {
                        break;
                    }
                    incr(Counter::Phase1StealBlocks, 1);
                    let start = b * block;
                    let end = (start + block).min(n);
                    for (id, slot) in entries.iter().enumerate().take(end).skip(start) {
                        let (entry, entry_cost) = compute_entry(index, spec, p, id as u32, cache);
                        cost.absorb(&entry_cost);
                        let claimed = slot.set(entry).is_ok();
                        debug_assert!(claimed, "id {id} computed twice");
                    }
                }
                *cost_slot = cost;
            });
        }
    });
    let mut total = LookupCost::default();
    for cost in &worker_costs {
        total.absorb(cost);
    }
    let reln = NnReln::new(
        entries.into_iter().map(|e| e.into_inner().expect("all ids computed")).collect(),
    );
    let stats = Phase1Stats {
        lookups: total.probes,
        fallback_probes: total.fallback_probes,
        bf_queue_high_water: 0,
        visit_order: Vec::new(),
    };
    (reln, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixIndex;
    use crate::phase1::compute_nn_reln;
    use fuzzydedup_nnindex::LookupOrder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> MatrixIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        MatrixIndex::from_points_1d(&points)
    }

    #[test]
    fn matches_sequential_for_topk() {
        let idx = random_matrix(200, 1);
        let (seq, seq_stats) =
            compute_nn_reln(&idx, NeighborSpec::TopK(5), LookupOrder::Sequential, 2.0);
        for threads in [1, 2, 4, 0] {
            let (par, stats) = compute_nn_reln_parallel(&idx, NeighborSpec::TopK(5), 2.0, threads);
            assert_eq!(seq, par, "threads={threads}");
            // The same lookups run, whatever the sharding — probe counts
            // must agree with the sequential drive.
            assert_eq!(stats.lookups, seq_stats.lookups, "threads={threads}");
            assert_eq!(stats.fallback_probes, seq_stats.fallback_probes);
            assert!(stats.visit_order.is_empty());
        }
    }

    #[test]
    fn matches_sequential_for_radius() {
        let idx = random_matrix(150, 2);
        let (seq, seq_stats) =
            compute_nn_reln(&idx, NeighborSpec::Radius(20.0), LookupOrder::Sequential, 2.0);
        let (par, stats) = compute_nn_reln_parallel(&idx, NeighborSpec::Radius(20.0), 2.0, 3);
        assert_eq!(seq, par);
        assert_eq!(stats.lookups, seq_stats.lookups);
    }

    #[test]
    fn degenerate_sizes() {
        let idx = random_matrix(1, 3);
        let (par, _) = compute_nn_reln_parallel(&idx, NeighborSpec::TopK(3), 2.0, 8);
        assert_eq!(par.len(), 1);
        let empty = MatrixIndex::new(vec![]);
        let (par, stats) = compute_nn_reln_parallel(&empty, NeighborSpec::TopK(3), 2.0, 4);
        assert!(par.is_empty());
        assert_eq!(stats.lookups, 0);
    }

    #[test]
    fn more_threads_than_items() {
        let idx = random_matrix(3, 4);
        let (par, _) = compute_nn_reln_parallel(&idx, NeighborSpec::TopK(2), 2.0, 64);
        assert_eq!(par.len(), 3);
    }

    #[test]
    #[should_panic(expected = "p must be >= 1")]
    fn bad_p_panics() {
        let idx = random_matrix(4, 5);
        compute_nn_reln_parallel(&idx, NeighborSpec::TopK(2), 0.0, 2);
    }

    #[test]
    fn phase2_is_parallel_safe() {
        // Mirror of the Phase-1 tests above for the component-parallel
        // partitioner: thread counts {1, 2, 4, 0} must all reproduce the
        // sequential partition bit-for-bit, across cut shapes and
        // aggregations.
        use crate::criteria::Aggregation;
        use crate::phase2::{partition_entries, partition_entries_parallel};
        use crate::problem::CutSpec;

        let idx = random_matrix(300, 7);
        for cut in [
            CutSpec::Size(3),
            CutSpec::Size(6),
            CutSpec::Diameter(15.0),
            CutSpec::SizeAndDiameter(4, 25.0),
            CutSpec::Unbounded,
        ] {
            let (reln, _) = compute_nn_reln(
                &idx,
                NeighborSpec::from_cut(&cut, 300),
                LookupOrder::Sequential,
                2.0,
            );
            for agg in [Aggregation::Max, Aggregation::Avg, Aggregation::Max2] {
                for c in [2.5, 6.0] {
                    let seq = partition_entries(&reln, cut, agg, c);
                    for threads in [1, 2, 4, 0] {
                        let par = partition_entries_parallel(&reln, cut, agg, c, threads);
                        assert_eq!(
                            seq, par,
                            "cut={cut:?} agg={agg:?} c={c} threads={threads} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn phase2_parallel_more_threads_than_components() {
        use crate::criteria::Aggregation;
        use crate::phase2::{partition_entries, partition_entries_parallel};
        use crate::problem::CutSpec;

        // Two tight clusters -> at most a handful of CS-pair components;
        // 64 workers must leave most shards empty without deadlocking.
        let points = [1.0, 1.1, 1.2, 50.0, 50.1, 50.2];
        let idx = MatrixIndex::from_points_1d(&points);
        let cut = CutSpec::Size(3);
        let (reln, _) = compute_nn_reln(
            &idx,
            NeighborSpec::from_cut(&cut, points.len()),
            LookupOrder::Sequential,
            2.0,
        );
        let seq = partition_entries(&reln, cut, Aggregation::Max, 6.0);
        let par = partition_entries_parallel(&reln, cut, Aggregation::Max, 6.0, 64);
        assert_eq!(seq, par);
        assert!(par.are_together(0, 1), "{:?}", par.groups());
    }

    #[test]
    fn phase2_parallel_single_giant_component() {
        use crate::criteria::Aggregation;
        use crate::phase2::{cs_pair_components, partition_entries, partition_entries_parallel};
        use crate::problem::CutSpec;

        // Degenerate case: one evenly-spaced chain is a single connected
        // CS-pair component — no parallelism available. The scheduler must
        // put the whole component on one worker, not deadlock, and still
        // match the sequential partition exactly.
        let points: Vec<f64> = (0..120).map(|i| i as f64 * 0.5).collect();
        let idx = MatrixIndex::from_points_1d(&points);
        let cut = CutSpec::Unbounded;
        let (reln, _) = compute_nn_reln(
            &idx,
            NeighborSpec::from_cut(&cut, points.len()),
            LookupOrder::Sequential,
            2.0,
        );
        let comps = cs_pair_components(&reln, cut.max_group_size(points.len()));
        assert_eq!(comps.len(), 1, "chain must form one giant component");
        let seq = partition_entries(&reln, cut, Aggregation::Max, 100.0);
        for threads in [2, 4, 0] {
            let par = partition_entries_parallel(&reln, cut, Aggregation::Max, 100.0, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn csr_index_is_parallel_safe() {
        // The CSR candidate generator accumulates on a thread-local
        // epoch-stamped scoreboard; parallel workers must produce the
        // byte-identical relation the sequential drive produces.
        use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig};
        use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
        use fuzzydedup_textdist::EditDistance;
        use std::sync::Arc;

        let records: Vec<Vec<String>> = (0..120)
            .map(|i| {
                let s = match i % 3 {
                    0 => format!("customer record number {i:03}"),
                    1 => format!("customer record numbr {i:03}"),
                    _ => format!("unrelated payload {i:03}"),
                };
                vec![s]
            })
            .collect();
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(64),
            Arc::new(InMemoryDisk::new()),
        ));
        let idx = InvertedIndex::build(records, EditDistance, pool, InvertedIndexConfig::default());
        for spec in [NeighborSpec::TopK(4), NeighborSpec::Radius(0.2)] {
            let (seq, _) = compute_nn_reln(&idx, spec, LookupOrder::Sequential, 2.0);
            for threads in [2, 4, 0] {
                let (par, _) = compute_nn_reln_parallel(&idx, spec, 2.0, threads);
                assert_eq!(seq, par, "spec={spec:?} threads={threads}");
            }
        }
    }

    #[test]
    fn pair_cache_preserves_determinism_seq_and_par() {
        // The soundness contract on `PairDistanceCache`: exact hits carry
        // true distances and `KnownAbove` only skips calls that would be
        // rejected anyway, so the relation must be identical with the
        // cache on or off, sequential or parallel, even though parallel
        // workers race on cache *contents*. Edit distance is the
        // bit-symmetric kernel the cache contract requires.
        use crate::pair_cache::PairCache;
        use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig};
        use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
        use fuzzydedup_textdist::EditDistance;
        use std::sync::Arc;

        let records: Vec<Vec<String>> = (0..120)
            .map(|i| {
                let s = match i % 3 {
                    0 => format!("customer record number {i:03}"),
                    1 => format!("customer record numbr {i:03}"),
                    _ => format!("unrelated payload {i:03}"),
                };
                vec![s]
            })
            .collect();
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(64),
            Arc::new(InMemoryDisk::new()),
        ));
        let idx = InvertedIndex::build(records, EditDistance, pool, InvertedIndexConfig::default());
        for spec in [NeighborSpec::TopK(4), NeighborSpec::Radius(0.2)] {
            let (plain, _) = compute_nn_reln(&idx, spec, LookupOrder::Sequential, 2.0);
            // Sequential with a cache: every pair's second verification
            // can hit, and the relation must not move.
            let cache = PairCache::new(1 << 14);
            let (seq_cached, _) = crate::phase1::compute_nn_reln_cached(
                &idx,
                spec,
                LookupOrder::Sequential,
                2.0,
                Some(&cache),
            );
            assert_eq!(plain, seq_cached, "seq cached diverged, spec={spec:?}");
            // Parallel workers sharing one cache: interleaving varies the
            // hit pattern, never the relation. A fresh cache per thread
            // count keeps runs independent.
            for threads in [2, 4, 0] {
                let cache = PairCache::new(1 << 14);
                let (par_cached, _) =
                    compute_nn_reln_parallel_cached(&idx, spec, 2.0, threads, Some(&cache));
                assert_eq!(plain, par_cached, "spec={spec:?} threads={threads}");
                let (par_plain, _) = compute_nn_reln_parallel(&idx, spec, 2.0, threads);
                assert_eq!(plain, par_plain, "spec={spec:?} threads={threads} (no cache)");
            }
        }
    }

    #[test]
    fn tiny_pair_cache_under_heavy_eviction_is_still_sound() {
        // A pathologically small cache (64 slots, constant collisions)
        // exercises the overwrite/eviction path on every store; results
        // must still be bit-identical to the uncached drive.
        use crate::pair_cache::PairCache;
        use fuzzydedup_nnindex::{InvertedIndex, InvertedIndexConfig};
        use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
        use fuzzydedup_textdist::EditDistance;
        use std::sync::Arc;

        let records: Vec<Vec<String>> =
            (0..90).map(|i| vec![format!("shared prefix token row {:02}", i % 45)]).collect();
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(64),
            Arc::new(InMemoryDisk::new()),
        ));
        let idx = InvertedIndex::build(records, EditDistance, pool, InvertedIndexConfig::default());
        let spec = NeighborSpec::TopK(3);
        let (plain, _) = compute_nn_reln(&idx, spec, LookupOrder::Sequential, 2.0);
        let cache = PairCache::new(1);
        let (cached, _) = crate::phase1::compute_nn_reln_cached(
            &idx,
            spec,
            LookupOrder::Sequential,
            2.0,
            Some(&cache),
        );
        assert_eq!(plain, cached);
    }
}
