#![warn(missing_docs)]

//! Robust identification of fuzzy duplicates — the DE framework.
//!
//! This crate implements the contribution of Chaudhuri, Ganti & Motwani,
//! *Robust Identification of Fuzzy Duplicates* (ICDE 2005):
//!
//! * the **compact set (CS)** and **sparse neighborhood (SN)** criteria
//!   characterizing groups of duplicates ([`criteria`]);
//! * the **duplicate elimination problem** `DE_S(K)` / `DE_D(θ)`:
//!   partition a relation into the minimum number of compact SN groups
//!   subject to a size or diameter cut ([`problem`]);
//! * the scalable **two-phase algorithm**: nearest-neighbor-list
//!   materialization with breadth-first lookups ([`phase1`]), then
//!   CSPairs construction and partitioning ([`phase2`]), both in a direct
//!   in-memory form and in the paper's SQL-shaped form running on the
//!   `relation` substrate;
//! * the **single-linkage global-threshold baseline** the paper compares
//!   against, plus a star-flavored componentization ([`baseline`]);
//! * **precision/recall evaluation** against gold clusterings ([`eval`]);
//! * the **SN-threshold estimation heuristic** of §4.4 ([`threshold`]);
//! * checkers for the **axiomatic properties** of §3.1 — uniqueness, scale
//!   invariance, split/merge consistency, constrained richness
//!   ([`axioms`]);
//! * the §4.5 extensions: minimality of compact sets ([`minimality`]) and
//!   negative constraining predicates ([`constraints`]).
//!
//! The whole framework is generic over the distance source: either a
//! string-record corpus with a [`fuzzydedup_textdist::Distance`] function
//! (via the nearest-neighbor indexes of `fuzzydedup-nnindex`), or an
//! explicit distance matrix ([`matrix::MatrixIndex`]) for numeric examples
//! and axiom tests.
//!
//! The entry point is the [`pipeline::Deduplicator`] facade:
//!
//! ```no_run
//! use fuzzydedup_core::{DedupConfig, Deduplicator, Parallelism};
//! use fuzzydedup_textdist::DistanceKind;
//!
//! let records: Vec<Vec<String>> = vec![/* ... */];
//! let outcome = Deduplicator::new(
//!     DedupConfig::new(DistanceKind::FuzzyMatch).parallelism(Parallelism::threads(0)),
//! )
//! .run_records(&records)
//! .unwrap();
//! ```

pub mod axioms;
pub mod baseline;
pub mod blocking;
pub mod collapse;
pub mod components;
pub mod constraints;
pub mod criteria;
pub mod distinct;
pub mod eval;
pub mod incremental;
pub mod matrix;
pub mod minimality;
pub mod nnreln;
pub mod pair_cache;
pub mod parallel;
pub mod partition;
pub mod phase1;
pub mod phase2;
pub mod pipeline;
pub mod problem;
pub mod report;
pub mod service;
pub mod spill;
pub mod threshold;

pub use baseline::{single_linkage, star_componentize};
pub use blocking::{blocked_single_linkage, BlockingKey};
pub use collapse::{CollapseKey, CollapseMap};
pub use components::{balance_components, UnionFind};
pub use criteria::{is_compact_set, sparse_neighborhood_ok, Aggregation};
pub use distinct::DistinctEstimator;
pub use eval::{evaluate, evaluate_bcubed, BCubed, PrecisionRecall};
pub use incremental::{BatchStats, IncrementalDedup, IncrementalDedupBuilder};
pub use matrix::MatrixIndex;
pub use nnreln::{NnEntry, NnReln};
pub use pair_cache::PairCache;
pub use parallel::{compute_nn_reln_parallel, compute_nn_reln_parallel_cached, resolve_threads};
pub use partition::Partition;
pub use phase1::{compute_nn_reln, compute_nn_reln_cached, NeighborSpec, Phase1Stats};
pub use phase2::{
    cs_pair_components, partition_entries, partition_entries_ablation, partition_entries_parallel,
    partition_via_tables,
};
#[allow(deprecated)]
pub use pipeline::{DedupConfig, DedupError, DedupOutcome, Deduplicator, IndexChoice, Parallelism};
pub use problem::CutSpec;
pub use report::{render_report, ReportOptions};
pub use service::{
    epoch_pair, DedupService, EpochReader, EpochWriter, QueryAnswer, ServiceConfig, ServiceError,
    ServiceStats,
};
pub use spill::{read_nn_reln, spill_nn_reln};
pub use threshold::{estimate_sn_threshold, estimate_sn_threshold_parallel};
