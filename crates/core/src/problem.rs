//! The duplicate elimination problem statement (§3).
//!
//! `DE` asks for a partition of the relation into the **minimum number of
//! groups** such that every group is a compact set, an `SN(AGG, c)` group,
//! and satisfies a *cut specification*. The paper shows (§3) that without a
//! cut the formulation can produce unintuitive results (its integer example
//! `{1, 2, 4, 20, 22, 30, 32}` collapses into one group), and that with a
//! cut the solution is unique (Lemma 1).

/// The cut specification bounding groups of duplicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CutSpec {
    /// `DE_S(K)`: every group has at most `K` members (`K ≥ 2`).
    Size(usize),
    /// `DE_D(θ)`: every group has diameter (max pairwise distance) `≤ θ`.
    Diameter(f64),
    /// `DE_SD(K, θ)`: both bounds together ("it is also possible to use
    /// size and diameter specifications together", §3).
    SizeAndDiameter(usize, f64),
    /// No cut — the initial formulation of §3, exposed for the
    /// growth-spheres demonstration. Requires full-length NN lists and can
    /// produce the unintuitive mergers the paper warns about.
    Unbounded,
}

impl CutSpec {
    /// Maximum group size this cut admits given a relation of `n` tuples.
    pub fn max_group_size(&self, n: usize) -> usize {
        match *self {
            CutSpec::Size(k) | CutSpec::SizeAndDiameter(k, _) => k.min(n),
            CutSpec::Diameter(_) | CutSpec::Unbounded => n,
        }
    }

    /// Diameter bound, if any.
    pub fn diameter_bound(&self) -> Option<f64> {
        match *self {
            CutSpec::Diameter(theta) | CutSpec::SizeAndDiameter(_, theta) => Some(theta),
            _ => None,
        }
    }

    /// Validate the parameters: `K ≥ 2`, `θ > 0`.
    // The negated comparisons are deliberate: `!(t > 0.0)` also rejects
    // NaN, which `t <= 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            CutSpec::Size(k) if k < 2 => Err(format!("DE_S(K) requires K >= 2, got {k}")),
            CutSpec::Diameter(t) if !(t > 0.0) => {
                Err(format!("DE_D(theta) requires theta > 0, got {t}"))
            }
            CutSpec::SizeAndDiameter(k, t) => {
                if k < 2 {
                    Err(format!("DE_SD requires K >= 2, got {k}"))
                } else if !(t > 0.0) {
                    Err(format!("DE_SD requires theta > 0, got {t}"))
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }

    /// Display form used in experiment output, e.g. `DE_S(5)` /
    /// `DE_D(0.300)`.
    pub fn label(&self) -> String {
        match *self {
            CutSpec::Size(k) => format!("DE_S({k})"),
            CutSpec::Diameter(t) => format!("DE_D({t:.3})"),
            CutSpec::SizeAndDiameter(k, t) => format!("DE_SD({k},{t:.3})"),
            CutSpec::Unbounded => "DE".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_group_size() {
        assert_eq!(CutSpec::Size(5).max_group_size(100), 5);
        assert_eq!(CutSpec::Size(5).max_group_size(3), 3);
        assert_eq!(CutSpec::Diameter(0.2).max_group_size(100), 100);
        assert_eq!(CutSpec::SizeAndDiameter(4, 0.2).max_group_size(100), 4);
        assert_eq!(CutSpec::Unbounded.max_group_size(7), 7);
    }

    #[test]
    fn diameter_bound() {
        assert_eq!(CutSpec::Size(5).diameter_bound(), None);
        assert_eq!(CutSpec::Diameter(0.25).diameter_bound(), Some(0.25));
        assert_eq!(CutSpec::SizeAndDiameter(4, 0.5).diameter_bound(), Some(0.5));
    }

    #[test]
    fn validation() {
        assert!(CutSpec::Size(2).validate().is_ok());
        assert!(CutSpec::Size(1).validate().is_err());
        assert!(CutSpec::Diameter(0.1).validate().is_ok());
        assert!(CutSpec::Diameter(0.0).validate().is_err());
        assert!(CutSpec::Diameter(f64::NAN).validate().is_err());
        assert!(CutSpec::SizeAndDiameter(3, 0.5).validate().is_ok());
        assert!(CutSpec::SizeAndDiameter(1, 0.5).validate().is_err());
        assert!(CutSpec::SizeAndDiameter(3, -1.0).validate().is_err());
        assert!(CutSpec::Unbounded.validate().is_ok());
    }

    #[test]
    fn labels() {
        assert_eq!(CutSpec::Size(5).label(), "DE_S(5)");
        assert_eq!(CutSpec::Diameter(0.3).label(), "DE_D(0.300)");
        assert_eq!(CutSpec::SizeAndDiameter(4, 0.25).label(), "DE_SD(4,0.250)");
        assert_eq!(CutSpec::Unbounded.label(), "DE");
    }
}
