//! Connected components of the CS-pair graph, and cost-balanced sharding
//! of components over worker threads.
//!
//! Phase 2 only ever emits groups that are *cliques* in the mutual-
//! neighbor ("CS-pair") graph: a compact set `S` requires every member's
//! `|S|`-nearest-neighbor set to equal `S`, so any two members are mutual
//! neighbors. Every candidate group therefore lies inside one connected
//! component of that graph, and the greedy partitioner's decisions in one
//! component never depend on another component's state — the basis of the
//! component-parallel Phase 2 (`DESIGN.md` §7.4). This module holds the
//! shared machinery: a union-find over pair edges, component extraction in
//! canonical (min-id) order, and a deterministic greedy cost balancer that
//! assigns components to a fixed number of worker shards.

/// Union-find (disjoint-set forest) over ids `0..n`, with union by rank
/// and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merge the sets containing `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Extract all components in canonical order: each component's members
    /// ascending, components ordered by their minimum id. Singletons are
    /// included (every id belongs to exactly one component).
    pub fn components(mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        // First pass: slot index per root, in min-id order (ids ascend, so
        // a root's first appearance is at its component's minimum id).
        let mut slot_of_root: Vec<u32> = vec![u32::MAX; n];
        let mut components: Vec<Vec<u32>> = Vec::new();
        for id in 0..n as u32 {
            let root = self.find(id) as usize;
            let slot = if slot_of_root[root] == u32::MAX {
                let s = components.len() as u32;
                slot_of_root[root] = s;
                components.push(Vec::new());
                s
            } else {
                slot_of_root[root]
            };
            components[slot as usize].push(id);
        }
        components
    }
}

/// Deterministically assign `components` (given per-component costs) to
/// `shards` buckets, balancing total cost: longest-processing-time greedy —
/// components in descending cost order (ties broken by index), each placed
/// on the currently lightest shard (ties broken by shard index). Returns
/// one `Vec` of component indexes per shard; empty shards are possible
/// when there are fewer components than shards.
pub fn balance_components(costs: &[u64], shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut loads: Vec<u64> = vec![0; shards];
    for i in order {
        let lightest = (0..shards).min_by_key(|&s| (loads[s], s)).expect("shards >= 1");
        loads[lightest] += costs[i].max(1);
        buckets[lightest].push(i);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_when_no_unions() {
        let uf = UnionFind::new(4);
        assert_eq!(uf.components(), vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn unions_merge_and_order_is_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 1);
        uf.union(3, 5);
        uf.union(1, 4); // duplicate edge is a no-op
        assert!(uf.connected(1, 4));
        assert!(!uf.connected(0, 1));
        // Components ordered by min id, members ascending.
        assert_eq!(uf.components(), vec![vec![0], vec![1, 4], vec![2], vec![3, 5]]);
    }

    #[test]
    fn chain_collapses_to_one_component() {
        let mut uf = UnionFind::new(5);
        for i in 0..4 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn empty_universe() {
        assert!(UnionFind::new(0).components().is_empty());
    }

    #[test]
    fn balance_is_deterministic_and_covers_all() {
        let costs = [10, 1, 7, 7, 2, 30];
        let shards = balance_components(&costs, 3);
        assert_eq!(shards.len(), 3);
        let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // LPT: 30 goes first to shard 0, 10 to shard 1, 7 to shard 2,
        // the second 7 to shard 1 or 2 (lightest), etc. Re-running is
        // byte-identical.
        assert_eq!(shards, balance_components(&costs, 3));
        assert_eq!(shards[0][0], 5, "heaviest component starts shard 0");
    }

    #[test]
    fn balance_with_more_shards_than_components() {
        let shards = balance_components(&[3, 1], 8);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().filter(|b| !b.is_empty()).count(), 2);
    }

    #[test]
    fn balance_with_zero_shards_clamps_to_one() {
        let shards = balance_components(&[5, 5], 0);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 2);
    }
}
