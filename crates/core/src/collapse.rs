//! Exact-duplicate collapse pre-pass (DESIGN.md §7.10).
//!
//! Duplicate-heavy corpora (the common shape of real ingest traffic) spend
//! most of Phase 1 re-verifying records that are *exactly* identical. This
//! module collapses the corpus to unique **representatives** before any
//! fuzzy matching runs: a hash pass groups records by a configurable
//! normalization key ([`CollapseKey`]), Phase 1 runs over the
//! representatives with per-record multiplicities threaded through every
//! cutoff and growth computation (`fuzzydedup-nnindex`'s weighted lookups),
//! and [`CollapseMap::expand_reln`] rebuilds the full-corpus `NN_Reln`
//! exactly — so Phase 2 and everything after it runs unchanged and the
//! final partition is bit-identical to the collapse-off pipeline.
//!
//! The correctness frame is Tang et al. (arXiv:1412.4303): the similarity
//! group-by result must be multiplicity-independent, so replacing `m`
//! identical records by one weighted representative must not change the
//! expanded partition. The weighted-cutoff direction argument lives in
//! DESIGN.md §7.10.

use std::collections::HashMap;

use fuzzydedup_relation::Neighbor;
use fuzzydedup_textdist::record_string;

use crate::nnreln::{NnEntry, NnReln};
use crate::phase1::NeighborSpec;

/// Which normalization keys the collapse pass groups records by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseKey {
    /// The existing record-string normalization
    /// ([`fuzzydedup_textdist::record_string`]: lowercase, punctuation to
    /// spaces, whitespace collapsed, fields joined). Two records with the
    /// same key are indistinguishable to every record-string-invariant
    /// distance *and* to the q-gram/token indexes (their term sets derive
    /// from the same string), so they are exact duplicates of the
    /// pipeline. Requires a record-string-invariant distance — the run is
    /// rejected otherwise.
    RecordString,
    /// The raw attribute values, compared field by field. Strictly finer
    /// than [`CollapseKey::RecordString`] and sound for *every* distance:
    /// identical field vectors are indistinguishable, period.
    ExactFields,
}

impl CollapseKey {
    /// The normalization key of one record under this keying. Two records
    /// with equal keys belong to the same exact-duplicate class.
    pub fn key_of(self, fields: &[&str]) -> String {
        match self {
            Self::RecordString => record_string(fields),
            // \x1f (ASCII unit separator) cannot appear from a join
            // ambiguity: it delimits raw field boundaries.
            Self::ExactFields => fields.join("\x1f"),
        }
    }
}

/// The result of the collapse pass: the class structure mapping the full
/// corpus onto its unique representatives and back.
///
/// Representative ids are assigned in order of first occurrence, so
/// representative `r`'s record is the first (minimum-id) member of class
/// `r` and the representative id order matches ascending minimum member
/// id — the canonical order [`Partition`](crate::partition::Partition)
/// expects after expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseMap {
    /// Per representative, the full-corpus member ids, ascending.
    classes: Vec<Vec<u32>>,
    /// Per full-corpus id, its representative id.
    owner: Vec<u32>,
    /// Per representative, its class size (`classes[r].len()`).
    mult: Vec<u32>,
}

impl CollapseMap {
    /// Group `records` into exact-duplicate classes under `key`.
    pub fn build(records: &[Vec<String>], key: CollapseKey) -> Self {
        let mut by_key: HashMap<String, u32> = HashMap::with_capacity(records.len());
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut owner: Vec<u32> = Vec::with_capacity(records.len());
        for (id, record) in records.iter().enumerate() {
            let fields: Vec<&str> = record.iter().map(String::as_str).collect();
            let k = key.key_of(&fields);
            let rep = *by_key.entry(k).or_insert_with(|| {
                classes.push(Vec::new());
                (classes.len() - 1) as u32
            });
            classes[rep as usize].push(id as u32);
            owner.push(rep);
        }
        let mult = classes.iter().map(|c| c.len() as u32).collect();
        Self { classes, owner, mult }
    }

    /// Assemble a map from a known class structure: `classes[r]` holds the
    /// ascending full-corpus member ids of representative `r`, and every
    /// full id in `0..n_full` appears exactly once. The incremental path
    /// maintains this structure directly as records arrive and borrows the
    /// expansion machinery through this constructor.
    ///
    /// # Panics
    /// Panics if the classes do not partition a `0..n` id range.
    pub fn from_parts(classes: Vec<Vec<u32>>) -> Self {
        let n_full: usize = classes.iter().map(Vec::len).sum();
        let mut owner = vec![u32::MAX; n_full];
        for (r, members) in classes.iter().enumerate() {
            for &id in members {
                assert!(
                    (id as usize) < n_full && owner[id as usize] == u32::MAX,
                    "classes must partition 0..{n_full}"
                );
                owner[id as usize] = r as u32;
            }
        }
        let mult = classes.iter().map(|c| c.len() as u32).collect();
        Self { classes, owner, mult }
    }

    /// Number of classes (= representatives).
    pub fn n_reps(&self) -> usize {
        self.classes.len()
    }

    /// Full-corpus record count.
    pub fn n_full(&self) -> usize {
        self.owner.len()
    }

    /// Records removed by collapsing: `n_full − n_reps`.
    pub fn collapsed_records(&self) -> usize {
        self.n_full() - self.n_reps()
    }

    /// Per-representative multiplicities (class sizes), in rep-id order.
    pub fn multiplicities(&self) -> &[u32] {
        &self.mult
    }

    /// Member ids (ascending) of each class, in rep-id order.
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Representative id of full-corpus record `id`.
    pub fn rep_of(&self, id: u32) -> u32 {
        self.owner[id as usize]
    }

    /// The representative corpus: one record per class, in rep-id order
    /// (each class's first member).
    pub fn rep_records(&self, records: &[Vec<String>]) -> Vec<Vec<String>> {
        self.classes.iter().map(|members| records[members[0] as usize].clone()).collect()
    }

    /// Expand rep-space groups (e.g. a partition over representatives) to
    /// full-corpus id sets, each sorted ascending.
    pub fn expand_groups(&self, groups: &[Vec<u32>]) -> Vec<Vec<u32>> {
        groups
            .iter()
            .map(|group| {
                let mut ids: Vec<u32> =
                    group.iter().flat_map(|&r| self.classes[r as usize].iter().copied()).collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    /// Reconstruct the full-corpus `NN_Reln` from the representative-space
    /// relation of a weighted Phase 1 run.
    ///
    /// Per member `v` of class `r`, the full-corpus entry is:
    ///
    /// * every representative survivor `s` of `r` expanded to all of
    ///   `s`'s members at the same distance (identical records are
    ///   co-located);
    /// * plus `v`'s own siblings at distance 0 — but only when
    ///   `sibling_visible[r]`: a record that generates no index terms
    ///   gathers no candidates in the full corpus, so its duplicates never
    ///   reach its neighbor list there and must not appear here either
    ///   (the exact/nested-loop indexes see everything — pass all-true);
    /// * sorted canonically and re-cut per `spec` (a weighted `TopK`
    ///   lookup deliberately returns *all* survivors; the truncation to
    ///   `k` happens here, after expansion, because `k` counts full-corpus
    ///   neighbors);
    /// * `ng = 1` for members of classes with `m ≥ 2` (their `nn` is 0 in
    ///   the full corpus — or they see no candidates at all — so the
    ///   strict-`<` growth sphere is empty), and the representative's
    ///   weighted `ng` otherwise.
    ///
    /// # Panics
    /// Panics if `rep_reln`/`sibling_visible` do not cover every class.
    pub fn expand_reln(
        &self,
        rep_reln: &NnReln,
        spec: NeighborSpec,
        sibling_visible: &[bool],
    ) -> NnReln {
        assert_eq!(rep_reln.len(), self.n_reps(), "one rep entry per class");
        assert_eq!(sibling_visible.len(), self.n_reps(), "one visibility flag per class");
        let mut entries: Vec<NnEntry> = Vec::with_capacity(self.n_full());
        for (r, members) in self.classes.iter().enumerate() {
            let rep_entry = rep_reln.entry(r as u32);
            let m = members.len();
            // The expanded rep-survivor list is shared by every member of
            // the class; only the sibling zeros differ per member.
            let mut base: Vec<Neighbor> = Vec::new();
            for nb in &rep_entry.neighbors {
                for &member in &self.classes[nb.id as usize] {
                    base.push(Neighbor::new(member, nb.dist));
                }
            }
            let ng = if m >= 2 { 1.0 } else { rep_entry.ng };
            for (i, &v) in members.iter().enumerate() {
                let mut neighbors = base.clone();
                if m >= 2 && sibling_visible[r] {
                    for (j, &sibling) in members.iter().enumerate() {
                        if j != i {
                            neighbors.push(Neighbor::new(sibling, 0.0));
                        }
                    }
                }
                neighbors.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
                match spec {
                    NeighborSpec::TopK(k) => neighbors.truncate(k),
                    NeighborSpec::Radius(theta) => neighbors.retain(|n| n.dist < theta),
                }
                entries.push(NnEntry::new(v, neighbors, ng));
            }
        }
        NnReln::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: &[&str]) -> Vec<String> {
        fields.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn record_string_key_merges_normalized_equals() {
        let records = vec![
            rec(&["The Doors", "LA Woman"]),
            rec(&["the doors!", "la woman"]), // same record string
            rec(&["Aaliyah", ""]),
            rec(&["The Doors", "LA Woman"]), // exact repeat
        ];
        let map = CollapseMap::build(&records, CollapseKey::RecordString);
        assert_eq!(map.n_reps(), 2);
        assert_eq!(map.n_full(), 4);
        assert_eq!(map.collapsed_records(), 2);
        assert_eq!(map.classes(), &[vec![0, 1, 3], vec![2]]);
        assert_eq!(map.multiplicities(), &[3, 1]);
        assert_eq!(map.rep_of(3), 0);
        let reps = map.rep_records(&records);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0], records[0], "rep record is the first member's");
    }

    #[test]
    fn exact_fields_key_is_finer() {
        let records = vec![
            rec(&["a b", "c"]),
            rec(&["a", "b c"]), // same record string, different fields
        ];
        let by_string = CollapseMap::build(&records, CollapseKey::RecordString);
        assert_eq!(by_string.n_reps(), 1);
        let by_fields = CollapseMap::build(&records, CollapseKey::ExactFields);
        assert_eq!(by_fields.n_reps(), 2);
    }

    #[test]
    fn exact_fields_key_respects_field_boundaries() {
        // The unit-separator join must not conflate ["ab"] with ["a","b"].
        let records = vec![rec(&["ab"]), rec(&["a", "b"])];
        let map = CollapseMap::build(&records, CollapseKey::ExactFields);
        assert_eq!(map.n_reps(), 2);
    }

    #[test]
    fn empty_corpus() {
        let map = CollapseMap::build(&[], CollapseKey::RecordString);
        assert_eq!(map.n_reps(), 0);
        assert_eq!(map.n_full(), 0);
        assert!(map.expand_reln(&NnReln::new(vec![]), NeighborSpec::TopK(3), &[]).is_empty());
    }

    #[test]
    fn expand_groups_sorts_members() {
        let records = vec![rec(&["x"]), rec(&["y"]), rec(&["x"]), rec(&["z"])];
        let map = CollapseMap::build(&records, CollapseKey::RecordString);
        // reps: 0 -> {0, 2}, 1 -> {1}, 2 -> {3}
        let expanded = map.expand_groups(&[vec![1, 0], vec![2]]);
        assert_eq!(expanded, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn expand_reln_topk_inserts_sibling_zeros_and_truncates() {
        let records = vec![rec(&["x"]), rec(&["x"]), rec(&["y"])];
        let map = CollapseMap::build(&records, CollapseKey::RecordString);
        // Rep space: 0 = {0,1} (m=2), 1 = {2}. Weighted rep reln: rep 0
        // has survivor rep 1 at 0.5 (kept beyond k by the weighted
        // lookup), rep 1 has rep 0 at 0.5 with weighted ng 3 (= 1 + m).
        let rep_reln = NnReln::new(vec![
            NnEntry::new(0, vec![Neighbor::new(1, 0.5)], 1.0),
            NnEntry::new(1, vec![Neighbor::new(0, 0.5)], 3.0),
        ]);
        let full = map.expand_reln(&rep_reln, NeighborSpec::TopK(1), &[true, true]);
        assert_eq!(full.len(), 3);
        // Members of the m=2 class: the sibling zero wins the single slot.
        assert_eq!(full.entry(0).neighbors, vec![Neighbor::new(1, 0.0)]);
        assert_eq!(full.entry(0).ng, 1.0);
        assert_eq!(full.entry(1).neighbors, vec![Neighbor::new(0, 0.0)]);
        // The singleton keeps the expanded rep survivor (smaller member
        // first on the distance tie) and its weighted ng.
        assert_eq!(full.entry(2).neighbors, vec![Neighbor::new(0, 0.5)]);
        assert_eq!(full.entry(2).ng, 3.0);
    }

    #[test]
    fn expand_reln_radius_keeps_all_within() {
        let records = vec![rec(&["x"]), rec(&["x"]), rec(&["y"])];
        let map = CollapseMap::build(&records, CollapseKey::RecordString);
        let rep_reln = NnReln::new(vec![
            NnEntry::new(0, vec![Neighbor::new(1, 0.5)], 1.0),
            NnEntry::new(1, vec![Neighbor::new(0, 0.5)], 3.0),
        ]);
        let full = map.expand_reln(&rep_reln, NeighborSpec::Radius(0.7), &[true, true]);
        assert_eq!(full.entry(0).neighbors, vec![Neighbor::new(1, 0.0), Neighbor::new(2, 0.5)]);
        assert_eq!(full.entry(2).neighbors, vec![Neighbor::new(0, 0.5), Neighbor::new(1, 0.5)]);
        // Radius 0 excludes even the sibling zeros (strict <).
        let zero = map.expand_reln(&rep_reln, NeighborSpec::Radius(0.0), &[true, true]);
        assert!(zero.entry(0).neighbors.is_empty());
    }

    #[test]
    fn expand_reln_respects_sibling_visibility() {
        // A term-less class (e.g. punctuation-only records under the
        // inverted index) must not gain sibling neighbors it would never
        // see in the full corpus.
        let records = vec![rec(&["!!!"]), rec(&["???"]), rec(&["y"])];
        let map = CollapseMap::build(&records, CollapseKey::RecordString);
        assert_eq!(map.n_reps(), 2, "punctuation-only records share an empty record string");
        let rep_reln =
            NnReln::new(vec![NnEntry::new(0, vec![], 1.0), NnEntry::new(1, vec![], 1.0)]);
        let full = map.expand_reln(&rep_reln, NeighborSpec::TopK(2), &[false, true]);
        assert!(full.entry(0).neighbors.is_empty(), "invisible siblings stay invisible");
        assert!(full.entry(1).neighbors.is_empty());
        assert_eq!(full.entry(0).ng, 1.0);
    }
}
