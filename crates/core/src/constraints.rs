//! Negative constraining predicates (§4.5.1).
//!
//! A domain expert may know that certain tuple pairs *cannot* be duplicates
//! (e.g. two product descriptions identical but for the version number).
//! Such knowledge — including rules obtained via supervised learning — can
//! be added to the DE formulation as an extra post-processing check: "if
//! any group violates the new constraining predicate, we would further
//! split the group". (Positive knowledge, forcing pairs together, does
//! *not* fit the formulation; the paper is explicit about this asymmetry.)

use crate::partition::Partition;

/// A negative constraint: `true` means the two tuples can never be
/// duplicates of each other.
pub trait CannotLink {
    /// Whether `a` and `b` are forbidden from sharing a group.
    fn cannot_link(&self, a: u32, b: u32) -> bool;
}

impl<F: Fn(u32, u32) -> bool> CannotLink for F {
    fn cannot_link(&self, a: u32, b: u32) -> bool {
        self(a, b)
    }
}

/// An explicit list of forbidden pairs.
#[derive(Debug, Clone, Default)]
pub struct ForbiddenPairs {
    pairs: std::collections::HashSet<(u32, u32)>,
}

impl ForbiddenPairs {
    /// Build from unordered pairs.
    pub fn new(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let pairs = pairs.into_iter().map(|(a, b)| if a <= b { (a, b) } else { (b, a) }).collect();
        Self { pairs }
    }

    /// Number of forbidden pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl CannotLink for ForbiddenPairs {
    fn cannot_link(&self, a: u32, b: u32) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.contains(&key)
    }
}

/// Split one group so that no remaining subgroup contains a forbidden pair.
/// Greedy first-fit: members (in id order) go to the first subgroup they
/// do not conflict with; a new subgroup is opened otherwise. First-fit is
/// deterministic and never merges beyond the input group.
pub fn split_group(group: &[u32], constraint: &impl CannotLink) -> Vec<Vec<u32>> {
    let mut subgroups: Vec<Vec<u32>> = Vec::new();
    for &id in group {
        let slot = subgroups
            .iter()
            .position(|sg| sg.iter().all(|&other| !constraint.cannot_link(id, other)));
        match slot {
            Some(i) => subgroups[i].push(id),
            None => subgroups.push(vec![id]),
        }
    }
    subgroups
}

/// Apply a negative constraint to a partition: every group containing a
/// forbidden pair is split (per [`split_group`]); clean groups pass
/// through.
pub fn apply_constraints(partition: &Partition, constraint: &impl CannotLink) -> Partition {
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for g in partition.groups() {
        let violates = g
            .iter()
            .enumerate()
            .any(|(i, &a)| g[i + 1..].iter().any(|&b| constraint.cannot_link(a, b)));
        if violates {
            groups.extend(split_group(g, constraint));
        } else {
            groups.push(g.clone());
        }
    }
    Partition::from_groups(partition.n(), groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbidden_pairs_normalize_order() {
        let f = ForbiddenPairs::new([(3, 1)]);
        assert!(f.cannot_link(1, 3));
        assert!(f.cannot_link(3, 1));
        assert!(!f.cannot_link(1, 2));
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
        assert!(ForbiddenPairs::default().is_empty());
    }

    #[test]
    fn clean_groups_pass_through() {
        let p = Partition::from_groups(4, vec![vec![0, 1], vec![2, 3]]);
        let f = ForbiddenPairs::new([(0, 2)]); // cross-group pair, irrelevant
        assert_eq!(apply_constraints(&p, &f), p);
    }

    #[test]
    fn violating_group_is_split() {
        let p = Partition::from_groups(4, vec![vec![0, 1, 2, 3]]);
        let f = ForbiddenPairs::new([(0, 2)]);
        let q = apply_constraints(&p, &f);
        assert!(!q.are_together(0, 2));
        // Non-conflicting members stay with the first-fit host.
        assert!(q.are_together(0, 1));
        assert!(q.are_together(0, 3));
        assert!(q.are_together(2, 2));
    }

    #[test]
    fn closure_constraints_work() {
        let p = Partition::from_groups(4, vec![vec![0, 1, 2, 3]]);
        // Parity predicate: odd and even ids can't mix.
        let q = apply_constraints(&p, &|a: u32, b: u32| (a % 2) != (b % 2));
        assert!(q.are_together(0, 2));
        assert!(q.are_together(1, 3));
        assert!(!q.are_together(0, 1));
    }

    #[test]
    fn all_pairs_forbidden_yields_singletons() {
        let p = Partition::from_groups(3, vec![vec![0, 1, 2]]);
        let q = apply_constraints(&p, &|_: u32, _: u32| true);
        assert_eq!(q, Partition::singletons(3));
    }

    #[test]
    fn split_group_first_fit_is_deterministic() {
        let f = ForbiddenPairs::new([(0, 1), (1, 2)]);
        let parts = split_group(&[0, 1, 2], &f);
        // 0 opens group A; 1 conflicts with A → group B; 2 conflicts with B
        // but fits A.
        assert_eq!(parts, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn result_refines_input() {
        let p = Partition::from_groups(6, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        let q = apply_constraints(&p, &|a: u32, b: u32| a + b == 5);
        assert!(p.is_refined_by(&q), "constraint application only splits");
    }
}
