//! Pairwise precision / recall evaluation (§5, "Evaluation Metrics").
//!
//! "Recall is the fraction of true pairs of duplicate tuples identified by
//! an algorithm. And, precision is the fraction of tuple pairs an algorithm
//! returns which are truly duplicates."
//!
//! Gold truth is a cluster labelling: `gold[i]` is the cluster id of tuple
//! `i`; tuples sharing a label are duplicates. Pair counts are computed
//! from the contingency table (never materializing the pair sets), so
//! evaluation is `O(n)`.

use std::collections::HashMap;

use crate::partition::Partition;

/// Precision/recall of a predicted partition against gold labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of predicted pairs that are true duplicate pairs
    /// (1 when nothing is predicted — the conventional "vacuous
    /// precision").
    pub precision: f64,
    /// Fraction of true duplicate pairs that were predicted.
    pub recall: f64,
    /// Number of predicted pairs.
    pub predicted_pairs: u64,
    /// Number of true duplicate pairs.
    pub true_pairs: u64,
    /// Number of correctly predicted pairs.
    pub correct_pairs: u64,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision, self.recall);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn pairs_of(count: u64) -> u64 {
    count * count.saturating_sub(1) / 2
}

/// Evaluate a predicted partition against gold cluster labels.
///
/// # Panics
/// Panics if `gold.len() != partition.n()` (mismatched relations are a
/// harness bug).
pub fn evaluate(partition: &Partition, gold: &[usize]) -> PrecisionRecall {
    assert_eq!(gold.len(), partition.n(), "gold labels must cover the relation");

    // True pairs: per gold cluster.
    let mut gold_sizes: HashMap<usize, u64> = HashMap::new();
    for &g in gold {
        *gold_sizes.entry(g).or_insert(0) += 1;
    }
    let true_pairs: u64 = gold_sizes.values().map(|&c| pairs_of(c)).sum();

    // Predicted pairs: per predicted group.
    let predicted_pairs = partition.num_duplicate_pairs();

    // Correct pairs: contingency (group, gold) cells.
    let mut cells: HashMap<(usize, usize), u64> = HashMap::new();
    for id in 0..partition.n() as u32 {
        let cell = (partition.group_index_of(id), gold[id as usize]);
        *cells.entry(cell).or_insert(0) += 1;
    }
    let correct_pairs: u64 = cells.values().map(|&c| pairs_of(c)).sum();

    let precision =
        if predicted_pairs == 0 { 1.0 } else { correct_pairs as f64 / predicted_pairs as f64 };
    let recall = if true_pairs == 0 { 1.0 } else { correct_pairs as f64 / true_pairs as f64 };
    PrecisionRecall { precision, recall, predicted_pairs, true_pairs, correct_pairs }
}

/// B-cubed precision/recall (Bagga & Baldwin): per-record averages instead
/// of per-pair counts. B-cubed weights every *record* equally, so one huge
/// wrong merge cannot dominate the score the way it dominates pairwise
/// precision — the complementary view modern entity-resolution evaluations
/// report alongside pairwise metrics.
///
/// For record `i` with predicted group `G(i)` and gold cluster `C(i)`:
/// `precision_i = |G(i) ∩ C(i)| / |G(i)|`, `recall_i = |G(i) ∩ C(i)| /
/// |C(i)|`; the dataset scores are the means over all records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BCubed {
    /// Mean per-record precision.
    pub precision: f64,
    /// Mean per-record recall.
    pub recall: f64,
}

impl BCubed {
    /// Harmonic mean.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision, self.recall);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Compute B-cubed scores for a predicted partition against gold labels.
///
/// # Panics
/// Panics if `gold.len() != partition.n()`.
pub fn evaluate_bcubed(partition: &Partition, gold: &[usize]) -> BCubed {
    assert_eq!(gold.len(), partition.n(), "gold labels must cover the relation");
    let n = partition.n();
    if n == 0 {
        return BCubed { precision: 1.0, recall: 1.0 };
    }
    let mut gold_sizes: HashMap<usize, u64> = HashMap::new();
    for &g in gold {
        *gold_sizes.entry(g).or_insert(0) += 1;
    }
    // |G(i) ∩ C(i)| per (group, gold) cell.
    let mut cells: HashMap<(usize, usize), u64> = HashMap::new();
    for id in 0..n as u32 {
        *cells.entry((partition.group_index_of(id), gold[id as usize])).or_insert(0) += 1;
    }
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    for id in 0..n as u32 {
        let group = partition.group_of(id);
        let cell = cells[&(partition.group_index_of(id), gold[id as usize])] as f64;
        precision_sum += cell / group.len() as f64;
        recall_sum += cell / gold_sizes[&gold[id as usize]] as f64;
    }
    BCubed { precision: precision_sum / n as f64, recall: recall_sum / n as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let gold = vec![0, 0, 1, 1, 2];
        let p = Partition::from_groups(5, vec![vec![0, 1], vec![2, 3]]);
        let pr = evaluate(&p, &gold);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
        assert_eq!(pr.true_pairs, 2);
        assert_eq!(pr.predicted_pairs, 2);
    }

    #[test]
    fn empty_prediction_has_vacuous_precision() {
        let gold = vec![0, 0, 1];
        let pr = evaluate(&Partition::singletons(3), &gold);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn over_merging_hurts_precision() {
        let gold = vec![0, 0, 1, 1];
        let p = Partition::from_groups(4, vec![vec![0, 1, 2, 3]]);
        let pr = evaluate(&p, &gold);
        // 6 predicted pairs, 2 correct.
        assert_eq!(pr.predicted_pairs, 6);
        assert_eq!(pr.correct_pairs, 2);
        assert!((pr.precision - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn under_merging_hurts_recall() {
        let gold = vec![0, 0, 0];
        let p = Partition::from_groups(3, vec![vec![0, 1]]);
        let pr = evaluate(&p, &gold);
        assert_eq!(pr.precision, 1.0);
        assert!((pr.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_pairs_zero_both() {
        let gold = vec![0, 1, 0, 1];
        let p = Partition::from_groups(4, vec![vec![0, 1], vec![2, 3]]);
        let pr = evaluate(&p, &gold);
        assert_eq!(pr.correct_pairs, 0);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn all_unique_gold_with_no_predictions() {
        let gold = vec![0, 1, 2, 3];
        let pr = evaluate(&Partition::singletons(4), &gold);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0, "vacuous recall when no true pairs exist");
    }

    #[test]
    fn partial_overlap_counts() {
        // Gold: {0,1,2} and {3,4}. Predicted: {0,1} and {2,3}.
        let gold = vec![0, 0, 0, 1, 1];
        let p = Partition::from_groups(5, vec![vec![0, 1], vec![2, 3]]);
        let pr = evaluate(&p, &gold);
        assert_eq!(pr.true_pairs, 4);
        assert_eq!(pr.predicted_pairs, 2);
        assert_eq!(pr.correct_pairs, 1); // only (0,1)
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gold labels")]
    fn mismatched_lengths_panic() {
        evaluate(&Partition::singletons(3), &[0, 1]);
    }

    #[test]
    fn bcubed_perfect_and_empty() {
        let gold = vec![0, 0, 1];
        let p = Partition::from_groups(3, vec![vec![0, 1]]);
        let b = evaluate_bcubed(&p, &gold);
        assert_eq!(b.precision, 1.0);
        assert_eq!(b.recall, 1.0);
        assert_eq!(b.f1(), 1.0);
        let e = evaluate_bcubed(&Partition::singletons(0), &[]);
        assert_eq!(e.f1(), 1.0);
    }

    #[test]
    fn bcubed_hand_computed() {
        // Gold: {0,1,2}; predicted: {0,1}, {2}.
        let gold = vec![0, 0, 0];
        let p = Partition::from_groups(3, vec![vec![0, 1]]);
        let b = evaluate_bcubed(&p, &gold);
        // precision: records 0,1 → 2/2; record 2 → 1/1 → mean 1.
        assert_eq!(b.precision, 1.0);
        // recall: records 0,1 → 2/3; record 2 → 1/3 → mean 5/9.
        assert!((b.recall - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn bcubed_is_gentler_than_pairwise_on_one_big_merge() {
        // One wrong giant group of 2 gold clusters of 4: pairwise
        // precision = 12/28; B-cubed precision = 4/8 per record = 0.5.
        let gold = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let p = Partition::from_groups(8, vec![(0..8).collect()]);
        let pairwise = evaluate(&p, &gold);
        let bcubed = evaluate_bcubed(&p, &gold);
        assert!((pairwise.precision - 12.0 / 28.0).abs() < 1e-12);
        assert!((bcubed.precision - 0.5).abs() < 1e-12);
        assert!(bcubed.precision > pairwise.precision);
        assert_eq!(bcubed.recall, 1.0);
    }

    #[test]
    fn bcubed_singletons_have_full_precision() {
        let gold = vec![0, 0, 1];
        let b = evaluate_bcubed(&Partition::singletons(3), &gold);
        assert_eq!(b.precision, 1.0);
        assert!((b.recall - (0.5 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
    }
}
