//! Human-readable deduplication reports.
//!
//! Turns a [`Partition`] (plus the records and, optionally, the NN
//! relation) into the summary a data steward reviews before accepting a
//! merge: headline counts, the group-size histogram, and the duplicate
//! groups themselves annotated with intra-group distances — sorted so the
//! *least confident* merges (largest internal diameter) come first, which
//! is where review time is best spent.

use std::fmt::Write as _;

use crate::nnreln::NnReln;
use crate::partition::Partition;

/// Options controlling report size.
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// Maximum duplicate groups listed (0 = all).
    pub max_groups: usize,
    /// Maximum records printed per group (0 = all).
    pub max_records_per_group: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self { max_groups: 50, max_records_per_group: 8 }
    }
}

/// Render a report. `reln` enables the per-group diameter annotation and
/// the confidence ordering; without it, groups are listed in canonical
/// order.
///
/// # Panics
/// Panics if `records.len() != partition.n()`.
pub fn render_report(
    partition: &Partition,
    records: &[Vec<String>],
    reln: Option<&NnReln>,
    options: ReportOptions,
) -> String {
    assert_eq!(records.len(), partition.n(), "records must cover the partition");
    let mut out = String::new();

    let dup_groups: Vec<&Vec<u32>> = partition.duplicate_groups().collect();
    let dup_records: usize = dup_groups.iter().map(|g| g.len()).sum();
    let _ = writeln!(out, "# Deduplication report");
    let _ = writeln!(
        out,
        "{} records -> {} entities; {} duplicate group(s) covering {} records ({} pairs)",
        partition.n(),
        partition.num_groups(),
        dup_groups.len(),
        dup_records,
        partition.num_duplicate_pairs(),
    );

    // Size histogram, ascending.
    let mut histogram: Vec<(usize, usize)> =
        partition.size_histogram().into_iter().filter(|&(size, _)| size > 1).collect();
    histogram.sort_unstable();
    let _ = write!(out, "group sizes:");
    for (size, count) in &histogram {
        let _ = write!(out, " {size}x{count}");
    }
    let _ = writeln!(out);

    // Order groups by descending diameter (least confident first) when NN
    // lists are available.
    let diameter_of =
        |group: &[u32]| -> Option<f64> { reln.and_then(|r| crate::criteria::diameter(r, group)) };
    let mut ordered: Vec<(&Vec<u32>, Option<f64>)> =
        dup_groups.iter().map(|g| (*g, diameter_of(g))).collect();
    ordered.sort_by(|a, b| {
        b.1.unwrap_or(f64::INFINITY)
            .total_cmp(&a.1.unwrap_or(f64::INFINITY))
            .then_with(|| a.0[0].cmp(&b.0[0]))
    });

    let limit = if options.max_groups == 0 { ordered.len() } else { options.max_groups };
    for (i, (group, diameter)) in ordered.iter().take(limit).enumerate() {
        match diameter {
            Some(d) => {
                let _ =
                    writeln!(out, "\ngroup {} (size {}, diameter {:.3}):", i + 1, group.len(), d);
            }
            None => {
                let _ = writeln!(out, "\ngroup {} (size {}):", i + 1, group.len());
            }
        }
        let rec_limit = if options.max_records_per_group == 0 {
            group.len()
        } else {
            options.max_records_per_group
        };
        for &id in group.iter().take(rec_limit) {
            let _ = writeln!(out, "  [{id}] {}", records[id as usize].join(" | "));
        }
        if group.len() > rec_limit {
            let _ = writeln!(out, "  ... and {} more", group.len() - rec_limit);
        }
    }
    if ordered.len() > limit {
        let _ = writeln!(out, "\n... and {} more group(s)", ordered.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnreln::NnEntry;
    use fuzzydedup_relation::Neighbor;

    fn records() -> Vec<Vec<String>> {
        vec![
            vec!["the doors".into(), "la woman".into()],
            vec!["doors".into(), "la woman".into()],
            vec!["aaliyah".into(), "are you ready".into()],
            vec!["shania twain".into(), "holdin on".into()],
            vec!["twian shania".into(), "holding on".into()],
        ]
    }

    fn partition() -> Partition {
        Partition::from_groups(5, vec![vec![0, 1], vec![3, 4]])
    }

    #[test]
    fn headline_counts() {
        let report = render_report(&partition(), &records(), None, ReportOptions::default());
        assert!(report.contains("5 records -> 3 entities"));
        assert!(report.contains("2 duplicate group(s) covering 4 records (2 pairs)"));
        assert!(report.contains("group sizes: 2x2"));
        assert!(report.contains("the doors | la woman"));
    }

    #[test]
    fn diameter_ordering_puts_weak_merges_first() {
        let reln = NnReln::new(vec![
            NnEntry::new(0, vec![Neighbor::new(1, 0.1)], 2.0),
            NnEntry::new(1, vec![Neighbor::new(0, 0.1)], 2.0),
            NnEntry::new(2, vec![], 1.0),
            NnEntry::new(3, vec![Neighbor::new(4, 0.4)], 2.0),
            NnEntry::new(4, vec![Neighbor::new(3, 0.4)], 2.0),
        ]);
        let report = render_report(&partition(), &records(), Some(&reln), ReportOptions::default());
        let twain_at = report.find("shania twain").unwrap();
        let doors_at = report.find("the doors").unwrap();
        assert!(twain_at < doors_at, "looser group (0.4) reviewed before tighter (0.1)");
        assert!(report.contains("diameter 0.400"));
    }

    #[test]
    fn limits_are_applied() {
        let n = 30;
        let recs: Vec<Vec<String>> = (0..n).map(|i| vec![format!("r{i}")]).collect();
        let groups: Vec<Vec<u32>> = (0..n as u32 / 2).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let p = Partition::from_groups(n, groups);
        let report = render_report(
            &p,
            &recs,
            None,
            ReportOptions { max_groups: 3, max_records_per_group: 1 },
        );
        assert!(report.contains("... and 12 more group(s)"));
        assert!(report.contains("... and 1 more"));
    }

    #[test]
    fn no_duplicates_report() {
        let p = Partition::singletons(3);
        let recs: Vec<Vec<String>> = (0..3).map(|i| vec![format!("r{i}")]).collect();
        let report = render_report(&p, &recs, None, ReportOptions::default());
        assert!(report.contains("0 duplicate group(s)"));
    }

    #[test]
    #[should_panic(expected = "records must cover")]
    fn mismatched_records_panic() {
        render_report(&partition(), &records()[..3], None, ReportOptions::default());
    }
}
