//! Streaming distinct-count estimation for the dedup service.
//!
//! Implements the classic *distinct sampling* sketch in the style Chen
//! et al. analyze for streams with near-duplicates (arXiv:1810.12388): hash
//! every observed key, keep only keys whose hash falls in a geometrically
//! shrinking sub-range (trailing-zero level), and scale the sample size
//! back up by `2^level`. While the number of distinct keys stays under the
//! sample cap the estimate is *exact* (level 0 keeps everything); past the
//! cap the sketch degrades gracefully to an unbiased estimate with
//! `O(cap)` memory.
//!
//! The service feeds it the canonical key of every duplicate group after
//! each admitted batch (the group's minimum record id), so the statistic
//! tracks "how many distinct entities has this stream carried" — the
//! robust-distinct question raised by near-duplicate streams, answered
//! over the partition the robust pipeline already computes. Group keys can
//! be retired when later evidence splits a group, so the estimate is a
//! statistic over keys *ever observed*, not a mirror of the current
//! partition size.

use std::collections::HashSet;

/// SplitMix64: a well-mixed, dependency-free 64-bit finalizer. Determinism
/// matters here — tests and replayed benches must see identical sketches.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Bounded-memory distinct-count sketch; see module docs.
#[derive(Debug, Clone)]
pub struct DistinctEstimator {
    /// Current sampling level: a key is retained iff its hash has at least
    /// `level` trailing zero bits (probability `2^-level`).
    level: u32,
    /// Maximum retained sample size before the level increases.
    cap: usize,
    /// Hashes of the retained keys.
    sample: HashSet<u64>,
}

impl DistinctEstimator {
    /// Create a sketch retaining at most `cap` keys (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self { level: 0, cap: cap.max(1), sample: HashSet::new() }
    }

    /// Observe a key. Re-observing a key is a no-op (set semantics).
    pub fn observe(&mut self, key: u64) {
        let h = splitmix64(key);
        if h.trailing_zeros() < self.level {
            return;
        }
        self.sample.insert(h);
        while self.sample.len() > self.cap {
            // Sub-sample in place: keep the half of the current sample that
            // also clears the next level.
            self.level += 1;
            let level = self.level;
            self.sample.retain(|h| h.trailing_zeros() >= level);
        }
    }

    /// Estimated number of distinct keys observed. Exact while
    /// [`Self::is_exact`] holds.
    pub fn estimate(&self) -> u64 {
        (self.sample.len() as u64) << self.level
    }

    /// Whether the sketch is still below its cap and therefore exact.
    pub fn is_exact(&self) -> bool {
        self.level == 0
    }

    /// Current sampling level (0 = exact).
    pub fn level(&self) -> u32 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_under_cap() {
        let mut sketch = DistinctEstimator::new(64);
        for k in 0..64u64 {
            sketch.observe(k);
            sketch.observe(k); // duplicates never count twice
        }
        assert!(sketch.is_exact());
        assert_eq!(sketch.estimate(), 64);
    }

    #[test]
    fn estimate_tracks_large_streams_within_factor_two() {
        // Deterministic (splitmix64 is fixed), so a tight-ish bound is a
        // real regression check, not a flaky statistical assertion.
        let mut sketch = DistinctEstimator::new(256);
        for k in 0..10_000u64 {
            sketch.observe(k * 7 + 3);
        }
        assert!(!sketch.is_exact());
        let est = sketch.estimate();
        assert!((5_000..=20_000).contains(&est), "estimate {est} off by more than 2x");
    }

    #[test]
    fn zero_cap_is_clamped() {
        let mut sketch = DistinctEstimator::new(0);
        sketch.observe(42);
        assert!(sketch.estimate() >= 1);
    }

    proptest! {
        /// The defining property of distinct sampling: below the cap the
        /// sketch is an exact distinct counter, whatever the key stream
        /// (duplicates, ordering, adversarial values).
        #[test]
        fn prop_exact_below_cap(keys in proptest::collection::vec(any::<u64>(), 0..200)) {
            let mut sketch = DistinctEstimator::new(200);
            let mut exact = HashSet::new();
            for &k in &keys {
                sketch.observe(k);
                exact.insert(k);
            }
            prop_assert!(sketch.is_exact());
            prop_assert_eq!(sketch.estimate(), exact.len() as u64);
        }

        /// Level growth never loses more than the sampling discipline
        /// allows: the estimate is always a multiple of `2^level` and the
        /// retained sample respects the cap.
        #[test]
        fn prop_sample_bounded(keys in proptest::collection::vec(any::<u64>(), 0..2000)) {
            let mut sketch = DistinctEstimator::new(32);
            for &k in &keys {
                sketch.observe(k);
            }
            prop_assert!(sketch.sample.len() <= 32);
            prop_assert_eq!(sketch.estimate() % (1u64 << sketch.level()), 0);
        }
    }
}
