//! `NN_Reln` spill: persisting the Phase-1 relation to heap-file storage.
//!
//! On corpora that outgrow RAM the materialized neighbor relation is the
//! largest Phase-1 artifact after the index itself, and the paper's
//! architecture already assumes `NN_Reln` lives in the database ("the
//! partitioning phase runs as relational queries" over it). This module
//! gives the relation a storage-resident form: entries serialize into
//! [`HeapFile`] records whose pages flow through the buffer pool, so a
//! bounded pool backed by a [`FileDisk`](fuzzydedup_storage::FileDisk)
//! caps the memory the spilled relation can pin regardless of corpus
//! size.
//!
//! # Record format (little-endian)
//!
//! One logical entry per tuple, chunked when its neighbor list outgrows a
//! page:
//!
//! ```text
//! id: u32 | ng: f64 | count: u32 | count × (neighbor_id: u32 | dist: f64)
//! ```
//!
//! Entries are written in id order; an entry whose neighbor list exceeds
//! [`Page::max_record_size`] splits into consecutive records that repeat
//! the `id`/`ng` header, and the reader re-concatenates consecutive
//! same-id records (neighbor order — ascending `(dist, id)` — is
//! preserved by the split). [`read_nn_reln`] therefore round-trips
//! [`spill_nn_reln`] bit-exactly.

use fuzzydedup_metrics::{incr, Counter};
use fuzzydedup_relation::Neighbor;
use fuzzydedup_storage::{HeapFile, Page, StorageResult};

use crate::nnreln::{NnEntry, NnReln};

/// Serialized size of the per-record header (`id`, `ng`, `count`).
const HEADER_BYTES: usize = 4 + 8 + 4;
/// Serialized size of one neighbor (`id`, `dist`).
const NEIGHBOR_BYTES: usize = 4 + 8;

/// Write the whole relation into `file` in id order, incrementing
/// [`Counter::SpillEntries`] per tuple and [`Counter::SpillBytes`] per
/// serialized byte. The file should be freshly created — records are
/// appended.
pub fn spill_nn_reln(reln: &NnReln, file: &HeapFile) -> StorageResult<()> {
    // Leave headroom so a full chunk's record always fits a fresh page.
    let max_neighbors = (Page::max_record_size() - HEADER_BYTES) / NEIGHBOR_BYTES;
    let mut buf: Vec<u8> = Vec::new();
    for entry in reln.entries() {
        incr(Counter::SpillEntries, 1);
        let mut chunks = entry.neighbors.chunks(max_neighbors);
        // An empty neighbor list still needs its header record.
        let first: &[Neighbor] = chunks.next().unwrap_or(&[]);
        write_chunk(entry, first, &mut buf);
        file.insert(&buf)?;
        incr(Counter::SpillBytes, buf.len() as u64);
        for chunk in chunks {
            write_chunk(entry, chunk, &mut buf);
            file.insert(&buf)?;
            incr(Counter::SpillBytes, buf.len() as u64);
        }
    }
    Ok(())
}

fn write_chunk(entry: &NnEntry, neighbors: &[Neighbor], buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&entry.id.to_le_bytes());
    buf.extend_from_slice(&entry.ng.to_le_bytes());
    buf.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
    for n in neighbors {
        buf.extend_from_slice(&n.id.to_le_bytes());
        buf.extend_from_slice(&n.dist.to_le_bytes());
    }
}

/// Read a relation previously written by [`spill_nn_reln`] back into
/// memory, merging chunked entries.
///
/// # Panics
/// Panics if a record is malformed — the spill file is produced by this
/// module in the same process, so corruption is a logic error, not an
/// input condition.
pub fn read_nn_reln(file: &HeapFile) -> StorageResult<NnReln> {
    let mut entries: Vec<NnEntry> = Vec::new();
    file.scan(|_, bytes| {
        let (id, ng, neighbors) = read_chunk(bytes);
        match entries.last_mut() {
            // Continuation chunk of the previous entry.
            Some(last) if last.id == id => last.neighbors.extend(neighbors),
            _ => entries.push(NnEntry::new(id, neighbors, ng)),
        }
    })?;
    Ok(NnReln::new(entries))
}

fn read_chunk(bytes: &[u8]) -> (u32, f64, Vec<Neighbor>) {
    let fixed = |at: usize| -> [u8; 4] { bytes[at..at + 4].try_into().expect("spill header") };
    let wide = |at: usize| -> [u8; 8] { bytes[at..at + 8].try_into().expect("spill header") };
    let id = u32::from_le_bytes(fixed(0));
    let ng = f64::from_le_bytes(wide(4));
    let count = u32::from_le_bytes(fixed(12)) as usize;
    assert_eq!(bytes.len(), HEADER_BYTES + count * NEIGHBOR_BYTES, "spill record length");
    let mut neighbors = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_BYTES + i * NEIGHBOR_BYTES;
        neighbors
            .push(Neighbor::new(u32::from_le_bytes(fixed(at)), f64::from_le_bytes(wide(at + 4))));
    }
    (id, ng, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzydedup_storage::{BufferPool, BufferPoolConfig, InMemoryDisk};
    use std::sync::Arc;

    fn heap(frames: usize) -> HeapFile {
        HeapFile::create(Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(frames),
            Arc::new(InMemoryDisk::new()),
        )))
    }

    fn entry(id: u32, neighbors: &[(u32, f64)], ng: f64) -> NnEntry {
        NnEntry::new(id, neighbors.iter().map(|&(i, d)| Neighbor::new(i, d)).collect(), ng)
    }

    #[test]
    fn round_trips_bit_exactly() {
        let reln = NnReln::new(vec![
            entry(0, &[(1, 0.125), (2, 0.5)], 2.0),
            entry(1, &[(0, 0.125)], 3.5),
            entry(2, &[], 1.0),
            entry(3, &[(0, 0.5), (1, 0.5), (2, 0.75)], 4.0),
        ]);
        let file = heap(16);
        spill_nn_reln(&reln, &file).unwrap();
        assert_eq!(read_nn_reln(&file).unwrap(), reln);
    }

    #[test]
    fn empty_relation_round_trips() {
        let file = heap(4);
        spill_nn_reln(&NnReln::new(vec![]), &file).unwrap();
        assert!(read_nn_reln(&file).unwrap().is_empty());
    }

    #[test]
    fn oversized_neighbor_lists_chunk_across_records() {
        // A neighbor list far beyond one page's record capacity forces the
        // continuation path; distances keep full f64 precision.
        let neighbors: Vec<(u32, f64)> =
            (0..5000u32).map(|i| (i + 1, f64::from(i) * 0.001 + 0.1)).collect();
        let reln = NnReln::new(vec![entry(0, &neighbors, 5000.0)]);
        let file = heap(64);
        spill_nn_reln(&reln, &file).unwrap();
        assert!(file.len() > 1, "entry must span multiple records");
        assert_eq!(read_nn_reln(&file).unwrap(), reln);
    }

    #[test]
    fn spill_counters_account_entries_and_bytes() {
        let _serial = fuzzydedup_metrics::serial_guard();
        let before = fuzzydedup_metrics::snapshot();
        let reln = NnReln::new(vec![entry(0, &[(1, 0.25)], 2.0), entry(1, &[(0, 0.25)], 2.0)]);
        let file = heap(8);
        spill_nn_reln(&reln, &file).unwrap();
        let d = fuzzydedup_metrics::snapshot().delta(&before);
        assert_eq!(d.get(Counter::SpillEntries), 2);
        assert_eq!(d.get(Counter::SpillBytes), 2 * (HEADER_BYTES + NEIGHBOR_BYTES) as u64);
    }
}
