//! End-to-end duplicate elimination pipeline.
//!
//! Mirrors the paper's architecture (Figure 3): a client driving
//! (1) the nearest-neighbor computation phase against an NN index whose
//! pages live in the database buffer, and (2) the partitioning phase
//! running as relational queries. [`Deduplicator`] is the single entry
//! point: construct it with a [`DedupConfig`], then
//! [`Deduplicator::run_records`] deduplicates string records (building the
//! distance function and the configured index) while [`Deduplicator::run`]
//! drives the same phases over any pre-built [`NnIndex`] (e.g. a
//! [`crate::matrix::MatrixIndex`]).
//!
//! Both phases scale over threads through one [`Parallelism`] knob:
//! Phase 1 shards the id space ([`crate::parallel`]), Phase 2 processes
//! CS-pair components concurrently
//! ([`crate::phase2::partition_entries_parallel`]); either way results are
//! bit-for-bit identical to the sequential drive.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fuzzydedup_metrics::{
    CollapseMetrics, Phase1Metrics, RunMetrics, StageTimings, StorageMetrics,
};
use fuzzydedup_nnindex::{
    InvertedIndex, InvertedIndexConfig, LookupOrder, MinHashConfig, MinHashIndex, NestedLoopIndex,
    NnIndex,
};
use fuzzydedup_relation::RelationError;
use fuzzydedup_storage::{BufferPool, BufferPoolConfig, BufferStats, InMemoryDisk, StorageError};
use fuzzydedup_textdist::DistanceKind;

use crate::collapse::{CollapseKey, CollapseMap};
use crate::criteria::Aggregation;
use crate::minimality::enforce_minimality;
use crate::nnreln::NnReln;
use crate::parallel::resolve_threads;
use crate::partition::Partition;
use crate::phase1::{NeighborSpec, Phase1Stats};
use crate::phase2::{partition_entries, partition_entries_parallel, partition_via_tables};
use crate::problem::CutSpec;

/// Which nearest-neighbor index Phase 1 uses.
#[derive(Debug, Clone)]
pub enum IndexChoice {
    /// IDF-weighted inverted q-gram/token index over buffer-pool pages
    /// (the paper's assumed probabilistic index).
    Inverted(InvertedIndexConfig),
    /// Exact nested-loop scan (the paper's stated fallback).
    NestedLoop,
    /// MinHash-LSH signature index (the other probabilistic family the
    /// paper cites, [23, 24]).
    MinHash(MinHashConfig),
}

impl Default for IndexChoice {
    fn default() -> Self {
        IndexChoice::Inverted(InvertedIndexConfig::default())
    }
}

/// Per-phase worker-thread counts — the one knob driving every parallel
/// path of the pipeline. `None` for a phase means the sequential drive
/// (for Phase 1 that is the ordered scan honoring
/// [`DedupConfig::lookup_order`]); `Some(0)` means one worker per
/// available CPU. Parallel and sequential drives produce identical
/// results for both phases, so this is purely a performance knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads for Phase 1 (NN-list materialization).
    pub phase1_threads: Option<usize>,
    /// Worker threads for Phase 2 (component-parallel partitioning).
    /// Ignored when Phase 2 routes through the relational substrate
    /// ([`DedupConfig::via_tables`]), which stays sequential.
    pub phase2_threads: Option<usize>,
}

impl Parallelism {
    /// Both phases sequential (the default).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Both phases on `n` worker threads (`0` = all CPUs).
    pub fn threads(n: usize) -> Self {
        Self { phase1_threads: Some(n), phase2_threads: Some(n) }
    }

    /// Set the Phase-1 worker count.
    pub fn phase1(mut self, n: usize) -> Self {
        self.phase1_threads = Some(n);
        self
    }

    /// Set the Phase-2 worker count.
    pub fn phase2(mut self, n: usize) -> Self {
        self.phase2_threads = Some(n);
        self
    }
}

/// Configuration of a deduplication run. Construct with
/// [`DedupConfig::new`] and refine with the builder methods.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// Distance function.
    pub distance: DistanceKind,
    /// Cut specification (`DE_S(K)` / `DE_D(θ)` / both / none).
    pub cut: CutSpec,
    /// SN aggregation function.
    pub agg: Aggregation,
    /// SN threshold `c` (use [`crate::threshold::estimate_sn_threshold`]
    /// to derive it from a duplicate-fraction estimate).
    pub c: f64,
    /// Neighborhood-growth multiplier `p` (the paper fixes 2).
    pub p: f64,
    /// Phase-1 lookup order.
    pub order: LookupOrder,
    /// Index choice.
    pub index: IndexChoice,
    /// Apply the §4.5.2 minimality post-pass.
    pub minimality: bool,
    /// Run Phase 2 through the relational substrate (the paper's SQL
    /// shape) instead of the in-memory fast path. Both produce identical
    /// partitions.
    pub via_tables: bool,
    /// Buffer-pool frames for index pages and Phase-2 tables.
    pub buffer_frames: usize,
    /// Per-phase worker-thread counts. Results are identical to the
    /// sequential drive either way — see [`crate::parallel`] and
    /// [`crate::phase2::partition_entries_parallel`]; the sequential BF
    /// order only matters for disk-resident indexes.
    pub parallelism: Parallelism,
    /// Capacity (in entries) of the symmetric pair-distance memo consulted
    /// during Phase-1 verification; `0` disables it. The partition is
    /// identical either way — the cache only skips recomputation (see
    /// [`crate::pair_cache::PairCache`]).
    pub pair_cache_capacity: usize,
    /// Number of pivot anchors for triangle-inequality pruning during
    /// Phase-1 verification; `0` (the default) disables the layer. Only
    /// takes effect when [`DedupConfig::index`] is
    /// [`IndexChoice::Inverted`] and the distance is a true metric
    /// ([`fuzzydedup_textdist::Distance::admits_metric_pruning`]) — the
    /// pruning silently degrades to a no-op otherwise. The partition is
    /// bit-identical either way (see `fuzzydedup_nnindex::pivot`).
    pub pivot_count: usize,
    /// Spill `NN_Reln` through heap-file storage once the relation holds
    /// at least this many tuples; `0` (the default) keeps it purely in
    /// memory. Spilled pages flow through the run's buffer pool, so a
    /// bounded pool backed by a real disk caps the relation's resident
    /// footprint (see [`crate::spill`]). The round-trip is bit-exact —
    /// results are identical either way.
    pub spill_threshold: usize,
    /// Collapse exact duplicates into weighted representatives before
    /// Phase 1 and expand the `NN_Reln` back afterwards (DESIGN.md §7.10);
    /// `None` (the default) disables the pass. The expanded partition is
    /// bit-identical to the collapse-off run — this is purely a
    /// performance lever for duplicate-heavy corpora. Only applies to the
    /// record entry points ([`Deduplicator::run_records`]); a run over a
    /// pre-built index is rejected. [`CollapseKey::RecordString`] requires
    /// a record-string-invariant distance.
    pub collapse: Option<CollapseKey>,
}

impl DedupConfig {
    /// Defaults: `DE_S(5)`, `Max` aggregation, `c = 4`, `p = 2`,
    /// breadth-first lookups, inverted index, 4096 buffer frames (32 MB),
    /// both phases sequential.
    pub fn new(distance: DistanceKind) -> Self {
        Self {
            distance,
            cut: CutSpec::Size(5),
            agg: Aggregation::Max,
            c: 4.0,
            p: 2.0,
            order: LookupOrder::breadth_first(),
            index: IndexChoice::default(),
            minimality: false,
            via_tables: false,
            buffer_frames: 4096,
            parallelism: Parallelism::sequential(),
            pair_cache_capacity: 0,
            pivot_count: 0,
            spill_threshold: 0,
            collapse: None,
        }
    }

    /// Set the cut specification.
    pub fn cut(mut self, cut: CutSpec) -> Self {
        self.cut = cut;
        self
    }

    /// Set the SN aggregation function.
    pub fn aggregation(mut self, agg: Aggregation) -> Self {
        self.agg = agg;
        self
    }

    /// Set the SN threshold `c`.
    pub fn sn_threshold(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Set the growth multiplier `p`.
    pub fn growth_multiplier(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Set the Phase-1 lookup order.
    pub fn lookup_order(mut self, order: LookupOrder) -> Self {
        self.order = order;
        self
    }

    /// Choose the NN index.
    pub fn index_choice(mut self, index: IndexChoice) -> Self {
        self.index = index;
        self
    }

    /// Enable/disable the minimality post-pass.
    pub fn minimality(mut self, on: bool) -> Self {
        self.minimality = on;
        self
    }

    /// Route Phase 2 through the relational substrate.
    pub fn via_tables(mut self, on: bool) -> Self {
        self.via_tables = on;
        self
    }

    /// Set the buffer-pool size in frames (8 KiB each).
    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.buffer_frames = frames.max(1);
        self
    }

    /// Set the per-phase worker-thread counts.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set the pair-distance memo capacity in entries (`0` disables).
    pub fn pair_cache_capacity(mut self, capacity: usize) -> Self {
        self.pair_cache_capacity = capacity;
        self
    }

    /// Set the pivot-anchor count for triangle-inequality pruning
    /// (`0` disables; inverted index + metric distance only).
    pub fn pivot_count(mut self, pivots: usize) -> Self {
        self.pivot_count = pivots;
        self
    }

    /// Spill `NN_Reln` to heap-file storage when the relation holds at
    /// least `tuples` entries (`0` disables).
    pub fn spill_threshold(mut self, tuples: usize) -> Self {
        self.spill_threshold = tuples;
        self
    }

    /// Enable/disable the exact-duplicate collapse pre-pass
    /// (`None` disables; see [`DedupConfig::collapse`]).
    pub fn collapse(mut self, key: Option<CollapseKey>) -> Self {
        self.collapse = key;
        self
    }
}

/// Errors from a deduplication run.
///
/// Layer failures are wrapped as typed variants whose causes are reachable
/// through [`std::error::Error::source`] — walk the chain for the full
/// story instead of parsing strings. The enum is `#[non_exhaustive]`:
/// future pipeline layers may add variants without a breaking change, so
/// downstream `match`es need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum DedupError {
    /// The configuration is invalid (bad cut parameters, `p < 1`, ...).
    InvalidConfig(String),
    /// A relational-substrate failure during Phase 2.
    Relation(RelationError),
    /// A storage-layer failure (buffer pool or disk manager) outside the
    /// relational substrate.
    Storage(StorageError),
}

impl std::fmt::Display for DedupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            Self::Relation(_) => write!(f, "phase 2 relational substrate failed"),
            Self::Storage(_) => write!(f, "storage layer failed"),
        }
    }
}

impl std::error::Error for DedupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidConfig(_) => None,
            Self::Relation(e) => Some(e),
            Self::Storage(e) => Some(e),
        }
    }
}

impl From<RelationError> for DedupError {
    fn from(e: RelationError) -> Self {
        Self::Relation(e)
    }
}

impl From<StorageError> for DedupError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// Everything a run produces: the partition plus the intermediate state
/// and instrumentation the experiments consume.
#[derive(Debug)]
pub struct DedupOutcome {
    /// The computed partition (after any post-passes).
    pub partition: Partition,
    /// The materialized `NN_Reln` (reusable, e.g. for threshold
    /// re-estimation — "the SN threshold value is not required until the
    /// second partitioning phase").
    pub nn_reln: NnReln,
    /// Phase-1 statistics (lookup count, visit order).
    pub phase1_stats: Phase1Stats,
    /// Wall-clock duration of Phase 1.
    pub phase1_duration: Duration,
    /// Wall-clock duration of Phase 2.
    pub phase2_duration: Duration,
    /// Buffer-pool statistics accumulated during Phase 1 (index lookups);
    /// zeroed when the index does not use the pool.
    pub buffer_stats: BufferStats,
    /// The unified run-metrics surface: per-layer counters (distance
    /// evaluations, index traffic, Phase-2 relational work), buffer-pool
    /// accounting over the whole run, Phase-1 probe telemetry, per-phase
    /// worker-thread counts, and per-stage wall times. JSON-serializable
    /// via [`RunMetrics::to_json`]; the CLI prints it under `--metrics`.
    ///
    /// Counter-backed sections are per-run deltas of process-global
    /// counters, so concurrent runs in one process bleed into each other;
    /// `phase1_stats` carries the exact per-run probe counts regardless.
    pub metrics: RunMetrics,
}

// `!(c > 0.0)` deliberately rejects NaN as well as non-positives.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn validate(config: &DedupConfig) -> Result<(), DedupError> {
    config.cut.validate().map_err(DedupError::InvalidConfig)?;
    if config.p < 1.0 {
        return Err(DedupError::InvalidConfig(format!(
            "growth multiplier p must be >= 1, got {}",
            config.p
        )));
    }
    if !(config.c > 0.0) {
        return Err(DedupError::InvalidConfig(format!(
            "SN threshold c must be positive, got {}",
            config.c
        )));
    }
    Ok(())
}

/// The unified entry point: one configured deduplicator driving both
/// phases, over raw string records ([`Deduplicator::run_records`]) or any
/// pre-built index ([`Deduplicator::run`]).
///
/// ```no_run
/// use fuzzydedup_core::{CutSpec, DedupConfig, Deduplicator, Parallelism};
/// use fuzzydedup_textdist::DistanceKind;
///
/// let config = DedupConfig::new(DistanceKind::FuzzyMatch)
///     .cut(CutSpec::Size(4))
///     .sn_threshold(4.0)
///     .parallelism(Parallelism::threads(0)); // both phases, all CPUs
/// let records: Vec<Vec<String>> = vec![/* ... */];
/// let outcome = Deduplicator::new(config).run_records(&records).unwrap();
/// println!("{} groups", outcome.partition.num_groups());
/// ```
#[derive(Debug, Clone)]
pub struct Deduplicator {
    config: DedupConfig,
}

/// Collapse context threaded from the record entry points into the phase
/// driver: the class map, per-representative sibling visibility (whether
/// a representative generates index terms), and the wall time already
/// spent building the map.
struct CollapseCtx<'a> {
    map: &'a CollapseMap,
    sibling_visible: Vec<bool>,
    build_ns: u64,
}

impl Deduplicator {
    /// Wrap a configuration. The configuration is validated on each run
    /// (not here) so a `Deduplicator` can be constructed in const-ish
    /// contexts and reconfigured via [`Deduplicator::config_mut`].
    pub fn new(config: DedupConfig) -> Self {
        Self { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &DedupConfig {
        &self.config
    }

    /// Mutable access for reconfiguring between runs.
    pub fn config_mut(&mut self) -> &mut DedupConfig {
        &mut self.config
    }

    /// Deduplicate string records: builds the distance function (fitting
    /// IDF weights on the records when the distance needs them), the
    /// configured index, and runs both phases.
    pub fn run_records(&self, records: &[Vec<String>]) -> Result<DedupOutcome, DedupError> {
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(self.config.buffer_frames),
            Arc::new(InMemoryDisk::new()),
        ));
        self.run_records_with_pool(records, pool)
    }

    /// [`Deduplicator::run_records`] on a caller-supplied buffer pool.
    /// This is the scale-out entry point: a pool backed by a
    /// [`fuzzydedup_storage::FileDisk`] puts index pages, Phase-2 tables,
    /// and the `NN_Reln` spill ([`DedupConfig::spill_threshold`]) behind a
    /// bounded frame budget on real disk instead of process memory.
    pub fn run_records_with_pool(
        &self,
        records: &[Vec<String>],
        pool: Arc<BufferPool>,
    ) -> Result<DedupOutcome, DedupError> {
        let config = &self.config;
        validate(config)?;
        let t_dist = Instant::now();
        let distance = config.distance.build(records);
        let build_distance = t_dist.elapsed();
        // Collapse pre-pass: hash the full corpus into exact-duplicate
        // classes *after* the distance fit (IDF weights and corpus
        // statistics are fit on the full relation, same as collapse-off)
        // but before index construction, so Phase 1 only ever sees the
        // representatives.
        let collapse_pass = match config.collapse {
            Some(key) => {
                if key == CollapseKey::RecordString && !distance.record_string_invariant() {
                    return Err(DedupError::InvalidConfig(format!(
                        "collapse key RecordString requires a record-string-invariant \
                         distance; {:?} is not — use CollapseKey::ExactFields",
                        config.distance
                    )));
                }
                let t_collapse = Instant::now();
                let map = CollapseMap::build(records, key);
                Some((map, t_collapse.elapsed().as_nanos() as u64))
            }
            None => None,
        };
        let t_index = Instant::now();
        // The pivot table is built inside the index constructor, before
        // `run_phases` opens its counter window — capture its build-time
        // counter here and merge it into the outcome below.
        let counters_before_build = fuzzydedup_metrics::snapshot();
        let (mut outcome, build_index) = match &config.index {
            IndexChoice::Inverted(index_config) => {
                let mut index_config = index_config.clone();
                if config.pivot_count > 0 {
                    index_config.pivots = config.pivot_count;
                }
                match &collapse_pass {
                    Some((map, build_ns)) => {
                        let index = InvertedIndex::build_collapsed(
                            map.rep_records(records),
                            map.multiplicities().to_vec(),
                            distance,
                            pool.clone(),
                            index_config,
                        );
                        let build_index = t_index.elapsed();
                        pool.reset_stats(); // measure lookups, not the build
                                            // A term-less representative gathers no candidates
                                            // in the full corpus, so its duplicates never see
                                            // each other there (see `CollapseMap::expand_reln`).
                        let sibling_visible: Vec<bool> =
                            (0..map.n_reps() as u32).map(|r| index.record_has_terms(r)).collect();
                        let ctx = CollapseCtx { map, sibling_visible, build_ns: *build_ns };
                        (self.run_phases_collapsed(&index, pool, Some(ctx))?, build_index)
                    }
                    None => {
                        let index = InvertedIndex::build(
                            records.to_vec(),
                            distance,
                            pool.clone(),
                            index_config,
                        );
                        let build_index = t_index.elapsed();
                        pool.reset_stats(); // measure lookups, not the build
                        (self.run_phases(&index, pool)?, build_index)
                    }
                }
            }
            IndexChoice::NestedLoop => match &collapse_pass {
                Some((map, build_ns)) => {
                    let index = NestedLoopIndex::with_multiplicities(
                        map.rep_records(records),
                        map.multiplicities().to_vec(),
                        distance,
                    );
                    let build_index = t_index.elapsed();
                    // The exact scan sees every pair — siblings included.
                    let sibling_visible = vec![true; map.n_reps()];
                    let ctx = CollapseCtx { map, sibling_visible, build_ns: *build_ns };
                    (self.run_phases_collapsed(&index, pool, Some(ctx))?, build_index)
                }
                None => {
                    let index = NestedLoopIndex::new(records.to_vec(), distance);
                    let build_index = t_index.elapsed();
                    (self.run_phases(&index, pool)?, build_index)
                }
            },
            IndexChoice::MinHash(minhash_config) => match &collapse_pass {
                Some((map, build_ns)) => {
                    let index = MinHashIndex::build_collapsed(
                        map.rep_records(records),
                        map.multiplicities().to_vec(),
                        distance,
                        minhash_config.clone(),
                    );
                    let build_index = t_index.elapsed();
                    // Identical records hash to identical signatures, so
                    // siblings always share every band bucket.
                    let sibling_visible = vec![true; map.n_reps()];
                    let ctx = CollapseCtx { map, sibling_visible, build_ns: *build_ns };
                    (self.run_phases_collapsed(&index, pool, Some(ctx))?, build_index)
                }
                None => {
                    let index =
                        MinHashIndex::build(records.to_vec(), distance, minhash_config.clone());
                    let build_index = t_index.elapsed();
                    (self.run_phases(&index, pool)?, build_index)
                }
            },
        };
        let timings = &mut outcome.metrics.timings;
        timings.build_distance_ns = build_distance.as_nanos() as u64;
        timings.build_index_ns = build_index.as_nanos() as u64;
        timings.total_ns += timings.build_distance_ns + timings.build_index_ns;
        // Static pivot tables are built exactly once, inside the index
        // constructor; `run_phases`' own window saw none of it.
        outcome.metrics.pivot.table_build_ns += fuzzydedup_metrics::snapshot()
            .delta(&counters_before_build)
            .get(fuzzydedup_metrics::Counter::PivotTableBuildNs);
        Ok(outcome)
    }

    /// Run the pipeline over an arbitrary pre-built index (used for matrix
    /// relations and custom indexes). A private pool is created for
    /// Phase-2 tables. Rejects configurations with
    /// [`DedupConfig::collapse`] set — the pass needs the raw records.
    pub fn run(&self, index: &dyn NnIndex) -> Result<DedupOutcome, DedupError> {
        if self.config.collapse.is_some() {
            return Err(DedupError::InvalidConfig(
                "collapse requires the record entry points (run_records); \
                 a pre-built index carries no raw records to hash"
                    .into(),
            ));
        }
        let pool = Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(self.config.buffer_frames),
            Arc::new(InMemoryDisk::new()),
        ));
        self.run_phases(index, pool)
    }

    /// Run both phases over an already-built index. `pool` carries Phase-2
    /// tables (and, for the inverted index, already carried Phase-1
    /// lookups).
    fn run_phases(
        &self,
        index: &dyn NnIndex,
        pool: Arc<BufferPool>,
    ) -> Result<DedupOutcome, DedupError> {
        self.run_phases_collapsed(index, pool, None)
    }

    /// [`Deduplicator::run_phases`] with an optional collapse context:
    /// the index then holds weighted representatives, Phase 1 runs in
    /// representative space, and the relation is expanded back to full
    /// ids (inside the Phase-1 window — materializing `NN_Reln` is
    /// Phase-1 work) before Phase 2 runs unchanged.
    fn run_phases_collapsed(
        &self,
        index: &dyn NnIndex,
        pool: Arc<BufferPool>,
        collapse: Option<CollapseCtx<'_>>,
    ) -> Result<DedupOutcome, DedupError> {
        let config = &self.config;
        validate(config)?;
        let n = index.len();
        // The cut's neighbor spec counts *full corpus* neighbors: under
        // collapse the index holds representatives, but k/θ budgets (and
        // the Unbounded k = n − 1) are corpus-level quantities.
        let n_full = collapse.as_ref().map_or(n, |c| c.map.n_full());
        let spec = NeighborSpec::from_cut(&config.cut, n_full);
        let counters_before = fuzzydedup_metrics::snapshot();

        let t1 = Instant::now();
        let pair_cache = (config.pair_cache_capacity > 0)
            .then(|| crate::pair_cache::PairCache::new(config.pair_cache_capacity));
        let cache: Option<&dyn fuzzydedup_nnindex::PairDistanceCache> =
            pair_cache.as_ref().map(|c| c as _);
        let (nn_reln, phase1_stats) = match config.parallelism.phase1_threads {
            Some(threads) => crate::parallel::compute_nn_reln_parallel_cached(
                index, spec, config.p, threads, cache,
            ),
            None => {
                crate::phase1::compute_nn_reln_cached(index, spec, config.order, config.p, cache)
            }
        };
        // Expand the representative-space relation back to full ids; the
        // partition downstream is bit-identical to the collapse-off run
        // (DESIGN.md §7.10). Inside the Phase-1 window, like the spill.
        let (nn_reln, collapse_metrics) = match &collapse {
            Some(ctx) => {
                let t_expand = Instant::now();
                let full = ctx.map.expand_reln(&nn_reln, spec, &ctx.sibling_visible);
                let expand_ns = t_expand.elapsed().as_nanos() as u64;
                let metrics = CollapseMetrics {
                    classes: ctx.map.n_reps() as u64,
                    collapsed_records: ctx.map.collapsed_records() as u64,
                    collapse_ns: ctx.build_ns + expand_ns,
                };
                (full, metrics)
            }
            None => (nn_reln, CollapseMetrics::default()),
        };
        // Spill round-trip: write the relation to heap pages (bounded by
        // the pool) and rehydrate it for Phase 2. Part of the Phase-1
        // window — materializing `NN_Reln` into the database is Phase-1
        // work in the paper's architecture.
        let nn_reln = if config.spill_threshold > 0 && n_full >= config.spill_threshold {
            let spill_file = fuzzydedup_storage::HeapFile::create(pool.clone());
            crate::spill::spill_nn_reln(&nn_reln, &spill_file)?;
            drop(nn_reln);
            crate::spill::read_nn_reln(&spill_file)?
        } else {
            nn_reln
        };
        let phase1_duration = t1.elapsed();
        let buffer_stats = pool.stats();

        let t2 = Instant::now();
        let mut partition = if config.via_tables {
            partition_via_tables(&nn_reln, config.cut, config.agg, config.c, pool.clone())?
        } else {
            match config.parallelism.phase2_threads {
                Some(threads) => {
                    partition_entries_parallel(&nn_reln, config.cut, config.agg, config.c, threads)
                }
                None => partition_entries(&nn_reln, config.cut, config.agg, config.c),
            }
        };
        let phase2_duration = t2.elapsed();
        let t3 = Instant::now();
        if config.minimality {
            partition = enforce_minimality(&nn_reln, &partition);
        }
        let minimality_duration = t3.elapsed();

        let mut run_metrics = RunMetrics::default();
        // Pipeline-filled (non-counter) thread counts go in before the
        // delta is applied; `apply_counter_delta` preserves them.
        run_metrics.phase2.threads = match (config.via_tables, config.parallelism.phase2_threads) {
            (true, _) | (false, None) => 1,
            (false, Some(t)) => resolve_threads(t, n_full) as u64,
        };
        run_metrics.collapse = collapse_metrics;
        run_metrics.spill.peak_rss_bytes = fuzzydedup_metrics::peak_rss_bytes();
        run_metrics.apply_counter_delta(&fuzzydedup_metrics::snapshot().delta(&counters_before));
        // Storage section covers the whole run on this pool: Phase-1 index
        // lookups plus Phase-2 relational tables (when routed via tables).
        let pool_stats = pool.stats();
        run_metrics.storage = StorageMetrics {
            hits: pool_stats.hits,
            misses: pool_stats.misses,
            evictions: pool_stats.evictions,
            writebacks: pool_stats.writebacks,
            hit_ratio: pool_stats.hit_ratio(),
        };
        run_metrics.phase1 = Phase1Metrics {
            tuples: nn_reln.len() as u64,
            index_probes: phase1_stats.lookups,
            fallback_probes: phase1_stats.fallback_probes,
            bf_queue_high_water: phase1_stats.bf_queue_high_water,
            visit_stride_mean: fuzzydedup_metrics::visit_stride_mean(&phase1_stats.visit_order),
            threads: match config.parallelism.phase1_threads {
                Some(t) => resolve_threads(t, n) as u64,
                None => 1,
            },
            // Counter-backed, already applied by the delta above.
            steal_blocks: run_metrics.phase1.steal_blocks,
        };
        run_metrics.timings = StageTimings {
            build_distance_ns: 0, // filled by `run_records`, which owns the builds
            build_index_ns: 0,
            phase1_ns: phase1_duration.as_nanos() as u64,
            phase2_ns: phase2_duration.as_nanos() as u64,
            minimality_ns: minimality_duration.as_nanos() as u64,
            total_ns: (phase1_duration + phase2_duration + minimality_duration).as_nanos() as u64,
        };

        Ok(DedupOutcome {
            partition,
            nn_reln,
            phase1_stats,
            phase1_duration,
            phase2_duration,
            buffer_stats,
            metrics: run_metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixIndex;

    fn music_records() -> Vec<Vec<String>> {
        [
            ["The Doors", "LA Woman"],
            ["Doors", "LA Woman"],
            ["The Beatles", "A Little Help from My Friends"],
            ["Beatles, The", "With A Little Help From My Friend"],
            ["Shania Twain", "Im Holdin on to Love"],
            ["Twian, Shania", "I'm Holding On To Love"],
            ["Aaliyah", "Are You Ready"],
            ["AC DC", "Are You Ready"],
            ["Bob Dylan", "Are You Ready"],
            ["Creed", "Are You Ready"],
        ]
        .iter()
        .map(|r| r.iter().map(|s| s.to_string()).collect())
        .collect()
    }

    fn dedup(records: &[Vec<String>], config: &DedupConfig) -> Result<DedupOutcome, DedupError> {
        Deduplicator::new(config.clone()).run_records(records)
    }

    #[test]
    fn end_to_end_fms_finds_duplicates() {
        // Pin the page-backed postings source: this test also checks that
        // index lookups flow through the buffer pool, which the default
        // CSR mirror deliberately avoids.
        let config = DedupConfig::new(DistanceKind::FuzzyMatch)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .index_choice(IndexChoice::Inverted(InvertedIndexConfig {
                postings_source: fuzzydedup_nnindex::PostingsSource::Pages,
                ..Default::default()
            }));
        let outcome = dedup(&music_records(), &config).unwrap();
        let p = &outcome.partition;
        assert!(p.are_together(0, 1), "Doors pair: {:?}", p.groups());
        assert!(p.are_together(4, 5), "Twain pair: {:?}", p.groups());
        // The four distinct "Are You Ready" tracks must not merge.
        for a in 6..10u32 {
            for b in (a + 1)..10 {
                assert!(!p.are_together(a, b), "({a},{b}) merged: {:?}", p.groups());
            }
        }
        assert_eq!(outcome.phase1_stats.lookups, 10);
        assert!(outcome.buffer_stats.accesses() > 0, "index lookups hit the pool");
    }

    #[test]
    fn nested_loop_and_inverted_agree_here() {
        let base =
            DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Size(3)).sn_threshold(4.0);
        let inv = dedup(&music_records(), &base).unwrap();
        let nl =
            dedup(&music_records(), &base.clone().index_choice(IndexChoice::NestedLoop)).unwrap();
        assert_eq!(inv.partition, nl.partition);
    }

    #[test]
    fn via_tables_matches_in_memory() {
        let base =
            DedupConfig::new(DistanceKind::FuzzyMatch).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let mem = dedup(&music_records(), &base).unwrap();
        let tab = dedup(&music_records(), &base.clone().via_tables(true)).unwrap();
        assert_eq!(mem.partition, tab.partition);
    }

    #[test]
    fn run_over_matrix_index() {
        let m = MatrixIndex::from_points_1d(&[1.0, 2.0, 4.0, 20.0, 22.0, 30.0, 32.0]);
        let config = DedupConfig::new(DistanceKind::EditDistance) // distance unused
            .cut(CutSpec::Size(3))
            .sn_threshold(4.0);
        let outcome = Deduplicator::new(config).run(&m).unwrap();
        assert!(outcome.partition.are_together(0, 1));
        assert!(outcome.partition.are_together(3, 4));
        assert!(outcome.partition.are_together(5, 6));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let records = music_records();
        let bad_cut = DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Size(1));
        assert!(matches!(dedup(&records, &bad_cut), Err(DedupError::InvalidConfig(_))));
        let bad_p = DedupConfig::new(DistanceKind::EditDistance).growth_multiplier(0.5);
        assert!(dedup(&records, &bad_p).is_err());
        let bad_c = DedupConfig::new(DistanceKind::EditDistance).sn_threshold(0.0);
        assert!(dedup(&records, &bad_c).is_err());
        let nan_theta =
            DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Diameter(f64::NAN));
        assert!(dedup(&records, &nan_theta).is_err());
    }

    #[test]
    fn empty_relation_is_fine() {
        let config = DedupConfig::new(DistanceKind::EditDistance);
        let outcome = dedup(&[], &config).unwrap();
        assert_eq!(outcome.partition.num_groups(), 0);
    }

    #[test]
    fn minimality_flag_plumbs_through() {
        let config = DedupConfig::new(DistanceKind::EditDistance).minimality(true);
        let outcome = dedup(&music_records(), &config).unwrap();
        // Just verifies the pass runs; minimality semantics are tested in
        // `minimality`.
        assert_eq!(outcome.partition.n(), 10);
    }

    #[test]
    fn error_display() {
        let e = DedupError::InvalidConfig("k too small".into());
        assert!(e.to_string().contains("k too small"));
    }

    #[test]
    fn error_source_chain_is_walkable() {
        use std::error::Error;
        // A storage failure surfacing through the relational substrate:
        // DedupError -> RelationError -> StorageError, every link typed.
        let e: DedupError = RelationError::Storage(StorageError::PageNotFound(3)).into();
        assert!(matches!(e, DedupError::Relation(_)));
        let relation = e.source().expect("relation cause");
        assert!(relation.to_string().contains("storage error"));
        let storage = relation.source().expect("storage cause");
        assert!(storage.to_string().contains("page 3"));
        assert!(storage.source().is_none(), "chain ends at the leaf");

        // Direct storage failures wrap too.
        let e: DedupError = StorageError::BufferPoolFull.into();
        assert!(matches!(e, DedupError::Storage(_)));
        assert!(e.source().expect("storage cause").to_string().contains("pinned"));

        // InvalidConfig has no cause.
        assert!(DedupError::InvalidConfig("x".into()).source().is_none());
    }

    #[test]
    fn minhash_index_choice_finds_duplicates() {
        use fuzzydedup_nnindex::MinHashConfig;
        let config = DedupConfig::new(DistanceKind::FuzzyMatch)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .index_choice(IndexChoice::MinHash(MinHashConfig::default()));
        let outcome = dedup(&music_records(), &config).unwrap();
        assert!(outcome.partition.are_together(0, 1), "{:?}", outcome.partition.groups());
        assert!(outcome.partition.are_together(4, 5));
    }

    #[test]
    fn run_metrics_populated_end_to_end() {
        // Counter-backed sections are process-global; serialize against
        // other tests that increment or reset the same counters.
        let _serial = fuzzydedup_metrics::serial_guard();
        let config = DedupConfig::new(DistanceKind::FuzzyMatch)
            .cut(CutSpec::Size(4))
            .sn_threshold(4.0)
            .via_tables(true);
        let outcome = dedup(&music_records(), &config).unwrap();
        let m = &outcome.metrics;
        // nnindex: one combined lookup per tuple, candidates verified with
        // exact distance calls, postings scanned through the pool.
        assert_eq!(m.nnindex.lookups, 10);
        assert!(m.nnindex.candidates_generated > 0);
        assert_eq!(m.nnindex.exact_distance_calls, m.nnindex.candidates_generated);
        assert!(m.nnindex.postings_scanned > 0);
        // cand_gen: generation is counted; fms admits no q-gram bound, so
        // the pruning filters must not have fired.
        assert!(m.cand_gen.generated > 0);
        assert_eq!(m.cand_gen.pruned_by_length, 0);
        assert_eq!(m.cand_gen.pruned_by_count, 0);
        // textdist: the verification distance calls are attributed per kind.
        assert!(m.textdist.total() >= m.nnindex.exact_distance_calls);
        // storage: index lookups and Phase-2 tables hit the buffer pool.
        assert!(m.storage.hits + m.storage.misses > 0);
        assert!((0.0..=1.0).contains(&m.storage.hit_ratio));
        // phase1: probe telemetry mirrors the exact Phase1Stats; the
        // sequential drive reports one worker.
        assert_eq!(m.phase1.tuples, 10);
        assert_eq!(m.phase1.index_probes, outcome.phase1_stats.lookups);
        assert_eq!(m.phase1.threads, 1);
        // phase2 (via tables): rows were unnested, pairs materialized,
        // sort and join passes ran, and the CSPairs graph decomposed into
        // components (singletons included, so ≥ the duplicate groups).
        assert!(m.phase2.unnested_rows > 0);
        assert!(m.phase2.cs_pairs > 0);
        assert!(m.phase2.sort_passes > 0);
        assert!(m.phase2.join_passes > 0);
        assert!(m.phase2.components > 0);
        assert_eq!(m.phase2.threads, 1);
        // timings: stages measured and rolled into the total.
        assert!(m.timings.phase1_ns > 0);
        assert!(m.timings.total_ns >= m.timings.phase1_ns + m.timings.phase2_ns);
        // JSON rendering carries the numbers.
        let json = m.to_json();
        assert!(json.contains("\"lookups\": 10"), "{json}");
        assert!(json.contains("\"tuples\": 10"), "{json}");
        assert!(json.contains("\"components\""), "{json}");
    }

    #[test]
    fn parallel_phases_match_sequential() {
        let base =
            DedupConfig::new(DistanceKind::FuzzyMatch).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let seq = dedup(&music_records(), &base).unwrap();
        for threads in [1, 3, 0] {
            let par =
                dedup(&music_records(), &base.clone().parallelism(Parallelism::threads(threads)))
                    .unwrap();
            assert_eq!(seq.partition, par.partition, "threads={threads}");
            assert_eq!(seq.nn_reln, par.nn_reln);
            assert!(par.phase1_stats.visit_order.is_empty(), "no order in parallel mode");
            assert!(par.metrics.phase1.threads >= 1);
            assert!(par.metrics.phase2.threads >= 1);
            assert!(par.metrics.phase2.components > 0, "parallel phase 2 extracts components");
        }
        // Phases can also be parallelized independently.
        let p2_only =
            dedup(&music_records(), &base.clone().parallelism(Parallelism::sequential().phase2(2)))
                .unwrap();
        assert_eq!(seq.partition, p2_only.partition);
        assert!(!p2_only.phase1_stats.visit_order.is_empty(), "phase 1 stayed ordered");
    }

    #[test]
    fn pivots_do_not_change_the_partition() {
        let _serial = fuzzydedup_metrics::serial_guard();
        // Permuted-token triples keep the gram multiset intact (so the
        // count filter cannot prune them) while staying far in edit
        // distance — exactly the candidates the pivot bound rejects.
        let mut records: Vec<Vec<String>> = Vec::new();
        for g in 0..12 {
            records.push(vec![format!("alpha bravo charlie delta {g:02}"), "x".into()]);
            records.push(vec![format!("alpha bravo charlie detla {g:02}"), "x".into()]);
            records.push(vec![format!("delta charlie bravo alpha {g:02}"), "x".into()]);
        }
        let base =
            DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let plain = dedup(&records, &base).unwrap();
        assert_eq!(plain.metrics.pivot.lb_skips, 0, "knob defaults off");
        let pruned = dedup(&records, &base.clone().pivot_count(6)).unwrap();
        assert_eq!(plain.partition, pruned.partition, "pruning is lossless");
        assert_eq!(plain.nn_reln, pruned.nn_reln);
        assert!(pruned.metrics.pivot.table_build_ns > 0, "table build was timed");
        assert!(pruned.metrics.pivot.query_pivot_dists > 0, "queries hit the table");
        assert!(pruned.metrics.pivot.lb_skips > 0, "the triangle bound fired");
        // Non-metric distance: the knob degrades to a no-op but results
        // still match.
        let fms =
            DedupConfig::new(DistanceKind::FuzzyMatch).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let fms_plain = dedup(&records, &fms).unwrap();
        let fms_pivot = dedup(&records, &fms.clone().pivot_count(6)).unwrap();
        assert_eq!(fms_plain.partition, fms_pivot.partition);
        assert_eq!(fms_pivot.metrics.pivot.lb_skips, 0, "non-metric: layer inert");
        assert_eq!(fms_pivot.metrics.pivot.query_pivot_dists, 0);
    }

    #[test]
    fn collapse_does_not_change_the_partition() {
        let _serial = fuzzydedup_metrics::serial_guard();
        // Duplicate-heavy corpus: exact repeats, normalization-equal
        // variants, fuzzy variants, and unrelated rows.
        let mut records: Vec<Vec<String>> = Vec::new();
        for g in 0..8 {
            records.push(vec![format!("Golden Dragon Palace {g:02}"), "main st".into()]);
            records.push(vec![format!("Golden Dragon Palace {g:02}"), "main st".into()]);
            records.push(vec![format!("golden dragon palace {g:02}!"), "Main St.".into()]);
            records.push(vec![format!("golden drgon palace {g:02}"), "main st".into()]);
            records.push(vec![format!("completely unrelated row {g:02}"), "x".into()]);
        }
        let base =
            DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let plain = dedup(&records, &base).unwrap();
        assert_eq!(plain.metrics.collapse.classes, 0, "knob defaults off");
        for key in
            [crate::collapse::CollapseKey::RecordString, crate::collapse::CollapseKey::ExactFields]
        {
            let collapsed = dedup(&records, &base.clone().collapse(Some(key))).unwrap();
            assert_eq!(plain.partition, collapsed.partition, "{key:?}: partition moved");
            assert_eq!(plain.nn_reln, collapsed.nn_reln, "{key:?}: relation moved");
            assert!(collapsed.metrics.collapse.classes > 0, "{key:?}: pass ran");
            assert!(
                collapsed.metrics.collapse.collapsed_records > 0,
                "{key:?}: duplicates collapsed"
            );
            assert_eq!(
                collapsed.metrics.collapse.classes + collapsed.metrics.collapse.collapsed_records,
                records.len() as u64
            );
        }
        // RecordString merges normalization-equal variants too, so it
        // collapses strictly more than ExactFields on this corpus.
        let by_string = dedup(
            &records,
            &base.clone().collapse(Some(crate::collapse::CollapseKey::RecordString)),
        )
        .unwrap();
        let by_fields = dedup(
            &records,
            &base.clone().collapse(Some(crate::collapse::CollapseKey::ExactFields)),
        )
        .unwrap();
        assert!(
            by_string.metrics.collapse.collapsed_records
                > by_fields.metrics.collapse.collapsed_records
        );
        // The other index families honor the pass too.
        let nl = base.clone().index_choice(IndexChoice::NestedLoop);
        assert_eq!(
            dedup(&records, &nl).unwrap().partition,
            dedup(&records, &nl.clone().collapse(Some(crate::collapse::CollapseKey::RecordString)))
                .unwrap()
                .partition
        );
        let mh = base
            .clone()
            .index_choice(IndexChoice::MinHash(fuzzydedup_nnindex::MinHashConfig::default()));
        assert_eq!(
            dedup(&records, &mh).unwrap().partition,
            dedup(&records, &mh.clone().collapse(Some(crate::collapse::CollapseKey::RecordString)))
                .unwrap()
                .partition
        );
        // Every built-in DistanceKind is whole-record, so both keys are
        // legal for fms too (the RecordString invariance guard only trips
        // for per-field composite distances).
        let fms =
            DedupConfig::new(DistanceKind::FuzzyMatch).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let fms_plain = dedup(&records, &fms).unwrap();
        for key in
            [crate::collapse::CollapseKey::RecordString, crate::collapse::CollapseKey::ExactFields]
        {
            assert_eq!(
                fms_plain.partition,
                dedup(&records, &fms.clone().collapse(Some(key))).unwrap().partition,
                "{key:?}: fms partition moved"
            );
        }
        // A pre-built index has no records to collapse.
        let m = MatrixIndex::from_points_1d(&[1.0, 2.0, 4.0]);
        let over_index = Deduplicator::new(
            base.clone()
                .cut(CutSpec::Size(2))
                .collapse(Some(crate::collapse::CollapseKey::ExactFields)),
        )
        .run(&m);
        assert!(matches!(over_index, Err(DedupError::InvalidConfig(_))));
    }

    #[test]
    fn pair_cache_does_not_change_the_partition() {
        let _serial = fuzzydedup_metrics::serial_guard();
        let base =
            DedupConfig::new(DistanceKind::EditDistance).cut(CutSpec::Size(4)).sn_threshold(4.0);
        let plain = dedup(&music_records(), &base).unwrap();
        let cached = dedup(&music_records(), &base.clone().pair_cache_capacity(1 << 16)).unwrap();
        assert_eq!(plain.partition, cached.partition);
        // Cached run reports pair-cache activity; the knob defaults off.
        assert!(cached.metrics.pair_cache.inserts > 0, "cache saw traffic");
        assert_eq!(plain.metrics.pair_cache.inserts, 0, "default is disabled");
        // Parallel Phase 1 sharing the cache still agrees.
        let par = dedup(
            &music_records(),
            &base
                .clone()
                .pair_cache_capacity(1 << 16)
                .parallelism(Parallelism::sequential().phase1(2)),
        )
        .unwrap();
        assert_eq!(plain.partition, par.partition);
    }
}
