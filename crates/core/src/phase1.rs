//! Phase 1 — nearest-neighbor list computation (§4.1, Figure 5).
//!
//! For every tuple, fetch its neighbor list (top-K or within-θ, per the cut
//! specification) and its neighborhood growth, producing [`NnReln`]. The
//! order of lookups is pluggable ([`LookupOrder`]); the breadth-first order
//! feeds each lookup's results back into the traversal queue, giving the
//! buffer-locality win of Figure 8.

use fuzzydedup_nnindex::{drive_lookups, LookupCost, LookupOrder, NnIndex};

use crate::nnreln::{NnEntry, NnReln};
use crate::problem::CutSpec;

/// What Phase 1 fetches per tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeighborSpec {
    /// The best `k` neighbors (excluding self) — for `DE_S(K)`.
    TopK(usize),
    /// All neighbors within distance θ — for `DE_D(θ)`.
    Radius(f64),
}

impl NeighborSpec {
    /// Derive the neighbor spec a cut specification needs, for a relation
    /// of `n` tuples.
    ///
    /// * `DE_S(K)` needs the `K` best neighbors (a group of size `m ≤ K`
    ///   uses each member's `m`-NN set = self + `m − 1` neighbors);
    /// * `DE_D(θ)` needs every neighbor within θ;
    /// * the combined cut needs the radius lists (the size bound is
    ///   enforced during partitioning);
    /// * the unbounded formulation needs complete lists.
    pub fn from_cut(cut: &CutSpec, n: usize) -> Self {
        match *cut {
            CutSpec::Size(k) => NeighborSpec::TopK(k.min(n.saturating_sub(1))),
            CutSpec::Diameter(theta) | CutSpec::SizeAndDiameter(_, theta) => {
                NeighborSpec::Radius(theta)
            }
            CutSpec::Unbounded => NeighborSpec::TopK(n.saturating_sub(1)),
        }
    }
}

/// Statistics from a Phase-1 run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phase1Stats {
    /// Number of physical index probes performed: at least one per tuple,
    /// plus any fallback top-1 probes (radius fetch came back empty) and
    /// neighborhood-growth probes the index needed. Counted from the
    /// per-lookup costs the index reports, not assumed.
    pub lookups: u64,
    /// Fallback top-1 probes within [`Phase1Stats::lookups`].
    pub fallback_probes: u64,
    /// High-water mark of the breadth-first queue (0 for other orders).
    pub bf_queue_high_water: u64,
    /// The order tuples were looked up in (useful for locality analysis;
    /// one `u32` per tuple).
    pub visit_order: Vec<u32>,
}

/// Compute `NN_Reln` over an index.
///
/// `p` is the neighborhood-growth multiplier (the paper fixes `p = 2`):
/// `ng(v) = |{u : d(u, v) < p · nn(v)}|`, counting `v` itself. Tuples with
/// no neighbors (singleton relations) get `ng = 1`.
pub fn compute_nn_reln(
    index: &dyn NnIndex,
    spec: NeighborSpec,
    order: LookupOrder,
    p: f64,
) -> (NnReln, Phase1Stats) {
    compute_nn_reln_cached(index, spec, order, p, None)
}

/// [`compute_nn_reln`] with an optional symmetric pair-distance memo.
/// Every pair is verified from both sides during Phase 1, so a memo keyed
/// on unordered pairs turns the second verification into a table probe.
/// The relation produced is identical with the cache on or off (see the
/// soundness contract on `PairDistanceCache`).
pub fn compute_nn_reln_cached(
    index: &dyn NnIndex,
    spec: NeighborSpec,
    order: LookupOrder,
    p: f64,
    cache: Option<&dyn fuzzydedup_nnindex::PairDistanceCache>,
) -> (NnReln, Phase1Stats) {
    assert!(p >= 1.0, "growth multiplier p must be >= 1, got {p}");
    let n = index.len();
    let mut entries: Vec<Option<NnEntry>> = vec![None; n];
    let mut total_cost = LookupCost::default();
    let report = drive_lookups::<std::convert::Infallible>(n, order, |id| {
        // `compute_entry` handles the nn(v) fallback probe (the radius
        // fetch may be empty even when a nearest neighbor exists beyond θ)
        // and the ng(v) growth-sphere count; see `parallel::compute_entry`.
        let (entry, cost) = crate::parallel::compute_entry(index, spec, p, id, cache);
        total_cost.absorb(&cost);
        let expansion: Vec<u32> = entry.neighbors.iter().map(|nb| nb.id).collect();
        entries[id as usize] = Some(entry);
        Ok(expansion)
    })
    .unwrap_or_else(|e| match e {});
    let entries: Vec<NnEntry> = entries.into_iter().map(|e| e.expect("every id visited")).collect();
    let stats = Phase1Stats {
        lookups: total_cost.probes,
        fallback_probes: total_cost.fallback_probes,
        bf_queue_high_water: report.queue_high_water as u64,
        visit_order: report.visit_order,
    };
    (NnReln::new(entries), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixIndex;

    /// The §3 integers example: {1, 2, 4, 20, 22, 30, 32}.
    fn integers() -> MatrixIndex {
        MatrixIndex::from_points_1d(&[1.0, 2.0, 4.0, 20.0, 22.0, 30.0, 32.0])
    }

    #[test]
    fn neighbor_spec_from_cut() {
        assert_eq!(NeighborSpec::from_cut(&CutSpec::Size(5), 100), NeighborSpec::TopK(5));
        assert_eq!(NeighborSpec::from_cut(&CutSpec::Size(5), 3), NeighborSpec::TopK(2));
        assert_eq!(NeighborSpec::from_cut(&CutSpec::Diameter(0.3), 100), NeighborSpec::Radius(0.3));
        assert_eq!(
            NeighborSpec::from_cut(&CutSpec::SizeAndDiameter(4, 0.2), 10),
            NeighborSpec::Radius(0.2)
        );
        assert_eq!(NeighborSpec::from_cut(&CutSpec::Unbounded, 10), NeighborSpec::TopK(9));
    }

    #[test]
    fn topk_entries_shape() {
        let idx = integers();
        let (reln, stats) =
            compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Sequential, 2.0);
        assert_eq!(reln.len(), 7);
        // MatrixIndex uses the default combined lookup: one top-k fetch
        // plus one growth-sphere probe per tuple (every point here has a
        // nonzero nearest-neighbor distance) — two real probes each.
        assert_eq!(stats.lookups, 14);
        assert_eq!(stats.fallback_probes, 0);
        assert_eq!(stats.visit_order, (0..7).collect::<Vec<u32>>());
        for e in reln.entries() {
            assert_eq!(e.neighbors.len(), 3);
        }
        // Tuple 0 (=1): neighbors 1 (=2, d1), 2 (=4, d3), 3 (=20, d19).
        assert_eq!(reln.entry(0).neighbors[0].id, 1);
        assert_eq!(reln.entry(0).neighbors[1].id, 2);
    }

    #[test]
    fn ng_matches_hand_computation() {
        let idx = integers();
        let (reln, _) = compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Sequential, 2.0);
        // v=1 (value 2): nn = 1 (to value 1), sphere radius 2 → {1, 2}
        // (value 4 is at distance 2, excluded by strict <), plus self → 2.
        assert_eq!(reln.entry(1).ng, 2.0);
        // v=0 (value 1): nn = 1 (to 2), radius 2 → neighbors {2}, +self = 2.
        assert_eq!(reln.entry(0).ng, 2.0);
        // v=2 (value 4): nn = 2 (to 2), radius 4 → {1, 2} within (1 at d3,
        // 2 at d2), +self = 3.
        assert_eq!(reln.entry(2).ng, 3.0);
        // v=3 (value 20): nn = 2 (to 22), radius 4 → {22}, +self = 2.
        assert_eq!(reln.entry(3).ng, 2.0);
    }

    #[test]
    fn radius_entries_shape() {
        let idx = integers();
        let (reln, _) =
            compute_nn_reln(&idx, NeighborSpec::Radius(3.5), LookupOrder::Sequential, 2.0);
        // value 1: within 3.5 → {2 (d1), 4 (d3)}.
        assert_eq!(reln.entry(0).neighbors.len(), 2);
        // value 20: within 3.5 → {22}.
        assert_eq!(reln.entry(3).neighbors.len(), 1);
        // value 30: within 3.5 → {32}.
        assert_eq!(reln.entry(5).neighbors.len(), 1);
    }

    #[test]
    fn radius_smaller_than_nn_still_defines_ng() {
        // Radius 0.5 catches nothing, but nn probes still work.
        let idx = integers();
        let (reln, _) =
            compute_nn_reln(&idx, NeighborSpec::Radius(0.5), LookupOrder::Sequential, 2.0);
        for e in reln.entries() {
            assert!(e.neighbors.is_empty());
            assert!(e.ng >= 1.0);
        }
        assert_eq!(reln.entry(0).ng, 2.0, "growth sphere from the top-1 probe");
    }

    #[test]
    fn lookups_count_fallback_probes_in_radius_mode() {
        // A radius below every nearest-neighbor distance forces the
        // fallback top-1 probe on all 7 tuples: each lookup costs the
        // empty radius fetch + the fallback + the growth probe. The old
        // accounting hardcoded `lookups = n`; the real count must exceed n
        // and expose the fallbacks explicitly.
        let idx = integers();
        let n = 7u64;
        let (_, stats) =
            compute_nn_reln(&idx, NeighborSpec::Radius(0.5), LookupOrder::Sequential, 2.0);
        assert!(stats.lookups > n, "fallback probes must be counted: {}", stats.lookups);
        assert_eq!(stats.fallback_probes, n, "one fallback per empty radius fetch");
        assert_eq!(stats.lookups, 3 * n, "radius fetch + fallback + growth probe per tuple");
        // Top-k mode on the same data needs no fallbacks.
        let (_, stats) = compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Sequential, 2.0);
        assert_eq!(stats.fallback_probes, 0);
    }

    #[test]
    fn bf_stats_report_queue_high_water() {
        let idx = integers();
        let (_, bf) =
            compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::breadth_first(), 2.0);
        assert!(bf.bf_queue_high_water > 0, "BF on connected data queues neighbors");
        let (_, seq) = compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Sequential, 2.0);
        assert_eq!(seq.bf_queue_high_water, 0);
    }

    #[test]
    fn bf_order_produces_same_reln() {
        let idx = integers();
        let (seq, _) = compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Sequential, 2.0);
        let (bf, stats) =
            compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::breadth_first(), 2.0);
        let (rnd, _) = compute_nn_reln(&idx, NeighborSpec::TopK(3), LookupOrder::Random(9), 2.0);
        assert_eq!(seq, bf, "lookup order must not change the result");
        assert_eq!(seq, rnd);
        assert_eq!(stats.visit_order.len(), 7);
    }

    #[test]
    fn exact_duplicates_get_ng_one() {
        let idx = MatrixIndex::from_points_1d(&[5.0, 5.0, 9.0]);
        let (reln, _) = compute_nn_reln(&idx, NeighborSpec::TopK(2), LookupOrder::Sequential, 2.0);
        assert_eq!(reln.entry(0).ng, 1.0);
        assert_eq!(reln.entry(1).ng, 1.0);
        assert_eq!(reln.entry(0).nn_dist(), Some(0.0));
    }

    #[test]
    fn singleton_relation() {
        let idx = MatrixIndex::from_points_1d(&[3.0]);
        let (reln, _) = compute_nn_reln(&idx, NeighborSpec::TopK(5), LookupOrder::Sequential, 2.0);
        assert_eq!(reln.len(), 1);
        assert!(reln.entry(0).neighbors.is_empty());
        assert_eq!(reln.entry(0).ng, 1.0);
    }

    #[test]
    #[should_panic(expected = "p must be >= 1")]
    fn bad_p_panics() {
        let idx = integers();
        compute_nn_reln(&idx, NeighborSpec::TopK(2), LookupOrder::Sequential, 0.5);
    }
}
