//! Long-running dedup service: batched ingest, epoch-snapshot point
//! queries, graceful drain.
//!
//! The paper's pipeline is batch-only; this module turns the incremental
//! path ([`IncrementalDedup`]) into a live service. Three moving parts:
//!
//! 1. **Batched admission.** Submitters push single records into a bounded
//!    queue ([`DedupService::submit`] fails fast with
//!    [`ServiceError::QueueFull`]; [`DedupService::submit_wait`] blocks for
//!    space). A dedicated writer thread drains up to
//!    [`ServiceConfig::admit_batch_size`] records at a time and admits them
//!    as one [`IncrementalDedup::insert_batch`] call — amortizing the
//!    affected-set scan and Phase-2 recompute exactly the way the batch
//!    pipeline amortizes index construction.
//!
//! 2. **Epoch-snapshot reads.** Point queries ("find duplicates of this
//!    record *now*") must not block while the writer rebuilds after a
//!    batch. We keep **two** complete `IncrementalDedup` states in an
//!    [`epoch_pair`]: readers run against the active side; the writer
//!    applies each admitted batch to the *inactive* side, flips the epoch
//!    with one atomic store, then brings the stale side up to date. This
//!    generalizes the `pair_cache` seqlock idea from one `(u64, f64)` slot
//!    to the whole partition+NN state: where a seqlock makes readers
//!    *retry* around a writer, the left-right pair gives readers an
//!    untouched side to finish on, so a read never waits on an in-progress
//!    rebuild (see `DESIGN.md` §7.9 for the full argument).
//!    `insert_batch` is deterministic, so applying the same batch to both
//!    sides keeps them bit-identical — which is what makes drain-identity
//!    testable.
//!
//! 3. **Observability.** Global [`fuzzydedup_metrics`] counters (the
//!    `service` section of `RunMetrics`), per-service atomics surfaced via
//!    [`DedupService::stats`], a log2-bucket latency histogram for
//!    coarse-grained p50/p99, per-request [`LookupCost`] on every
//!    [`QueryAnswer`], and a streaming distinct-entity estimate
//!    ([`crate::distinct::DistinctEstimator`]) fed with each duplicate
//!    group's canonical key after every admitted batch.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use fuzzydedup_metrics::{incr, Counter, ServiceMetrics};
use fuzzydedup_nnindex::LookupCost;
use fuzzydedup_relation::Neighbor;
use fuzzydedup_textdist::Distance;

use crate::distinct::DistinctEstimator;
use crate::incremental::{IncrementalDedup, IncrementalDedupBuilder};
use crate::partition::Partition;
use crate::pipeline::DedupError;

// ---------------------------------------------------------------------------
// Epoch pair: wait-free snapshot reads over a pair of states.
// ---------------------------------------------------------------------------

struct EpochInner<T> {
    /// Monotone publication counter; `epoch & 1` selects the active slot.
    epoch: AtomicU64,
    /// In-flight reader counts, one per slot.
    readers: [AtomicU64; 2],
    slots: [UnsafeCell<T>; 2],
}

// SAFETY: access to `slots` is mediated by the epoch/reader-count protocol
// below — the writer only mutates a slot after observing its reader count
// at zero while the epoch parity keeps new readers off it, and readers only
// dereference a slot they have registered on and re-validated.
unsafe impl<T: Send + Sync> Sync for EpochInner<T> {}
unsafe impl<T: Send> Send for EpochInner<T> {}

/// Decrements the registered reader count even if the read closure panics.
struct ReadGuard<'a> {
    count: &'a AtomicU64,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Write handle of an [`epoch_pair`]. Not `Clone`: single-writer is
/// enforced by the type system, not by a runtime lock.
pub struct EpochWriter<T> {
    inner: Arc<EpochInner<T>>,
}

/// Read handle of an [`epoch_pair`]; cheap to clone and share.
pub struct EpochReader<T> {
    inner: Arc<EpochInner<T>>,
}

impl<T> Clone for EpochReader<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

/// Create a left-right epoch pair over two *identical* states.
///
/// The caller promises `left` and `right` start out equivalent; every
/// [`EpochWriter::publish_with`] call applies the same mutation to both, so
/// they stay equivalent and readers may be served from either side.
pub fn epoch_pair<T>(left: T, right: T) -> (EpochWriter<T>, EpochReader<T>) {
    let inner = Arc::new(EpochInner {
        epoch: AtomicU64::new(0),
        readers: [AtomicU64::new(0), AtomicU64::new(0)],
        slots: [UnsafeCell::new(left), UnsafeCell::new(right)],
    });
    (EpochWriter { inner: Arc::clone(&inner) }, EpochReader { inner })
}

impl<T> EpochReader<T> {
    /// Run `f` against the current snapshot and its epoch.
    ///
    /// Wait-free with respect to the writer's rebuild: the writer mutates
    /// only the *inactive* slot while this side stays published, so the
    /// closure runs to completion on a consistent state no matter how long
    /// the concurrent `insert_batch` takes. A reader retries only across
    /// the writer's epoch *flip* (one atomic store per admitted batch),
    /// never across the rebuild itself.
    pub fn read<R>(&self, f: impl FnOnce(u64, &T) -> R) -> R {
        loop {
            let e = self.inner.epoch.load(Ordering::SeqCst);
            let i = (e & 1) as usize;
            self.inner.readers[i].fetch_add(1, Ordering::SeqCst);
            if self.inner.epoch.load(Ordering::SeqCst) != e {
                // Writer flipped between our epoch load and registration;
                // it may already be mutating slot `i`. Back off and re-read
                // the new active side.
                self.inner.readers[i].fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            // Registered on the active slot and re-validated: the writer
            // cannot start mutating it before observing our count at zero.
            let guard = ReadGuard { count: &self.inner.readers[i] };
            // SAFETY: protocol above; the guard keeps the slot pinned (and
            // unpins it even if `f` panics).
            let out = f(e, unsafe { &*self.inner.slots[i].get() });
            drop(guard);
            return out;
        }
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }
}

impl<T> EpochWriter<T> {
    /// Apply a mutation to both sides and publish it; returns the new
    /// epoch. `apply` is called exactly twice — once per side — and must be
    /// deterministic for the sides to stay equivalent.
    ///
    /// Readers are never blocked: the first application runs on the
    /// inactive slot while reads proceed on the active one; the flip is a
    /// single atomic store. The *writer* briefly waits for stragglers (a
    /// reader mid-closure on a slot it is about to touch) — backpressure
    /// lands on the ingest path, where it belongs.
    pub fn publish_with(&mut self, mut apply: impl FnMut(&mut T)) -> u64 {
        let e = self.inner.epoch.load(Ordering::SeqCst);
        let inactive = ((e + 1) & 1) as usize;
        // Stragglers from epoch e-1 may still be inside the inactive slot
        // (they will re-validate, fail, and unregister).
        while self.inner.readers[inactive].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: epoch parity routes all new readers to the other slot,
        // and the spin above drained the old ones.
        apply(unsafe { &mut *self.inner.slots[inactive].get() });
        self.inner.epoch.store(e + 1, Ordering::SeqCst);
        // Bring the previously active side up to date for the next cycle;
        // wait out readers still pinned to it.
        let old = (e & 1) as usize;
        while self.inner.readers[old].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: no reader is registered on `old` and new readers go to
        // the published side.
        apply(unsafe { &mut *self.inner.slots[old].get() });
        e + 1
    }
}

// ---------------------------------------------------------------------------
// Service configuration and errors.
// ---------------------------------------------------------------------------

/// Tuning knobs for [`DedupService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Maximum records admitted per `insert_batch` call (default 64).
    /// Larger batches amortize the affected-set scan and Phase-2 recompute
    /// but lengthen the freshness lag between submission and visibility.
    pub admit_batch_size: usize,
    /// Bounded ingest-queue capacity (default 1024). When full,
    /// [`DedupService::submit`] fails fast and
    /// [`DedupService::submit_wait`] blocks.
    pub queue_capacity: usize,
    /// Sample cap for the streaming distinct-entity estimate
    /// (default 4096; exact until that many distinct groups are seen).
    pub distinct_sample_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { admit_batch_size: 64, queue_capacity: 1024, distinct_sample_cap: 4096 }
    }
}

impl ServiceConfig {
    /// The defaults; fields are adjusted by record update syntax being
    /// unavailable (`#[non_exhaustive]`), so use the setters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set [`Self::admit_batch_size`].
    pub fn admit_batch_size(mut self, n: usize) -> Self {
        self.admit_batch_size = n;
        self
    }

    /// Set [`Self::queue_capacity`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Set [`Self::distinct_sample_cap`].
    pub fn distinct_sample_cap(mut self, n: usize) -> Self {
        self.distinct_sample_cap = n;
        self
    }

    fn validate(&self) -> Result<(), ServiceError> {
        if self.admit_batch_size == 0 {
            return Err(ServiceError::InvalidConfig("admit_batch_size must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig("queue_capacity must be >= 1".into()));
        }
        Ok(())
    }
}

/// Errors surfaced by [`DedupService`], following the [`DedupError`]
/// conventions (`#[non_exhaustive]`, `Display` + `source()` chains).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded ingest queue is at capacity; retry, or use
    /// [`DedupService::submit_wait`].
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts records.
    ShuttingDown,
    /// Invalid [`ServiceConfig`].
    InvalidConfig(String),
    /// The underlying incremental state failed to build.
    Build(DedupError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "ingest queue full (capacity {capacity})")
            }
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::InvalidConfig(why) => write!(f, "invalid service configuration: {why}"),
            Self::Build(_) => write!(f, "failed to build the incremental dedup state"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Build(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<DedupError> for ServiceError {
    fn from(e: DedupError) -> Self {
        Self::Build(e)
    }
}

// ---------------------------------------------------------------------------
// Latency histogram (log2 buckets, lock-free).
// ---------------------------------------------------------------------------

/// 64 power-of-two buckets over nanoseconds. Coarse by construction —
/// quantiles are accurate to a factor of 2, which is what a live `stats()`
/// endpoint needs. The replay bench computes *exact* quantiles from its own
/// recorded timings instead.
struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl LatencyHistogram {
    fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn record(&self, ns: u64) {
        let b = (64 - ns.leading_zeros()).min(63) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding the `q`-quantile, 0 if empty.
    fn quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        u64::MAX
    }
}

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

struct QueueState {
    pending: VecDeque<Vec<String>>,
    shutdown: bool,
    /// The writer is applying an admitted batch (pending may be empty while
    /// records are still becoming visible — drain must wait this out).
    in_flight: bool,
    depth_high_water: usize,
}

struct ServiceShared {
    queue: Mutex<QueueState>,
    /// Signaled when records arrive or shutdown begins (writer waits).
    work: Condvar,
    /// Signaled when queue space frees up (blocking submitters wait).
    space: Condvar,
    /// Signaled when the queue is empty *and* nothing is in flight.
    idle: Condvar,
    batches_admitted: AtomicU64,
    records_admitted: AtomicU64,
    epochs_published: AtomicU64,
    point_queries: AtomicU64,
    queue_rejections: AtomicU64,
    latency: LatencyHistogram,
    distinct: Mutex<DistinctEstimator>,
}

/// One point-query response; see [`DedupService::query`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct QueryAnswer {
    /// Epoch of the snapshot that answered (monotone across the service).
    pub epoch: u64,
    /// Records in the snapshot corpus at answer time.
    pub corpus_len: usize,
    /// The query's NN list against the snapshot, nearest first. A record
    /// already in the corpus sees itself at distance 0.
    pub neighbors: Vec<Neighbor>,
    /// Neighborhood-growth estimate for the query point.
    pub growth: f64,
    /// Index work paid for this request (candidates, filter prunes,
    /// distance calls).
    pub cost: LookupCost,
}

/// Point-in-time service statistics; see [`DedupService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Records visible in the published snapshot.
    pub corpus_len: usize,
    /// Duplicate groups in the published snapshot.
    pub num_groups: usize,
    /// Epoch of the published snapshot.
    pub epoch: u64,
    /// `insert_batch` calls admitted so far.
    pub batches_admitted: u64,
    /// Records admitted so far.
    pub records_admitted: u64,
    /// Snapshot epochs published so far.
    pub epochs_published: u64,
    /// Point queries served so far.
    pub point_queries: u64,
    /// Fast-fail submissions rejected with [`ServiceError::QueueFull`].
    pub queue_rejections: u64,
    /// Records currently waiting for admission.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub queue_depth_high_water: usize,
    /// Median point-query latency (log2-bucket upper bound; 0 if none).
    pub query_p50_ns: u64,
    /// 99th-percentile point-query latency (log2-bucket upper bound).
    pub query_p99_ns: u64,
    /// Streaming estimate of distinct entities carried by the stream.
    pub distinct_groups_estimate: u64,
    /// Whether that estimate is still exact (sample under its cap).
    pub distinct_is_exact: bool,
}

/// A long-running dedup service over the incremental path; see module docs.
///
/// Dropping the handle shuts the service down gracefully: the writer
/// drains every already-submitted record, then exits.
pub struct DedupService<D: Distance + Clone + 'static> {
    shared: Arc<ServiceShared>,
    reader: EpochReader<IncrementalDedup<D>>,
    writer: Option<JoinHandle<()>>,
    config: ServiceConfig,
}

impl<D: Distance + Clone + 'static> DedupService<D> {
    /// Start a service over an empty incremental state described by
    /// `builder`. The builder is built twice — once per epoch-pair side —
    /// which is why `D: Clone`.
    pub fn spawn(
        builder: IncrementalDedupBuilder<D>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        config.validate()?;
        let left = builder.clone().build()?;
        let right = builder.build()?;
        let (writer_handle, reader) = epoch_pair(left, right);
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
                in_flight: false,
                depth_high_water: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            batches_admitted: AtomicU64::new(0),
            records_admitted: AtomicU64::new(0),
            epochs_published: AtomicU64::new(0),
            point_queries: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            distinct: Mutex::new(DistinctEstimator::new(config.distinct_sample_cap)),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            let admit = config.admit_batch_size;
            std::thread::Builder::new()
                .name("dedup-service-writer".into())
                .spawn(move || writer_loop(writer_handle, shared, admit))
                .expect("spawn service writer thread")
        };
        Ok(Self { shared, reader, writer: Some(writer), config })
    }

    /// Submit one record for admission; fails fast when the queue is full.
    pub fn submit(&self, record: Vec<String>) -> Result<(), ServiceError> {
        let mut q = self.shared.queue.lock().unwrap();
        if q.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if q.pending.len() >= self.config.queue_capacity {
            self.shared.queue_rejections.fetch_add(1, Ordering::Relaxed);
            incr(Counter::ServiceQueueRejections, 1);
            return Err(ServiceError::QueueFull { capacity: self.config.queue_capacity });
        }
        q.pending.push_back(record);
        q.depth_high_water = q.depth_high_water.max(q.pending.len());
        drop(q);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Submit one record, blocking for queue space if necessary (the
    /// "await" flavor of backpressure).
    pub fn submit_wait(&self, record: Vec<String>) -> Result<(), ServiceError> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if q.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if q.pending.len() < self.config.queue_capacity {
                q.pending.push_back(record);
                q.depth_high_water = q.depth_high_water.max(q.pending.len());
                drop(q);
                self.shared.work.notify_one();
                return Ok(());
            }
            q = self.shared.space.wait(q).unwrap();
        }
    }

    /// Find duplicates of `fields` against the current snapshot — the
    /// wait-free read path (see [`EpochReader::read`]).
    pub fn query(&self, fields: &[&str]) -> QueryAnswer {
        let started = std::time::Instant::now();
        let answer = self.reader.read(|epoch, state| {
            let (neighbors, growth, cost) = state.query_record(fields);
            QueryAnswer { epoch, corpus_len: state.len(), neighbors, growth, cost }
        });
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.shared.latency.record(ns);
        self.shared.point_queries.fetch_add(1, Ordering::Relaxed);
        incr(Counter::ServicePointQueries, 1);
        answer
    }

    /// Run `f` against the published snapshot (epoch + state). For
    /// consumers that need more than one coherent answer — e.g. the drain
    /// identity check reads the whole partition in one snapshot.
    pub fn with_snapshot<R>(&self, f: impl FnOnce(u64, &IncrementalDedup<D>) -> R) -> R {
        self.reader.read(f)
    }

    /// Clone the published partition along with its epoch.
    pub fn snapshot_partition(&self) -> (u64, Partition) {
        self.reader.read(|epoch, state| (epoch, state.partition().clone()))
    }

    /// An additional read handle for other threads (queries only).
    pub fn reader(&self) -> EpochReader<IncrementalDedup<D>> {
        self.reader.clone()
    }

    /// Block until every record submitted so far is visible to queries.
    pub fn drain(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while !q.pending.is_empty() || q.in_flight {
            q = self.shared.idle.wait(q).unwrap();
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ServiceStats {
        let (epoch, corpus_len, num_groups) =
            self.reader.read(|epoch, state| (epoch, state.len(), state.partition().num_groups()));
        let (queue_depth, depth_high_water) = {
            let q = self.shared.queue.lock().unwrap();
            (q.pending.len(), q.depth_high_water)
        };
        let (distinct_groups_estimate, distinct_is_exact) = {
            let d = self.shared.distinct.lock().unwrap();
            (d.estimate(), d.is_exact())
        };
        ServiceStats {
            corpus_len,
            num_groups,
            epoch,
            batches_admitted: self.shared.batches_admitted.load(Ordering::Relaxed),
            records_admitted: self.shared.records_admitted.load(Ordering::Relaxed),
            epochs_published: self.shared.epochs_published.load(Ordering::Relaxed),
            point_queries: self.shared.point_queries.load(Ordering::Relaxed),
            queue_rejections: self.shared.queue_rejections.load(Ordering::Relaxed),
            queue_depth,
            queue_depth_high_water: depth_high_water,
            query_p50_ns: self.shared.latency.quantile_ns(0.50),
            query_p99_ns: self.shared.latency.quantile_ns(0.99),
            distinct_groups_estimate,
            distinct_is_exact,
        }
    }

    /// The service-local view of the `service` RunMetrics section,
    /// including the service-filled fields the global counters cannot
    /// carry (high-water depth, latency quantiles).
    pub fn service_metrics(&self) -> ServiceMetrics {
        let s = self.stats();
        ServiceMetrics {
            batches_admitted: s.batches_admitted,
            records_admitted: s.records_admitted,
            epochs_published: s.epochs_published,
            point_queries: s.point_queries,
            queue_rejections: s.queue_rejections,
            queue_depth_high_water: s.queue_depth_high_water as u64,
            query_p50_ns: s.query_p50_ns,
            query_p99_ns: s.query_p99_ns,
        }
    }

    /// Stop accepting records, drain everything already submitted, and
    /// join the writer. Idempotent; queries keep working afterwards
    /// against the final snapshot.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

impl<D: Distance + Clone + 'static> Drop for DedupService<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn writer_loop<D: Distance + Clone + 'static>(
    mut writer: EpochWriter<IncrementalDedup<D>>,
    shared: Arc<ServiceShared>,
    admit_batch_size: usize,
) {
    loop {
        let batch: Vec<Vec<String>> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if !q.pending.is_empty() {
                    let take = admit_batch_size.min(q.pending.len());
                    let batch: Vec<Vec<String>> = q.pending.drain(..take).collect();
                    q.in_flight = true;
                    break batch;
                }
                if q.shutdown {
                    // Queue fully drained: safe to exit.
                    return;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        shared.space.notify_all();

        let n_records = batch.len() as u64;
        // Canonical keys of the duplicate groups after this batch, captured
        // from the first (published-next) application.
        let mut group_keys: Option<Vec<u64>> = None;
        let epoch = writer.publish_with(|state| {
            state.insert_batch(batch.iter().cloned());
            if group_keys.is_none() {
                group_keys = Some(
                    state
                        .partition()
                        .groups()
                        .iter()
                        .map(|g| u64::from(*g.iter().min().expect("non-empty group")))
                        .collect(),
                );
            }
        });

        shared.batches_admitted.fetch_add(1, Ordering::Relaxed);
        shared.records_admitted.fetch_add(n_records, Ordering::Relaxed);
        shared.epochs_published.store(epoch, Ordering::Relaxed);
        incr(Counter::ServiceBatchesAdmitted, 1);
        incr(Counter::ServiceRecordsAdmitted, n_records);
        incr(Counter::ServiceEpochsPublished, 1);
        if let Some(keys) = group_keys {
            let mut distinct = shared.distinct.lock().unwrap();
            for key in keys {
                distinct.observe(key);
            }
        }

        let mut q = shared.queue.lock().unwrap();
        q.in_flight = false;
        if q.pending.is_empty() {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::Aggregation;
    use crate::pipeline::{DedupConfig, Deduplicator};
    use crate::problem::CutSpec;
    use fuzzydedup_textdist::{DistanceKind, EditDistance};
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    fn builder() -> IncrementalDedupBuilder<EditDistance> {
        IncrementalDedup::builder(EditDistance).cut(CutSpec::Size(4)).sn_threshold(4.0)
    }

    fn corpus(n: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                let v = if i % 3 == 0 {
                    format!("service entity {:03} kappa", i / 3)
                } else {
                    format!("service entity {:03} kappaa", i / 3)
                };
                vec![v]
            })
            .collect()
    }

    #[test]
    fn epoch_pair_reads_latest_published_value() {
        let (mut w, r) = epoch_pair(0u64, 0u64);
        assert_eq!(r.read(|e, v| (e, *v)), (0, 0));
        let e = w.publish_with(|v| *v += 7);
        assert_eq!(e, 1);
        assert_eq!(r.read(|e, v| (e, *v)), (1, 7));
        w.publish_with(|v| *v += 1);
        assert_eq!(r.read(|_, v| *v), 8);
    }

    #[test]
    fn epoch_pair_reader_is_wait_free_during_rebuild() {
        // Block the writer mid-apply (first application, inactive slot) and
        // prove a reader still completes against the published side.
        let (mut w, r) = epoch_pair(1u64, 1u64);
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let writer = {
            let (entered, release) = (Arc::clone(&entered), Arc::clone(&release));
            std::thread::spawn(move || {
                let mut first = true;
                w.publish_with(|v| {
                    if first {
                        first = false;
                        entered.wait(); // writer is now inside the rebuild
                        release.wait(); // ... and stays there until released
                    }
                    *v = 2;
                });
            })
        };
        entered.wait();
        // The writer is parked inside `apply` on the inactive slot. Reads
        // must still answer from the published snapshot without blocking.
        for _ in 0..100 {
            assert_eq!(r.read(|e, v| (e, *v)), (0, 1));
        }
        release.wait();
        writer.join().unwrap();
        assert_eq!(r.read(|e, v| (e, *v)), (1, 2));
    }

    #[test]
    fn epoch_pair_read_survives_panicking_closure() {
        let (mut w, r) = epoch_pair(5u64, 5u64);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.read(|_, _| panic!("reader closure panic"));
        }));
        assert!(panicked.is_err());
        // The reader count was released by the guard: the writer neither
        // deadlocks nor observes a phantom reader.
        w.publish_with(|v| *v += 1);
        assert_eq!(r.read(|_, v| *v), 6);
    }

    #[test]
    fn service_error_display_and_source_chain() {
        let full = ServiceError::QueueFull { capacity: 8 };
        assert_eq!(full.to_string(), "ingest queue full (capacity 8)");
        assert!(full.source().is_none());

        assert_eq!(ServiceError::ShuttingDown.to_string(), "service is shutting down");

        let build: ServiceError = DedupError::InvalidConfig("bad cut".into()).into();
        assert_eq!(build.to_string(), "failed to build the incremental dedup state");
        let source = build.source().expect("Build carries its cause");
        assert_eq!(source.to_string(), "invalid configuration: bad cut");

        let bad = ServiceError::InvalidConfig("admit_batch_size must be >= 1".into());
        assert!(bad.to_string().contains("invalid service configuration"));
    }

    #[test]
    fn spawn_rejects_invalid_configs() {
        let zero_batch = ServiceConfig::new().admit_batch_size(0);
        assert!(matches!(
            DedupService::spawn(builder(), zero_batch),
            Err(ServiceError::InvalidConfig(_))
        ));
        let zero_queue = ServiceConfig::new().queue_capacity(0);
        assert!(matches!(
            DedupService::spawn(builder(), zero_queue),
            Err(ServiceError::InvalidConfig(_))
        ));
        // Builder validation errors surface through the Build variant.
        let bad_builder = builder().cut(CutSpec::Size(1));
        assert!(matches!(
            DedupService::spawn(bad_builder, ServiceConfig::new()),
            Err(ServiceError::Build(DedupError::InvalidConfig(_)))
        ));
    }

    #[test]
    fn drain_identity_matches_batch_pipeline() {
        let records = corpus(90);
        let mut service =
            DedupService::spawn(builder(), ServiceConfig::new().admit_batch_size(16)).unwrap();
        for r in records.clone() {
            service.submit_wait(r).unwrap();
        }
        service.drain();
        // Identical config on the batch pipeline: EditDistance, DE_S(4),
        // Max, c=4 — the static/dynamic index defaults already agree.
        let batch = Deduplicator::new(
            DedupConfig::new(DistanceKind::EditDistance)
                .cut(CutSpec::Size(4))
                .aggregation(Aggregation::Max)
                .sn_threshold(4.0),
        )
        .run_records(&records)
        .unwrap();
        let (_, live) = service.snapshot_partition();
        assert_eq!(live, batch.partition, "service-after-drain must equal from-scratch batch");
        // Point queries agree with membership: an indexed record's own text
        // hits at distance 0 (possibly via an identical twin record).
        for record in records.iter().step_by(13) {
            let fields: Vec<&str> = record.iter().map(String::as_str).collect();
            let answer = service.query(&fields);
            let hit = answer.neighbors[0];
            assert_eq!(hit.dist, 0.0);
            assert_eq!(&records[hit.id as usize], record);
        }
        let stats = service.stats();
        assert_eq!(stats.records_admitted, records.len() as u64);
        assert_eq!(stats.corpus_len, records.len());
        assert!(stats.batches_admitted >= (records.len() / 16) as u64);
        assert_eq!(stats.epochs_published, stats.epoch);
        assert!(stats.point_queries >= 7);
        assert!(stats.query_p50_ns > 0);
        assert!(stats.distinct_groups_estimate > 0);
        service.shutdown();
        // Queries keep working after shutdown; ingest does not.
        let fields: Vec<&str> = records[0].iter().map(String::as_str).collect();
        assert_eq!(service.query(&fields).neighbors[0].id, 0);
        assert!(matches!(service.submit(vec!["late".into()]), Err(ServiceError::ShuttingDown)));
    }

    #[test]
    fn drain_identity_holds_with_collapse() {
        // The collapse pre-pass on the ingest path: duplicate-heavy
        // streams bump representative multiplicities instead of
        // re-indexing, and the service surfaces (partition, corpus_len,
        // point queries) still match the collapse-off batch pipeline.
        let records = corpus(90); // 30 entities × (1 kappa + 2 kappaa): exact repeats
        let mut service = DedupService::spawn(
            builder().collapse(Some(crate::collapse::CollapseKey::RecordString)),
            ServiceConfig::new().admit_batch_size(16),
        )
        .unwrap();
        for r in records.clone() {
            service.submit_wait(r).unwrap();
        }
        service.drain();
        let batch = Deduplicator::new(
            DedupConfig::new(DistanceKind::EditDistance)
                .cut(CutSpec::Size(4))
                .aggregation(Aggregation::Max)
                .sn_threshold(4.0),
        )
        .run_records(&records)
        .unwrap();
        let (_, live) = service.snapshot_partition();
        assert_eq!(live, batch.partition, "collapsed service must equal collapse-off batch");
        let (live_reln, live_len) =
            service.with_snapshot(|_, state| (state.nn_reln(), state.len()));
        assert_eq!(live_reln, batch.nn_reln, "full-corpus relation must match too");
        assert_eq!(live_len, records.len());
        // Point queries answer in full-corpus ids, duplicates included.
        for record in records.iter().step_by(13) {
            let fields: Vec<&str> = record.iter().map(String::as_str).collect();
            let answer = service.query(&fields);
            assert_eq!(answer.corpus_len, records.len());
            let hit = answer.neighbors[0];
            assert_eq!(hit.dist, 0.0);
            assert_eq!(&records[hit.id as usize], record);
        }
        let stats = service.stats();
        assert_eq!(stats.records_admitted, records.len() as u64);
        assert_eq!(stats.corpus_len, records.len());
        service.shutdown();
    }

    #[test]
    fn queries_never_observe_torn_state_during_ingest() {
        let records = corpus(120);
        let mut service = DedupService::spawn(
            builder(),
            ServiceConfig::new().admit_batch_size(8).queue_capacity(32),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let probes: Vec<Vec<String>> = records.iter().step_by(11).cloned().collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let reader = service.reader();
                let stop = Arc::clone(&stop);
                let probes = probes.clone();
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for probe in &probes {
                            let fields: Vec<&str> = probe.iter().map(String::as_str).collect();
                            let (epoch, len, covered, neighbors) = reader.read(|e, state| {
                                let covered: usize =
                                    state.partition().groups().iter().map(Vec::len).sum();
                                let (n, _, _) = state.query_record(&fields);
                                (e, state.len(), covered, n)
                            });
                            // Torn-state checks, all within ONE snapshot:
                            // the partition covers exactly the corpus, every
                            // neighbor id is in range, epochs are monotone.
                            assert_eq!(covered, len, "partition must cover the corpus exactly");
                            assert!(neighbors.iter().all(|nb| (nb.id as usize) < len));
                            assert!(epoch >= last_epoch, "epochs must be monotone");
                            last_epoch = epoch;
                            reads += 1;
                        }
                    }
                    reads
                })
            })
            .collect();
        for r in records.clone() {
            service.submit_wait(r).unwrap();
        }
        service.drain();
        stop.store(true, Ordering::Relaxed);
        for handle in readers {
            let reads = handle.join().expect("no reader assertion may fire");
            assert!(reads > 0);
        }
        // And after the concurrent episode, drain-identity still holds.
        let batch = Deduplicator::new(
            DedupConfig::new(DistanceKind::EditDistance)
                .cut(CutSpec::Size(4))
                .aggregation(Aggregation::Max)
                .sn_threshold(4.0),
        )
        .run_records(&records)
        .unwrap();
        let (epoch, live) = service.snapshot_partition();
        assert_eq!(live, batch.partition);
        assert!(epoch > 0);
        service.shutdown();
    }

    #[test]
    fn submit_fails_fast_when_queue_full_and_submit_wait_recovers() {
        // A tiny queue against a slow admission cadence: fill it, observe
        // QueueFull, then watch submit_wait push through as space frees.
        let mut service = DedupService::spawn(
            builder(),
            ServiceConfig::new().admit_batch_size(1).queue_capacity(2),
        )
        .unwrap();
        let mut rejected = 0u64;
        for i in 0..200 {
            match service.submit(vec![format!("burst record {i:03}")]) {
                Ok(()) => {}
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                    // The blocking flavor must eventually succeed.
                    service.submit_wait(vec![format!("burst record {i:03}")]).unwrap();
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        service.drain();
        let stats = service.stats();
        assert_eq!(stats.records_admitted, 200);
        assert_eq!(stats.queue_rejections, rejected);
        assert!(stats.queue_depth_high_water >= 1);
        service.shutdown();
    }

    #[test]
    fn distinct_estimate_is_exact_on_small_corpora() {
        let records = corpus(60); // 20 entities, 3 records each
        let mut service =
            DedupService::spawn(builder(), ServiceConfig::new().admit_batch_size(7)).unwrap();
        for r in records {
            service.submit_wait(r).unwrap();
        }
        service.drain();
        let stats = service.stats();
        assert!(stats.distinct_is_exact);
        // Every group key ever observed: intermediate batches can expose
        // singleton groups that later merge, so the estimate is at least
        // the final group count.
        assert!(stats.distinct_groups_estimate >= stats.num_groups as u64);
        service.shutdown();
    }
}
