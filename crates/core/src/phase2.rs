//! Phase 2 — partitioning the relation into compact SN groups (§4.2).
//!
//! Three equivalent implementations are provided:
//!
//! * [`partition_entries`] — the direct in-memory form: process tuples in
//!   increasing id order; for each unassigned tuple `v`, find the largest
//!   non-trivial compact SN set anchored at `v` (i.e. whose minimum id is
//!   `v`) satisfying the cut specification, emit it, and mark its members.
//!
//! * [`partition_entries_parallel`] — the component-parallel form: every
//!   emitted group is a clique in the mutual-neighbor (CS-pair) graph, so
//!   the greedy partitioner's decisions decompose over that graph's
//!   connected components. Components are extracted with a union-find,
//!   cost-balanced over scoped worker threads, processed independently
//!   (each worker runs the identical greedy over its components' tuples in
//!   ascending id order), and the collected groups are canonicalized by
//!   [`Partition::from_groups`] — the output is bit-for-bit identical to
//!   [`partition_entries`] for every cut/aggregation (`DESIGN.md` §7.4).
//!
//! * [`partition_via_tables`] — the paper's SQL-shaped form running on the
//!   `relation` substrate: unnest the NN lists, equi-join the unnested
//!   relation with itself to find *mutual* neighbor pairs (`ID < ID2`, each
//!   in the other's list), compute the `[CS2..CSK]` prefix-equality flags
//!   into a `CSPairs` table, sort it by `ID` (the CS-group query), extract
//!   the connected components of the `CSPairs` graph with the same
//!   union-find as the parallel path, and process each component under its
//!   minimum id. The paper's observation makes this sound: "each compact
//!   SN set G ... is grouped under v₁ in the result of CS-group query",
//!   because set equality is transitive.
//!
//! `tests` (and the `phase2_equivalence` property suite) assert all three
//! paths produce identical partitions.

use std::collections::HashMap;
use std::sync::Arc;

use fuzzydedup_metrics::{incr, Counter};
use fuzzydedup_relation::{
    external_sort, group_sorted, hash_join, Column, ColumnType, Neighbor, RelationResult, Schema,
    SortConfig, Table, Tuple, Value,
};
use fuzzydedup_storage::BufferPool;

use crate::components::{balance_components, UnionFind};
use crate::criteria::{diameter, is_compact_set, sparse_neighborhood_ok, Aggregation};
use crate::nnreln::{NnEntry, NnReln};
use crate::partition::Partition;
use crate::problem::CutSpec;

/// Partition a relation given its materialized `NN_Reln` (in-memory path).
pub fn partition_entries(reln: &NnReln, cut: CutSpec, agg: Aggregation, c: f64) -> Partition {
    partition_entries_ablation(reln, cut, agg, c, true, true)
}

/// The greedy group search anchored at `v`: the largest non-trivial
/// prefix set of `v` whose minimum id is `v`, with no member already
/// assigned, passing the (optionally ablated) CS and SN criteria and the
/// diameter cut. Shared verbatim by the sequential, component-parallel and
/// relational drivers so they cannot drift.
///
/// `prune` optionally supplies the materialized CS-pair back ranks
/// ([`CsPairGraph`]); candidate sizes the graph proves hopeless are then
/// skipped without allocating a prefix set. The prune is a *necessary*
/// condition of the min-id and CS checks below, so passing `Some` never
/// changes the result — it requires `use_cs` (asserted in debug builds),
/// which every caller that prunes satisfies.
#[allow(clippy::too_many_arguments)]
fn greedy_group_at(
    reln: &NnReln,
    v: u32,
    max_size: usize,
    theta: Option<f64>,
    agg: Aggregation,
    c: f64,
    use_cs: bool,
    use_sn: bool,
    assigned: &[bool],
    prune: Option<&CsPairGraph>,
) -> Option<Vec<u32>> {
    debug_assert!(prune.is_none() || use_cs, "CS-pair pruning presumes the CS criterion");
    let entry = reln.entry(v);
    let upper = max_size.min(entry.neighbors.len() + 1);
    if let Some(graph) = prune {
        // Anchor bits are only ever set for sizes ≤ upper (the prefix is
        // that long) and < 64, so an all-zero mask rules out the whole
        // tuple in O(1) — unless sizes ≥ 64 are in play, which the mask
        // cannot speak for.
        if upper < 64 && graph.anchor[v as usize] == 0 {
            return None;
        }
    }
    for m in (2..=upper).rev() {
        if let Some(graph) = prune {
            if !graph.can_anchor(entry, m) {
                continue; // the min-id or CS check below is doomed
            }
        }
        let Some(s) = entry.prefix_set(m) else { continue };
        // v must be the minimum id of the group ("grouped under the
        // tuple with the minimum ID"); larger-anchored sets are found
        // when their own minimum is processed.
        if s[0] != v {
            continue;
        }
        if s.iter().any(|&u| assigned[u as usize]) {
            continue;
        }
        if use_cs && !is_compact_set(reln, &s) {
            continue;
        }
        if use_sn && !sparse_neighborhood_ok(reln, &s, agg, c) {
            continue;
        }
        if let Some(t) = theta {
            match diameter(reln, &s) {
                Some(d) if d <= t => {}
                _ => continue,
            }
        }
        return Some(s);
    }
    None
}

/// Ablation variant of [`partition_entries`]: either criterion can be
/// switched off (used by the `exp_ablation` driver to quantify what CS and
/// SN each contribute). With `use_cs = false`, any prefix set is accepted
/// as a candidate group; with `use_sn = false`, the growth check is
/// skipped. Both `true` is the real algorithm.
pub fn partition_entries_ablation(
    reln: &NnReln,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    use_cs: bool,
    use_sn: bool,
) -> Partition {
    let n = reln.len();
    let max_size = cut.max_group_size(n);
    let theta = cut.diameter_bound();
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<u32>> = Vec::new();

    for v in 0..n as u32 {
        if assigned[v as usize] {
            continue;
        }
        if let Some(s) =
            greedy_group_at(reln, v, max_size, theta, agg, c, use_cs, use_sn, &assigned, None)
        {
            for &u in &s {
                assigned[u as usize] = true;
            }
            groups.push(s);
        }
    }
    Partition::from_groups(n, groups)
}

/// The materialized CS-pair structure backing the component-parallel path —
/// the in-memory analogue of the relational `CSPairs` table of §5. Per
/// tuple `v` it records, for each of `v`'s first `max_size − 1` neighbors
/// `u` (distance order), the *back rank* of `v` inside `u`'s own prefix:
/// exactly the information the `CS2..CSK` flags carry, collapsed into one
/// integer per directed pair. Stored as flat CSR arrays (one allocation
/// each) so extraction stays cheap relative to the greedy scan it feeds.
struct CsPairGraph {
    /// CSR offsets (`n + 1` entries): tuple `v`'s prefix occupies
    /// `off[v]..off[v + 1]` in `back`.
    off: Vec<u32>,
    /// `back[off[v] + j]`: 0-based rank of `v` in the NN list of `v`'s
    /// `j`-th nearest neighbor, or `u32::MAX` when that neighbor does not
    /// list `v` in its prefix (the pair is not mutual).
    back: Vec<u32>,
    /// Prefix neighbor ids in distance order, CSR-indexed by `off` (a flat
    /// copy of the first `max_size − 1` entries of each NN list).
    pref: Vec<u32>,
    /// Per-tuple *mutuality* bitmask: bit `m` (for `m < 64`) is set iff
    /// every one of the tuple's first `m − 1` neighbors lists it back
    /// within their own first `m − 1` — a necessary condition for the
    /// tuple to be a *member* of any compact set of size `m`.
    mutual: Vec<u64>,
    /// Per-tuple *anchor* bitmask: the mutuality condition plus "the tuple
    /// is the minimum id of its size-`m` prefix set" — a necessary
    /// condition for the greedy to emit a group of size `m` anchored here.
    anchor: Vec<u64>,
}

impl CsPairGraph {
    /// Materialize the graph and the union-find of mutual pairs in two
    /// flat sweeps over the NN lists. Back ranks are found by scanning the
    /// partner's prefix directly — prefixes are at most `max_size − 1`
    /// long, the same bound the greedy's own membership checks live under.
    fn build(reln: &NnReln, max_size: usize) -> (Self, UnionFind) {
        let n = reln.len();
        let mut off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        off.push(0);
        for e in reln.entries() {
            total += max_size.saturating_sub(1).min(e.neighbors.len()) as u32;
            off.push(total);
        }

        let mut pref = vec![0u32; total as usize];
        for (v, e) in reln.entries().iter().enumerate() {
            let (s, t) = (off[v] as usize, off[v + 1] as usize);
            for (slot, nb) in pref[s..t].iter_mut().zip(&e.neighbors) {
                *slot = nb.id;
            }
        }

        let mut back = vec![u32::MAX; total as usize];
        let mut mutual = vec![0u64; n];
        let mut anchor = vec![0u64; n];
        let mut uf = UnionFind::new(n);
        for v in 0..n as u32 {
            let (s, t) = (off[v as usize] as usize, off[v as usize + 1] as usize);
            // Running state over the growing prefix: whether `v` is still
            // the minimum id, and the worst back rank seen so far.
            let mut min_id_ok = true;
            let mut max_back = 0u32;
            for j in 0..t - s {
                let u = pref[s + j];
                // Each unordered pair is scanned once, from its smaller
                // endpoint: finding `v` at rank `r` of `u`'s prefix fixes
                // both directions' back ranks (`v` sits at rank `j` of its
                // own prefix edge to `u`). Pairs with `u < v` were settled
                // during `u`'s iteration — ids ascend — or are one-way and
                // correctly keep `u32::MAX`.
                if u > v {
                    let (us, ut) = (off[u as usize] as usize, off[u as usize + 1] as usize);
                    if let Some(r) = pref[us..ut].iter().position(|&b| b == v) {
                        back[s + j] = r as u32;
                        back[us + r] = j as u32;
                        uf.union(v, u);
                    }
                } else {
                    min_id_ok = false;
                }
                max_back = max_back.max(back[s + j]);
                // Group size m = j + 2 needs every back rank ≤ m − 2.
                let m = j + 2;
                if max_back <= (m - 2) as u32 && m < 64 {
                    mutual[v as usize] |= 1 << m;
                    if min_id_ok {
                        anchor[v as usize] |= 1 << m;
                    }
                }
            }
        }
        (Self { off, pref, mutual, anchor, back }, uf)
    }

    /// Necessary condition for the greedy at `v` to emit a group of size
    /// `m`: `v` must be the minimum id of its size-`m` prefix set, every
    /// prefix neighbor `u` must hold `v` within its own first `m − 1`
    /// neighbors, and every prefix neighbor must itself be fully mutual at
    /// level `m` — otherwise some member's `m`-nearest-neighbor set cannot
    /// equal the candidate and [`is_compact_set`] rejects it. All three
    /// facts are read off the materialized bitmasks without allocating.
    fn can_anchor(&self, entry: &NnEntry, m: usize) -> bool {
        let v = entry.id as usize;
        if m < 64 {
            let bit = 1u64 << m;
            return self.anchor[v] & bit != 0
                && self.pref[self.off[v] as usize..][..m - 1]
                    .iter()
                    .all(|&u| self.mutual[u as usize] & bit != 0);
        }
        let k = m - 1;
        let s = self.off[v] as usize;
        let t = self.off[v + 1] as usize;
        if t - s < k {
            return false; // prefix set ill-defined: the greedy skips m too
        }
        let lim = (m - 2) as u32;
        entry.neighbors[..k].iter().all(|nb| nb.id > entry.id)
            && self.back[s..s + k].iter().all(|&r| r <= lim)
    }
}

/// Connected components of the CS-pair graph: tuples `u`, `v` are joined
/// iff each appears in the other's first `max_size − 1` neighbors (a
/// mutual-neighbor pair — exactly the pairs the relational path
/// materializes into `CSPairs`). Every compact set is a clique of such
/// pairs, so every candidate group lies inside one component. Components
/// come back in canonical order (members ascending, ordered by min id),
/// singletons included.
pub fn cs_pair_components(reln: &NnReln, max_size: usize) -> Vec<Vec<u32>> {
    CsPairGraph::build(reln, max_size).1.components()
}

/// Component-parallel Phase 2: identical output to [`partition_entries`],
/// computed on `n_threads` scoped worker threads (`0` = one per available
/// CPU).
///
/// The CS-pair structure is materialized once ([`CsPairGraph`], the
/// in-memory `CSPairs` of §5) and decomposed into connected components
/// (as [`cs_pair_components`]); components are cost-balanced over the
/// workers ([`balance_components`], cost ∝ Σ per-tuple prefix-set work);
/// each worker runs the same greedy as the sequential path over its
/// components' tuples in ascending id order with worker-local `assigned`
/// state (sound because no candidate group spans components), using the
/// materialized back ranks to skip candidate sizes the CS criterion is
/// bound to reject; and the collected groups are canonicalized by
/// [`Partition::from_groups`] (groups sorted by anchor id), which erases
/// any scheduling order. Singleton components are skipped outright — a
/// tuple with no mutual neighbor can never anchor or join a group.
pub fn partition_entries_parallel(
    reln: &NnReln,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    n_threads: usize,
) -> Partition {
    let n = reln.len();
    let threads = crate::parallel::resolve_threads(n_threads, n);
    let max_size = cut.max_group_size(n);
    let theta = cut.diameter_bound();

    let (graph, uf) = CsPairGraph::build(reln, max_size);
    let components = uf.components();
    incr(Counter::Phase2Components, components.len() as u64);

    // Cost model: the greedy at tuple v tries up to |prefix(v)| set sizes,
    // each checking ≤ |prefix(v)| members — quadratic in the list length.
    let costs: Vec<u64> = components
        .iter()
        .map(|comp| {
            comp.iter()
                .map(|&v| {
                    let len = reln.entry(v).neighbors.len().min(max_size) as u64 + 1;
                    len * len
                })
                .sum()
        })
        .collect();
    let shards = balance_components(&costs, threads);

    let mut shard_groups: Vec<Vec<Vec<u32>>> = vec![Vec::new(); shards.len()];
    std::thread::scope(|scope| {
        for (shard, out) in shards.iter().zip(shard_groups.iter_mut()) {
            let (components, graph) = (&components, &graph);
            scope.spawn(move || {
                let mut assigned = vec![false; n];
                let mut groups: Vec<Vec<u32>> = Vec::new();
                for &ci in shard {
                    let comp = &components[ci];
                    if comp.len() < 2 {
                        continue; // no mutual pair, no possible group
                    }
                    for &v in comp {
                        if assigned[v as usize] {
                            continue;
                        }
                        if let Some(s) = greedy_group_at(
                            reln,
                            v,
                            max_size,
                            theta,
                            agg,
                            c,
                            true,
                            true,
                            &assigned,
                            Some(graph),
                        ) {
                            for &u in &s {
                                assigned[u as usize] = true;
                            }
                            groups.push(s);
                        }
                    }
                }
                *out = groups;
            });
        }
    });
    Partition::from_groups(n, shard_groups.into_iter().flatten())
}

/// Schema of the materialized `NN_Reln` table: `[ID, NN-List, NG]`.
pub fn nn_reln_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", ColumnType::I64),
        Column::new("nn_list", ColumnType::Neighbors),
        Column::new("ng", ColumnType::F64),
    ])
}

/// Schema of the `CSPairs` relation: ids, NG values, and the variable-length
/// `[CS2..]` prefix-equality flags.
pub fn cs_pairs_schema() -> Schema {
    Schema::new(vec![
        Column::new("id1", ColumnType::I64),
        Column::new("id2", ColumnType::I64),
        Column::new("ng1", ColumnType::F64),
        Column::new("ng2", ColumnType::F64),
        Column::new("cs", ColumnType::BoolList),
    ])
}

/// Materialize `NN_Reln` as a relation on the given buffer pool.
pub fn materialize_nn_reln(reln: &NnReln, pool: Arc<BufferPool>) -> RelationResult<Table> {
    let table = Table::create(pool, Arc::new(nn_reln_schema()));
    for e in reln.entries() {
        table.insert(&Tuple::new(vec![
            Value::I64(e.id as i64),
            Value::Neighbors(e.neighbors.clone()),
            Value::F64(e.ng),
        ]))?;
    }
    Ok(table)
}

/// The paper's SQL-shaped Phase 2 over the relation substrate.
///
/// Steps (all running through tables on `pool`):
/// 1. materialize `NN_Reln`;
/// 2. unnest NN lists into `Edges[id, nb]`;
/// 3. self-equi-join `Edges` on `(id, nb) = (nb, id)` to find mutual
///    neighbor pairs with `id1 < id2` (the residual predicate);
/// 4. compute the `[CS2..]` flags per pair into `CSPairs`;
/// 5. `ORDER BY id1` via external sort, then group and partition.
pub fn partition_via_tables(
    reln: &NnReln,
    cut: CutSpec,
    agg: Aggregation,
    c: f64,
    pool: Arc<BufferPool>,
) -> RelationResult<Partition> {
    let n = reln.len();
    let max_size = cut.max_group_size(n);
    let theta = cut.diameter_bound();

    // Step 1: NN_Reln.
    let nn_table = materialize_nn_reln(reln, pool.clone())?;

    // Step 2: unnest into Edges[id, nb].
    let edges_schema = Arc::new(Schema::new(vec![
        Column::new("id", ColumnType::I64),
        Column::new("nb", ColumnType::I64),
    ]));
    let edges = Table::create(pool.clone(), edges_schema);
    let mut unnested_rows: u64 = 0;
    nn_table.scan(|_, t| {
        let id = t.get(0).as_i64().expect("id column");
        for nb in t.get(1).as_neighbors().expect("nn_list column") {
            edges
                .insert(&Tuple::new(vec![Value::I64(id), Value::I64(nb.id as i64)]))
                .expect("edges schema");
            unnested_rows += 1;
        }
    })?;
    incr(Counter::Phase2UnnestedRows, unnested_rows);

    // A hash "index" on NN_Reln for the flag computation (the paper uses
    // user-defined functions / expanded columns server-side; we read the
    // lists back from the materialized table).
    let mut by_id: HashMap<i64, (Vec<Neighbor>, f64)> = HashMap::with_capacity(n);
    nn_table.scan(|_, t| {
        by_id.insert(
            t.get(0).as_i64().expect("id"),
            (t.get(1).as_neighbors().expect("list").to_vec(), t.get(2).as_f64().expect("ng")),
        );
    })?;

    // Prefix set of a stored list: {id} ∪ first m−1 neighbor ids, sorted.
    let prefix_set = |id: i64, list: &[Neighbor], m: usize| -> Option<Vec<u32>> {
        if list.len() < m - 1 {
            return None;
        }
        let mut s: Vec<u32> = Vec::with_capacity(m);
        s.push(id as u32);
        s.extend(list[..m - 1].iter().map(|nb| nb.id));
        s.sort_unstable();
        Some(s)
    };

    // Steps 3–4: mutual pairs + CS flags into CSPairs.
    let cs_pairs = Table::create(pool.clone(), Arc::new(cs_pairs_schema()));
    let mut cs_pair_rows: u64 = 0;
    incr(Counter::Phase2JoinPasses, 1);
    hash_join(&edges, &edges, &[0, 1], &[1, 0], |l, _r| {
        let id1 = l.get(0).as_i64().expect("id");
        let id2 = l.get(1).as_i64().expect("nb");
        if id1 >= id2 {
            return; // residual predicate ID1 < ID2
        }
        let (list1, ng1) = &by_id[&id1];
        let (list2, ng2) = &by_id[&id2];
        let max_m = max_size.min(list1.len().min(list2.len()) + 1);
        let mut flags = Vec::with_capacity(max_m.saturating_sub(1));
        for m in 2..=max_m {
            let equal = match (prefix_set(id1, list1, m), prefix_set(id2, list2, m)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            flags.push(equal);
        }
        cs_pairs
            .insert(&Tuple::new(vec![
                Value::I64(id1),
                Value::I64(id2),
                Value::F64(*ng1),
                Value::F64(*ng2),
                Value::BoolList(flags),
            ]))
            .expect("cs_pairs schema");
        cs_pair_rows += 1;
    })?;
    incr(Counter::Phase2CsPairs, cs_pair_rows);

    // Step 5: ORDER BY id1 (the CS-group query), then group the sorted
    // pairs by anchor and extract the connected components of the CSPairs
    // graph — the same union-find machinery the component-parallel
    // in-memory path uses ([`cs_pair_components`]), so a component bug
    // shows up in the `phase2_equivalence` suite on either path.
    incr(Counter::Phase2SortPasses, 1);
    let sorted = external_sort(&cs_pairs, &SortConfig::by_columns(vec![0, 1]))?;
    let groups_by_id = group_sorted(sorted.iter().collect::<RelationResult<Vec<_>>>()?, &[0]);

    // Partner flags per anchor (id1 -> id2 -> cs vector) and the CSPairs
    // graph components.
    let mut uf = UnionFind::new(n);
    let mut partners_of: HashMap<u32, HashMap<u32, Vec<bool>>> = HashMap::new();
    for (key, rows) in groups_by_id {
        let v = key[0].as_i64().expect("id1") as u32;
        let partners: HashMap<u32, Vec<bool>> = rows
            .iter()
            .map(|r| {
                let u = r.get(1).as_i64().expect("id2") as u32;
                uf.union(v, u);
                (u, r.get(4).as_bool_list().expect("cs").to_vec())
            })
            .collect();
        partners_of.insert(v, partners);
    }
    let components = uf.components();
    incr(Counter::Phase2Components, components.len() as u64);

    let ngs_of = |s: &[u32]| -> Vec<f64> { s.iter().map(|&u| by_id[&(u as i64)].1).collect() };
    let mut assigned = vec![false; n];
    let mut out_groups: Vec<Vec<u32>> = Vec::new();
    for comp in &components {
        if comp.len() < 2 {
            continue; // no CS pair, no possible group
        }
        for &v in comp {
            if assigned[v as usize] {
                continue;
            }
            // Only tuples with outgoing (v < u) pairs can anchor a group.
            let Some(partners) = partners_of.get(&v) else { continue };
            let (list_v, _) = &by_id[&(v as i64)];
            let upper = max_size.min(list_v.len() + 1);
            for m in (2..=upper).rev() {
                let Some(s) = prefix_set(v as i64, list_v, m) else { continue };
                if s[0] != v {
                    continue;
                }
                if s.iter().any(|&u| assigned[u as usize]) {
                    continue;
                }
                // All other members must be CSm-equal partners of v. (Set
                // equality is transitive, so pairwise checks against v
                // suffice.)
                let all_partnered = s.iter().filter(|&&u| u != v).all(|&u| {
                    partners.get(&u).and_then(|flags| flags.get(m - 2)).copied().unwrap_or(false)
                });
                if !all_partnered {
                    continue;
                }
                // SN criterion over stored NG values. The negated
                // comparison deliberately treats a NaN aggregate as
                // failing.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let sn_ok = agg.aggregate(&ngs_of(&s)) < c;
                if !sn_ok {
                    continue;
                }
                // Diameter cut, if present, from the stored lists.
                if let Some(t) = theta {
                    let mut ok = true;
                    'outer: for (i, &u) in s.iter().enumerate() {
                        let (list_u, _) = &by_id[&(u as i64)];
                        for &w in &s[i + 1..] {
                            match list_u.iter().find(|nb| nb.id == w) {
                                Some(nb) if nb.dist <= t => {}
                                _ => {
                                    ok = false;
                                    break 'outer;
                                }
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                }
                for &u in &s {
                    assigned[u as usize] = true;
                }
                out_groups.push(s);
                break;
            }
        }
    }
    Ok(Partition::from_groups(n, out_groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixIndex;
    use crate::phase1::{compute_nn_reln, NeighborSpec};
    use fuzzydedup_nnindex::{LookupOrder, NnIndex};
    use fuzzydedup_storage::{BufferPoolConfig, InMemoryDisk};

    fn integers() -> MatrixIndex {
        MatrixIndex::from_points_1d(&[1.0, 2.0, 4.0, 20.0, 22.0, 30.0, 32.0])
    }

    fn reln_for(index: &MatrixIndex, cut: &CutSpec) -> NnReln {
        let spec = NeighborSpec::from_cut(cut, index.len());
        compute_nn_reln(index, spec, LookupOrder::Sequential, 2.0).0
    }

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            BufferPoolConfig::with_capacity(32),
            Arc::new(InMemoryDisk::new()),
        ))
    }

    #[test]
    fn integers_example_with_cut_gives_three_groups() {
        // The §3 example: with max aggregation and c just above the NG
        // values of the pairs, plus a size cut, we expect
        // {1,2,4}, {20,22}, {30,32}.
        let idx = integers();
        let cut = CutSpec::Size(3);
        let reln = reln_for(&idx, &cut);
        let p = partition_entries(&reln, cut, Aggregation::Max, 4.0);
        let expected = Partition::from_groups(7, vec![vec![0, 1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(p, expected);
    }

    #[test]
    fn unbounded_formulation_merges_everything_with_lenient_c() {
        // The paper's warning: without a cut, all tuples can land in one
        // group. Reproduce with a generous SN threshold.
        let idx = integers();
        let reln = reln_for(&idx, &CutSpec::Unbounded);
        let p = partition_entries(&reln, CutSpec::Unbounded, Aggregation::Max, 100.0);
        assert_eq!(p.num_groups(), 1, "groups: {:?}", p.groups());
    }

    #[test]
    fn sn_threshold_blocks_dense_groups() {
        // With c = 2 (max NG must be < 2), the triple {1,2,4} is blocked
        // (NG(4)=3) but the loose pairs survive.
        let idx = integers();
        let cut = CutSpec::Size(3);
        let reln = reln_for(&idx, &cut);
        let p = partition_entries(&reln, cut, Aggregation::Max, 2.5);
        assert!(p.are_together(3, 4));
        assert!(p.are_together(5, 6));
        assert!(!p.are_together(0, 2), "dense member 4 has ng=3");
        // {1,2} = ids {0,1} both have ng 2 < 2.5 and are mutual NNs.
        assert!(p.are_together(0, 1));
    }

    #[test]
    fn diameter_cut_bounds_groups() {
        let idx = integers();
        let cut = CutSpec::Diameter(2.5);
        let reln = reln_for(&idx, &cut);
        let p = partition_entries(&reln, cut, Aggregation::Max, 4.0);
        // {20,22} and {30,32} have diameter 2; {1,2,4} has diameter 3 → at
        // most {1,2} can group (diameter 1).
        assert!(p.are_together(3, 4));
        assert!(p.are_together(5, 6));
        assert!(!p.are_together(0, 2));
        assert!(p.are_together(0, 1));
    }

    #[test]
    fn size_and_diameter_combined() {
        let idx = integers();
        let cut = CutSpec::SizeAndDiameter(2, 2.5);
        let reln = reln_for(&idx, &cut);
        let p = partition_entries(&reln, cut, Aggregation::Max, 4.0);
        for g in p.duplicate_groups() {
            assert!(g.len() <= 2);
        }
        assert!(p.are_together(0, 1));
    }

    #[test]
    fn table_path_matches_in_memory_path() {
        let idx = integers();
        for cut in [
            CutSpec::Size(2),
            CutSpec::Size(3),
            CutSpec::Size(4),
            CutSpec::Diameter(2.5),
            CutSpec::Diameter(5.0),
            CutSpec::SizeAndDiameter(3, 3.5),
        ] {
            for c in [2.0, 2.5, 3.5, 6.0] {
                for agg in [Aggregation::Max, Aggregation::Avg, Aggregation::Max2] {
                    let reln = reln_for(&idx, &cut);
                    let mem = partition_entries(&reln, cut, agg, c);
                    let tab = partition_via_tables(&reln, cut, agg, c, pool()).unwrap();
                    assert_eq!(mem, tab, "cut={cut:?} c={c} agg={agg:?}");
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton_relations() {
        let empty = NnReln::new(vec![]);
        let p = partition_entries(&empty, CutSpec::Size(3), Aggregation::Max, 4.0);
        assert_eq!(p.num_groups(), 0);

        let idx = MatrixIndex::from_points_1d(&[1.0]);
        let reln = reln_for(&idx, &CutSpec::Size(2));
        let p = partition_entries(&reln, CutSpec::Size(2), Aggregation::Max, 4.0);
        assert_eq!(p.groups(), &[vec![0]]);
    }

    #[test]
    fn groups_are_anchored_at_min_id() {
        // Every emitted duplicate group's min id must be the anchor; verify
        // indirectly: re-running must be deterministic and equal.
        let idx = integers();
        let cut = CutSpec::Size(3);
        let reln = reln_for(&idx, &cut);
        let a = partition_entries(&reln, cut, Aggregation::Max, 4.0);
        let b = partition_entries(&reln, cut, Aggregation::Max, 4.0);
        assert_eq!(a, b);
    }

    #[test]
    fn ablation_flags_relax_the_criteria() {
        let idx = integers();
        let cut = CutSpec::Size(3);
        let reln = reln_for(&idx, &cut);
        let full = partition_entries_ablation(&reln, cut, Aggregation::Max, 2.5, true, true);
        let no_sn = partition_entries_ablation(&reln, cut, Aggregation::Max, 2.5, true, false);
        let no_cs = partition_entries_ablation(&reln, cut, Aggregation::Max, 2.5, false, true);
        assert_eq!(full, partition_entries(&reln, cut, Aggregation::Max, 2.5));
        // Without SN, the dense triple {1,2,4} is admitted.
        assert!(no_sn.are_together(0, 2));
        assert!(!full.are_together(0, 2));
        // Relaxations can only merge more, never less.
        assert!(no_sn.num_duplicate_pairs() >= full.num_duplicate_pairs());
        assert!(no_cs.num_duplicate_pairs() >= full.num_duplicate_pairs());
    }

    #[test]
    fn far_apart_points_stay_singletons() {
        let idx = MatrixIndex::from_points_1d(&[0.0, 100.0, 250.0, 400.0]);
        let cut = CutSpec::Diameter(10.0);
        let reln = reln_for(&idx, &cut);
        let p = partition_entries(&reln, cut, Aggregation::Max, 4.0);
        assert_eq!(p.num_duplicate_pairs(), 0);
    }
}
