//! SN-threshold estimation from a duplicate-fraction estimate (§4.4).
//!
//! Setting the sparse-neighborhood threshold `c` directly requires "a
//! deeper understanding of the data distribution"; the paper instead asks
//! the user for the *fraction `f` of duplicate tuples* and derives `c` from
//! the cumulative distribution `D` of neighborhood growths:
//!
//! * ideally, `c` is the `f`-percentile of `D` (duplicates have the lowest
//!   NG values);
//! * to be robust, the heuristic picks the least value `x = D⁻¹(y)` around
//!   the `f`-percentile (`y ∈ [f − δ, f + δ]`, default `δ = 0.05`) where
//!   the distribution *spikes* — where the mass concentrated at a single
//!   NG value exceeds a spike threshold (default `0.1`, the paper's
//!   `D'(x) > 0.1`);
//! * if no spike exists in the window, fall back to `D⁻¹(f + δ)`.
//!
//! The returned value is used as a strict upper bound (`AGG < c`), so we
//! return the spike's NG value itself: groups must be strictly sparser
//! than the spike.

/// Tuning knobs of the heuristic (the paper: "the parameters for defining
/// the vicinity of f ... and the spike may be guided by a user").
#[derive(Debug, Clone, Copy)]
pub struct SnThresholdConfig {
    /// Half-width δ of the percentile window around `f`.
    pub window: f64,
    /// Minimum probability mass at one NG value to count as a spike.
    pub spike_mass: f64,
}

impl Default for SnThresholdConfig {
    fn default() -> Self {
        Self { window: 0.05, spike_mass: 0.1 }
    }
}

/// Estimate the SN threshold `c` from NG values and an estimated duplicate
/// fraction `f ∈ [0, 1]`. Returns `None` for an empty relation.
pub fn estimate_sn_threshold(ng_values: &[f64], f: f64) -> Option<f64> {
    estimate_sn_threshold_with(ng_values, f, SnThresholdConfig::default())
}

/// [`estimate_sn_threshold`] with explicit tuning parameters.
pub fn estimate_sn_threshold_with(
    ng_values: &[f64],
    f: f64,
    config: SnThresholdConfig,
) -> Option<f64> {
    if ng_values.is_empty() {
        return None;
    }
    let n = ng_values.len();
    let mut sorted: Vec<f64> = ng_values.to_vec();
    sorted.sort_by(f64::total_cmp);

    // Distinct values with their counts, ascending.
    let mut distinct: Vec<(f64, u64)> = Vec::new();
    for &v in &sorted {
        push_run(&mut distinct, v, 1);
    }
    spike_walk(&distinct, n, f, config)
}

/// Parallel form of [`estimate_sn_threshold`]: the NG-distribution scan
/// (sort + distinct-run counting over the whole relation) is sharded over
/// `n_threads` scoped worker threads (`0` = one per CPU) and the per-shard
/// sorted runs are merged before the same spike walk. The result is
/// identical to the sequential estimator for every input — only the
/// distribution construction parallelizes; the walk itself is O(distinct).
pub fn estimate_sn_threshold_parallel(ng_values: &[f64], f: f64, n_threads: usize) -> Option<f64> {
    estimate_sn_threshold_parallel_with(ng_values, f, n_threads, SnThresholdConfig::default())
}

/// [`estimate_sn_threshold_parallel`] with explicit tuning parameters.
pub fn estimate_sn_threshold_parallel_with(
    ng_values: &[f64],
    f: f64,
    n_threads: usize,
    config: SnThresholdConfig,
) -> Option<f64> {
    if ng_values.is_empty() {
        return None;
    }
    let n = ng_values.len();
    let threads = crate::parallel::resolve_threads(n_threads, n);
    let chunk_size = n.div_ceil(threads).max(1);

    // Shard: each worker sorts its slice and collapses it to distinct
    // (value, count) runs.
    let mut shard_runs: Vec<Vec<(f64, u64)>> = vec![Vec::new(); threads];
    std::thread::scope(|scope| {
        for (chunk, out) in ng_values.chunks(chunk_size).zip(shard_runs.iter_mut()) {
            scope.spawn(move || {
                let mut sorted: Vec<f64> = chunk.to_vec();
                sorted.sort_by(f64::total_cmp);
                let mut runs: Vec<(f64, u64)> = Vec::new();
                for &v in &sorted {
                    push_run(&mut runs, v, 1);
                }
                *out = runs;
            });
        }
    });

    // K-way merge of the sorted per-shard run lists into one global
    // distinct-count list (deterministic: order by value via total_cmp).
    let mut cursors: Vec<usize> = vec![0; shard_runs.len()];
    let mut distinct: Vec<(f64, u64)> = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (s, runs) in shard_runs.iter().enumerate() {
            if let Some(&(v, _)) = runs.get(cursors[s]) {
                if best.is_none_or(|(_, bv)| v.total_cmp(&bv) == std::cmp::Ordering::Less) {
                    best = Some((s, v));
                }
            }
        }
        let Some((s, _)) = best else { break };
        let (v, count) = shard_runs[s][cursors[s]];
        cursors[s] += 1;
        push_run(&mut distinct, v, count);
    }
    spike_walk(&distinct, n, f, config)
}

/// Append `count` occurrences of `v` to an ascending run list, merging
/// with the last run when the value repeats.
fn push_run(runs: &mut Vec<(f64, u64)>, v: f64, count: u64) {
    match runs.last_mut() {
        Some((last, c)) if *last == v => *c += count,
        _ => runs.push((v, count)),
    }
}

/// The §4.4 spike heuristic over an ascending distinct-count distribution
/// of `n` total NG values. Shared by the sequential and parallel
/// estimators so they cannot diverge.
fn spike_walk(distinct: &[(f64, u64)], n: usize, f: f64, config: SnThresholdConfig) -> Option<f64> {
    let f = f.clamp(0.0, 1.0);
    // Percentile position of each distinct value: its mass occupies the
    // span `(below, below + mass]` of the cumulative distribution.
    let mut cumulative = 0.0;
    let lo = (f - config.window).max(0.0);
    let hi = (f + config.window).min(1.0);
    let mut fallback = None;
    for &(value, count) in distinct {
        let mass = count as f64 / n as f64;
        let below = cumulative;
        cumulative += mass;
        // A spike marks where the bulk of *unique* tuples begins: its span
        // must *start* inside the window (a heavy value starting below the
        // window is the duplicates' own NG level, not the boundary).
        if (lo..=hi).contains(&below) && mass >= config.spike_mass {
            return Some(value);
        }
        // Track D⁻¹(f + δ): the first value whose cumulative mass reaches
        // the upper window edge.
        if fallback.is_none() && cumulative >= hi {
            fallback = Some(value);
        }
    }
    fallback.or_else(|| distinct.last().map(|&(v, _)| v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert_eq!(estimate_sn_threshold(&[], 0.2), None);
    }

    #[test]
    fn spike_at_unique_tuples_is_found() {
        // 20% duplicates with NG ≈ 2, then a large spike of uniques at
        // NG = 5. The threshold should land on the spike value 5 (used
        // strictly, so groups need NG < 5).
        let mut ng = vec![2.0; 20];
        ng.extend(vec![5.0; 60]);
        ng.extend(vec![6.0; 10]);
        ng.extend(vec![7.0; 10]);
        let c = estimate_sn_threshold(&ng, 0.2).unwrap();
        assert_eq!(c, 5.0);
    }

    #[test]
    fn no_spike_falls_back_to_upper_percentile() {
        // Smooth distribution 1..=100: no value holds ≥ 10% of the mass.
        let ng: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = estimate_sn_threshold(&ng, 0.2).unwrap();
        // D⁻¹(0.25) = 25.
        assert_eq!(c, 25.0);
    }

    #[test]
    fn f_zero_and_one() {
        let ng: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let c0 = estimate_sn_threshold(&ng, 0.0).unwrap();
        assert!(c0 <= 2.0, "f=0 → threshold near the smallest NG, got {c0}");
        let c1 = estimate_sn_threshold(&ng, 1.0).unwrap();
        assert_eq!(c1, 10.0);
    }

    #[test]
    fn all_equal_ng_values() {
        let ng = vec![3.0; 50];
        // One giant spike; the window always overlaps it.
        assert_eq!(estimate_sn_threshold(&ng, 0.2), Some(3.0));
    }

    #[test]
    fn spike_below_window_is_ignored() {
        // Spike at NG=1 covering 0..10%; with f=0.5 the window is
        // [0.45, 0.55] — far above the spike.
        let mut ng = vec![1.0; 10];
        ng.extend((1..=90).map(|i| 1.0 + i as f64));
        let c = estimate_sn_threshold(&ng, 0.5).unwrap();
        assert!(c > 1.0);
    }

    #[test]
    fn custom_config_widens_window() {
        let mut ng = vec![2.0; 20];
        ng.extend(vec![9.0; 80]);
        // Narrow window around f=0.5 misses the spike at cumulative 1.0?
        // No: 9.0 spans (0.2, 1.0], overlapping any window. Use a spike
        // mass too high to trigger instead.
        let cfg = SnThresholdConfig { window: 0.05, spike_mass: 0.9 };
        let c = estimate_sn_threshold_with(&ng, 0.5, cfg).unwrap();
        assert_eq!(c, 9.0, "fallback to D⁻¹(f+δ)");
    }

    #[test]
    fn clamps_out_of_range_f() {
        let ng = vec![1.0, 2.0, 3.0];
        assert!(estimate_sn_threshold(&ng, -5.0).is_some());
        assert!(estimate_sn_threshold(&ng, 5.0).is_some());
    }

    #[test]
    fn parallel_estimator_matches_sequential() {
        // Deterministic pseudo-random NG values with heavy ties, plus the
        // shaped distributions from the other tests: every thread count
        // must reproduce the sequential estimate exactly.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut noisy: Vec<f64> = (0..997)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 40) as f64 / 4.0
            })
            .collect();
        noisy.push(f64::NAN); // total_cmp must keep NaN handling identical
        let mut planted = vec![2.0; 15];
        planted.extend(vec![3.0; 15]);
        planted.extend(vec![6.0; 55]);
        planted.extend(vec![8.0; 15]);
        let all_equal = vec![3.0; 50];
        let singleton = vec![7.5];
        for (name, ng) in [
            ("noisy", &noisy),
            ("planted", &planted),
            ("all-equal", &all_equal),
            ("singleton", &singleton),
        ] {
            for f in [0.0, 0.2, 0.5, 1.0] {
                let seq = estimate_sn_threshold(ng, f);
                for threads in [1, 2, 4, 0] {
                    let par = estimate_sn_threshold_parallel(ng, f, threads);
                    // Bit-level equality so a shared NaN outcome counts as
                    // agreement.
                    assert_eq!(
                        seq.map(f64::to_bits),
                        par.map(f64::to_bits),
                        "{name}: f={f} threads={threads} ({seq:?} vs {par:?})"
                    );
                }
            }
        }
        assert_eq!(estimate_sn_threshold_parallel(&[], 0.2, 4), None);
    }

    #[test]
    fn planted_scenario_recovers_separating_threshold() {
        // Duplicates (30%) have NG in {2, 3}; uniques concentrate at 6.
        let mut ng = Vec::new();
        ng.extend(vec![2.0; 15]);
        ng.extend(vec![3.0; 15]);
        ng.extend(vec![6.0; 55]);
        ng.extend(vec![8.0; 15]);
        let c = estimate_sn_threshold(&ng, 0.3).unwrap();
        // A threshold of 6 admits exactly the duplicate NG values (2, 3)
        // under strict comparison and rejects the unique-tuple level.
        assert_eq!(c, 6.0);
        assert!(3.0 < c);
        assert!(c <= 6.0);
    }
}
