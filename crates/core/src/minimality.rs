//! Minimality of compact sets (§4.5.2).
//!
//! The union of disjoint non-trivial compact sets can itself be a compact
//! SN set, producing groups like `{v₁, v₁', v₂, v₂', v₃, v₃'}` where each
//! `{vᵢ, vᵢ'}` is a pair of duplicates. `S` is a **minimal** compact set if
//! it contains no two disjoint non-trivial compact subsets. The paper makes
//! minimality an optional post-processing check ("we would further split
//! such groups into minimal groups") and argues such mergers are rare in
//! real data; [`enforce_minimality`] implements the split.

use crate::criteria::is_compact_set;
use crate::nnreln::NnReln;
use crate::partition::Partition;

/// Non-trivial (size ≥ 2) compact *proper* subsets of `group` that arise
/// as some member's prefix set. Compact sets are always prefix sets of
/// each of their members, so this enumeration is exhaustive.
fn compact_proper_subsets(reln: &NnReln, group: &[u32]) -> Vec<Vec<u32>> {
    let mut found: Vec<Vec<u32>> = Vec::new();
    for &v in group {
        for m in 2..group.len() {
            let Some(s) = reln.entry(v).prefix_set(m) else { continue };
            // Must lie inside the group and be compact.
            if !s.iter().all(|id| group.contains(id)) {
                continue;
            }
            if !is_compact_set(reln, &s) {
                continue;
            }
            if !found.contains(&s) {
                found.push(s);
            }
        }
    }
    found
}

/// Whether `group` is a minimal compact set: it contains no two *disjoint*
/// non-trivial compact subsets.
pub fn is_minimal(reln: &NnReln, group: &[u32]) -> bool {
    if group.len() <= 3 {
        // Two disjoint subsets of size ≥ 2 need at least 4 members.
        return true;
    }
    let subsets = compact_proper_subsets(reln, group);
    for (i, a) in subsets.iter().enumerate() {
        for b in &subsets[i + 1..] {
            if a.iter().all(|id| !b.contains(id)) {
                return false;
            }
        }
    }
    true
}

/// Split a non-minimal group into its maximal disjoint non-trivial compact
/// subsets (greedy, largest first; members covered by none become
/// singletons). Minimal groups are returned unchanged.
pub fn split_to_minimal(reln: &NnReln, group: &[u32]) -> Vec<Vec<u32>> {
    if is_minimal(reln, group) {
        return vec![group.to_vec()];
    }
    let mut subsets = compact_proper_subsets(reln, group);
    subsets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut taken: Vec<Vec<u32>> = Vec::new();
    let mut covered: Vec<u32> = Vec::new();
    for s in subsets {
        if s.iter().all(|id| !covered.contains(id)) {
            covered.extend_from_slice(&s);
            taken.push(s);
        }
    }
    for &id in group {
        if !covered.contains(&id) {
            taken.push(vec![id]);
        }
    }
    // Recursively ensure the chosen subsets are themselves minimal.
    taken
        .into_iter()
        .flat_map(|s| if s.len() > 3 { split_to_minimal(reln, &s) } else { vec![s] })
        .collect()
}

/// Apply the minimality post-pass to a whole partition.
pub fn enforce_minimality(reln: &NnReln, partition: &Partition) -> Partition {
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for g in partition.groups() {
        if g.len() > 3 {
            groups.extend(split_to_minimal(reln, g));
        } else {
            groups.push(g.clone());
        }
    }
    Partition::from_groups(partition.n(), groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::Aggregation;
    use crate::matrix::MatrixIndex;
    use crate::phase1::{compute_nn_reln, NeighborSpec};
    use crate::phase2::partition_entries;
    use crate::problem::CutSpec;
    use fuzzydedup_nnindex::LookupOrder;

    /// The §4.5.2 construction: three well-separated duplicate pairs whose
    /// union still forms a compact set. Pairs at {0, 0.1}, {10, 10.1},
    /// {20, 20.1}; the whole cluster sits 10⁶ away from a far crowd, so the
    /// 6-element set is compact (members are closer to each other than to
    /// anything outside).
    fn pairs_universe() -> MatrixIndex {
        MatrixIndex::from_points_1d(&[0.0, 0.1, 10.0, 10.1, 20.0, 20.1, 1e6, 1e6 + 1.0])
    }

    fn reln() -> NnReln {
        compute_nn_reln(&pairs_universe(), NeighborSpec::TopK(7), LookupOrder::Sequential, 2.0).0
    }

    #[test]
    fn union_of_pairs_is_compact_but_not_minimal() {
        let r = reln();
        let six = vec![0, 1, 2, 3, 4, 5];
        assert!(is_compact_set(&r, &six), "the 6-set is compact");
        assert!(!is_minimal(&r, &six), "but not minimal");
        assert!(is_minimal(&r, &[0, 1]));
        assert!(is_minimal(&r, &[0, 1, 2]), "size ≤ 3 always minimal");
    }

    #[test]
    fn split_recovers_the_pairs() {
        let r = reln();
        let mut parts = split_to_minimal(&r, &[0, 1, 2, 3, 4, 5]);
        parts.sort();
        assert_eq!(parts, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    }

    #[test]
    fn partition_post_pass() {
        let r = reln();
        // With a lenient c and size cut 6, DE merges the six tuples (the
        // §4.5.2 outcome)...
        let merged = partition_entries(&r, CutSpec::Size(6), Aggregation::Max, 100.0);
        assert!(merged.are_together(0, 5));
        // ...and the post-pass splits them back into minimal pairs.
        let minimal = enforce_minimality(&r, &merged);
        assert!(minimal.are_together(0, 1));
        assert!(minimal.are_together(2, 3));
        assert!(minimal.are_together(4, 5));
        assert!(!minimal.are_together(0, 2));
        assert!(minimal.are_together(6, 7), "unrelated groups untouched");
    }

    #[test]
    fn minimal_groups_pass_through_unchanged() {
        let r = reln();
        let p = Partition::from_groups(8, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(enforce_minimality(&r, &p), p);
    }

    #[test]
    fn genuine_sextet_is_not_split() {
        // Six mutually-equidistant-ish points forming one true cluster: no
        // disjoint compact subsets exist because every pair's nearest
        // neighbors interleave.
        let idx = MatrixIndex::from_fn(7, |a, b| {
            if a == 6 || b == 6 {
                1000.0
            } else {
                1.0 + 0.001 * (a + b) as f64
            }
        });
        let r = compute_nn_reln(&idx, NeighborSpec::TopK(6), LookupOrder::Sequential, 2.0).0;
        let six = vec![0, 1, 2, 3, 4, 5];
        if is_compact_set(&r, &six) {
            let parts = split_to_minimal(&r, &six);
            assert_eq!(parts.len(), 1, "true cluster must not be split: {parts:?}");
        }
    }
}
