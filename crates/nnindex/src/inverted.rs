//! IDF-weighted inverted index over q-grams and tokens, with postings on
//! buffer-pool pages.
//!
//! This is our stand-in for the probabilistic nearest-neighbor indexes the
//! paper cites for edit distance and fuzzy match similarity ([24, 23, 9]):
//! an inverted index in the IR style, queried in two steps —
//!
//! 1. **candidate generation**: fetch the postings of the query record's
//!    terms (padded q-grams of the normalized record string, plus whole
//!    tokens) and accumulate per-candidate shared IDF weight;
//! 2. **verification**: compute the exact distance to the
//!    highest-weight candidates and keep the qualifying ones.
//!
//! Postings are chunked into records of a [`HeapFile`], so every term fetch
//! is a buffer-pool access: querying similar records touches the same
//! postings chunks, hence the same pages — the locality the breadth-first
//! lookup order of §4.1.1 exploits. Terms are written in sorted order at
//! build time, clustering lexicographically-similar grams on the same
//! pages.
//!
//! Like the paper, we *treat this index as exact* (§4: "For the purpose of
//! this paper, we treat these probabilistic indexes as exact nearest
//! neighbor indexes"); `tests/` measure how close it gets against
//! [`crate::NestedLoopIndex`].

use std::collections::HashMap;
use std::sync::Arc;

use fuzzydedup_relation::Neighbor;
use fuzzydedup_storage::{BufferPool, HeapFile, RecordId};
use fuzzydedup_textdist::tokenize::{record_string, tokenize_record};
use fuzzydedup_textdist::{qgrams, Distance};

use crate::{
    lookup_from_verified, sort_neighbors, verify_candidates_bounded, LookupCost, LookupSpec,
    NnIndex,
};
use fuzzydedup_metrics::{incr, Counter};

/// Configuration of the inverted index.
#[derive(Debug, Clone)]
pub struct InvertedIndexConfig {
    /// q-gram length (default 3).
    pub q: usize,
    /// Also index whole tokens (helps token-level distances like fms).
    pub index_tokens: bool,
    /// Verify at most this many candidates per query, highest shared
    /// weight first (0 = verify everything sharing a term).
    pub candidate_limit: usize,
    /// Skip terms whose document frequency exceeds this fraction of the
    /// corpus ("stop grams"): they add little discrimination at high cost.
    pub max_df_fraction: f64,
    /// Never treat a term as a stop gram unless its document frequency
    /// also exceeds this floor. Guards small corpora, where pruning even
    /// moderately-shared terms destroys recall (and with it the
    /// neighborhood-growth estimates the SN criterion depends on).
    pub stop_df_floor: u32,
    /// Posting ids per storage chunk. Smaller chunks pack more distinct
    /// terms per page, increasing cross-term locality.
    pub chunk_size: usize,
}

impl Default for InvertedIndexConfig {
    fn default() -> Self {
        Self {
            q: 3,
            index_tokens: true,
            candidate_limit: 256,
            max_df_fraction: 0.2,
            stop_df_floor: 100,
            chunk_size: 256,
        }
    }
}

struct TermInfo {
    /// IDF weight `ln(1 + N/df)`.
    weight: f64,
    /// Document frequency.
    df: u32,
    /// Postings chunks in the heap file, in id order.
    chunks: Vec<RecordId>,
}

/// Inverted-index nearest-neighbor search; see module docs.
pub struct InvertedIndex<D> {
    records: Vec<Vec<String>>,
    distance: D,
    config: InvertedIndexConfig,
    dictionary: HashMap<String, TermInfo>,
    postings: HeapFile,
}

impl<D: Distance> InvertedIndex<D> {
    /// Build the index over a corpus, storing postings through `pool`.
    pub fn build(
        records: Vec<Vec<String>>,
        distance: D,
        pool: Arc<BufferPool>,
        config: InvertedIndexConfig,
    ) -> Self {
        let postings = HeapFile::create(pool);
        let mut term_postings: HashMap<String, Vec<u32>> = HashMap::new();
        for (id, record) in records.iter().enumerate() {
            for term in Self::terms_of(record, &config) {
                let list = term_postings.entry(term).or_default();
                // Term sets are deduplicated per record, so ids arrive in
                // strictly increasing order.
                if list.last() != Some(&(id as u32)) {
                    list.push(id as u32);
                }
            }
        }
        // Write postings in sorted term order for page locality.
        let mut terms: Vec<(String, Vec<u32>)> = term_postings.into_iter().collect();
        terms.sort_by(|a, b| a.0.cmp(&b.0));
        let n = records.len().max(1) as f64;
        let mut dictionary = HashMap::with_capacity(terms.len());
        for (term, ids) in terms {
            let df = ids.len() as u32;
            let mut chunks = Vec::with_capacity(ids.len() / config.chunk_size + 1);
            for chunk in ids.chunks(config.chunk_size.max(1)) {
                let mut bytes = Vec::with_capacity(chunk.len() * 4);
                for &id in chunk {
                    bytes.extend_from_slice(&id.to_le_bytes());
                }
                chunks.push(postings.insert(&bytes).expect("postings chunk fits a page"));
            }
            let weight = (1.0 + n / df as f64).ln();
            dictionary.insert(term, TermInfo { weight, df, chunks });
        }
        Self { records, distance, config, dictionary, postings }
    }

    /// Terms (deduplicated, sorted) of a record under a config.
    fn terms_of(record: &[String], config: &InvertedIndexConfig) -> Vec<String> {
        let fields: Vec<&str> = record.iter().map(String::as_str).collect();
        let joined = record_string(&fields);
        let mut terms = qgrams(&joined, config.q);
        if config.index_tokens {
            terms.extend(tokenize_record(&fields).into_iter().map(|t| t.text));
        }
        terms.sort();
        terms.dedup();
        terms
    }

    /// The indexed records.
    pub fn records(&self) -> &[Vec<String>] {
        &self.records
    }

    /// Number of distinct terms in the dictionary.
    pub fn dictionary_size(&self) -> usize {
        self.dictionary.len()
    }

    /// Number of heap pages occupied by postings.
    pub fn postings_pages(&self) -> usize {
        self.postings.num_pages()
    }

    /// Exact distance between two indexed records.
    pub fn distance_between(&self, a: u32, b: u32) -> f64 {
        let ra: Vec<&str> = self.records[a as usize].iter().map(String::as_str).collect();
        let rb: Vec<&str> = self.records[b as usize].iter().map(String::as_str).collect();
        self.distance.distance(&ra, &rb)
    }

    /// Candidate ids for a query record, sorted descending by shared IDF
    /// weight. Every postings fetch goes through the buffer pool.
    fn candidates(&self, id: u32) -> Vec<u32> {
        let record = &self.records[id as usize];
        let max_df = (self.config.max_df_fraction * self.records.len() as f64)
            .max(f64::from(self.config.stop_df_floor));
        let mut scores: HashMap<u32, f64> = HashMap::new();
        let mut scanned: u64 = 0;
        for term in Self::terms_of(record, &self.config) {
            let Some(info) = self.dictionary.get(&term) else { continue };
            if f64::from(info.df) > max_df {
                continue; // stop gram
            }
            for &chunk in &info.chunks {
                let bytes = self.postings.get(chunk).expect("postings chunk exists");
                scanned += (bytes.len() / 4) as u64;
                for raw in bytes.chunks_exact(4) {
                    let other = u32::from_le_bytes(raw.try_into().unwrap());
                    if other != id {
                        *scores.entry(other).or_insert(0.0) += info.weight;
                    }
                }
            }
        }
        incr(Counter::NnPostingsScanned, scanned);
        let mut scored: Vec<(u32, f64)> = scores.into_iter().collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if self.config.candidate_limit > 0 {
            scored.truncate(self.config.candidate_limit);
        }
        scored.into_iter().map(|(id, _)| id).collect()
    }

    fn verified(&self, id: u32, candidates: &[u32]) -> Vec<Neighbor> {
        let query: Vec<&str> = self.records[id as usize].iter().map(String::as_str).collect();
        candidates
            .iter()
            .map(|&c| {
                let fields: Vec<&str> =
                    self.records[c as usize].iter().map(String::as_str).collect();
                Neighbor::new(c, self.distance.distance(&query, &fields))
            })
            .collect()
    }
}

impl<D: Distance> NnIndex for InvertedIndex<D> {
    fn len(&self) -> usize {
        self.records.len()
    }

    fn top_k(&self, id: u32, k: usize) -> Vec<Neighbor> {
        let mut verified = self.verified(id, &self.candidates(id));
        sort_neighbors(&mut verified);
        verified.truncate(k);
        verified
    }

    fn within(&self, id: u32, radius: f64) -> Vec<Neighbor> {
        let mut verified = self.verified(id, &self.candidates(id));
        verified.retain(|n| n.dist < radius);
        sort_neighbors(&mut verified);
        verified
    }

    /// One candidate gather + one verification pass serves both the
    /// neighbor list and the neighborhood growth — the access pattern the
    /// paper's Phase 1 assumes, and half the I/O of two separate calls.
    /// Verification is *bounded*: each candidate is scored against the
    /// current best-so-far cutoff so the k-bounded edit kernel can bail
    /// out of hopeless pairs early.
    fn lookup(&self, id: u32, spec: LookupSpec, p: f64) -> (Vec<Neighbor>, f64, LookupCost) {
        let candidates = self.candidates(id);
        let (verified, attempted) =
            verify_candidates_bounded(&self.distance, &self.records, id, &candidates, spec, p);
        lookup_from_verified(verified, attempted, spec, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopIndex;
    use fuzzydedup_storage::{BufferPoolConfig, InMemoryDisk};
    use fuzzydedup_textdist::EditDistance;

    fn corpus() -> Vec<Vec<String>> {
        [
            "the doors",
            "doors",
            "the beatles",
            "beatles the",
            "shania twain",
            "twian shania",
            "4th elemynt",
            "4 th elemynt",
            "aaliyah",
            "bob dylan",
        ]
        .iter()
        .map(|s| vec![s.to_string()])
        .collect()
    }

    fn build(config: InvertedIndexConfig) -> InvertedIndex<EditDistance> {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(16), disk));
        InvertedIndex::build(corpus(), EditDistance, pool, config)
    }

    #[test]
    fn finds_obvious_neighbors() {
        let idx = build(InvertedIndexConfig::default());
        let nn = idx.top_k(0, 1);
        assert_eq!(nn[0].id, 1, "'doors' is the nearest neighbor of 'the doors'");
        let nn = idx.top_k(4, 1);
        assert_eq!(nn[0].id, 5, "transposed tokens still share grams");
    }

    #[test]
    fn excludes_self() {
        let idx = build(InvertedIndexConfig::default());
        for id in 0..idx.len() as u32 {
            assert!(idx.top_k(id, 5).iter().all(|n| n.id != id));
        }
    }

    #[test]
    fn agrees_with_nested_loop_on_close_pairs() {
        let idx = build(InvertedIndexConfig::default());
        let exact = NestedLoopIndex::new(corpus(), EditDistance);
        for id in 0..idx.len() as u32 {
            let approx = idx.top_k(id, 3);
            let truth = exact.top_k(id, 3);
            // The nearest neighbor (which drives nn(v) and the CS checks)
            // must agree whenever it is genuinely close.
            if truth[0].dist < 0.5 {
                assert_eq!(approx[0].id, truth[0].id, "query {id}");
                assert!((approx[0].dist - truth[0].dist).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn within_respects_radius() {
        let idx = build(InvertedIndexConfig::default());
        for id in 0..idx.len() as u32 {
            for n in idx.within(id, 0.3) {
                assert!(n.dist < 0.3);
                assert_eq!(n.dist, idx.distance_between(id, n.id));
            }
        }
    }

    #[test]
    fn candidate_limit_caps_verification() {
        let small = build(InvertedIndexConfig { candidate_limit: 1, ..Default::default() });
        for id in 0..small.len() as u32 {
            assert!(small.top_k(id, 10).len() <= 1);
        }
        let unlimited = build(InvertedIndexConfig { candidate_limit: 0, ..Default::default() });
        // Unlimited: everything sharing a term is verified.
        assert!(unlimited.top_k(0, 10).len() >= 2);
    }

    #[test]
    fn postings_live_on_pages() {
        let idx = build(InvertedIndexConfig::default());
        assert!(idx.dictionary_size() > 10);
        assert!(idx.postings_pages() >= 1);
        // Lookups hit the buffer pool.
        let pool_stats_before = {
            // Rebuild with a tiny pool and measure accesses.
            let disk = Arc::new(InMemoryDisk::new());
            let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(2), disk));
            let idx =
                InvertedIndex::build(corpus(), EditDistance, pool.clone(), Default::default());
            pool.reset_stats();
            idx.top_k(0, 3);
            pool.stats().accesses()
        };
        assert!(pool_stats_before > 0, "queries must touch the buffer pool");
    }

    #[test]
    fn stop_gram_pruning_drops_frequent_terms() {
        // With an aggressive df cutoff the shared token "the" cannot be the
        // only bridge between records.
        let strict = build(InvertedIndexConfig {
            max_df_fraction: 0.05,
            stop_df_floor: 3,
            ..Default::default()
        });
        // Index still functions.
        let nn = strict.top_k(0, 1);
        assert_eq!(nn[0].id, 1);
    }

    #[test]
    fn empty_and_tiny_corpora() {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(2), disk));
        let idx = InvertedIndex::build(
            vec![vec!["solo".to_string()]],
            EditDistance,
            pool,
            Default::default(),
        );
        assert!(idx.top_k(0, 3).is_empty());
        assert!(idx.within(0, 0.9).is_empty());
    }

    #[test]
    fn combined_lookup_matches_separate_calls() {
        let idx = build(InvertedIndexConfig::default());
        for id in 0..idx.len() as u32 {
            // Top-K flavor.
            let (neighbors, ng, cost) = idx.lookup(id, LookupSpec::TopK(3), 2.0);
            assert_eq!(neighbors, idx.top_k(id, 3), "id {id}");
            let nn = idx.top_k(id, 1).first().map(|n| n.dist);
            let expected_ng = match nn {
                Some(nn) if nn > 0.0 => idx.within(id, 2.0 * nn).len() as f64 + 1.0,
                _ => 1.0,
            };
            assert_eq!(ng, expected_ng, "id {id}");
            // The combined lookup gathers once: one probe, every candidate
            // verified with exactly one distance call.
            assert_eq!(cost.probes, 1, "id {id}");
            assert_eq!(cost.fallback_probes, 0, "id {id}");
            assert_eq!(cost.candidates, cost.distance_calls, "id {id}");
            // Radius flavor.
            let (neighbors, _, _) = idx.lookup(id, LookupSpec::Radius(0.4), 2.0);
            assert_eq!(neighbors, idx.within(id, 0.4), "id {id}");
        }
    }

    #[test]
    fn chunking_splits_long_postings() {
        // 300 records sharing one token with chunk_size 64 → ≥5 chunks.
        let records: Vec<Vec<String>> =
            (0..300).map(|i| vec![format!("shared token{i:03}")]).collect();
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_capacity(16), disk));
        let idx = InvertedIndex::build(
            records,
            EditDistance,
            pool,
            InvertedIndexConfig {
                chunk_size: 64,
                max_df_fraction: 1.1,
                stop_df_floor: 1000,
                ..Default::default()
            },
        );
        let info = idx.dictionary.get("shared").expect("token indexed");
        assert!(info.chunks.len() >= 5);
        assert_eq!(info.df, 300);
        // And the index still answers queries.
        assert!(!idx.top_k(0, 2).is_empty());
    }
}
